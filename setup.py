"""Shim so `python setup.py develop` works offline (no wheel package).

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
