"""EXP-QOS — client-visible degradation by scheduler.

The business version of the makespan objective: while migrating, items
are served from wrong locations (displacement) and disks burn transfer
lanes (interference).  The table compares schedulers on the summed
degradation integral over the VoD scenario — the heterogeneity-aware
schedule minimizes the displacement term by finishing fastest.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.cluster.service import compare_degradation
from repro.core.solver import plan_migration
from repro.workloads.scenarios import vod_rebalance_scenario


def test_qos_scheduler_comparison(benchmark):
    table = Table(
        "EXP-QOS: degradation integral (displacement + interference), VoD scenario",
        ["method", "rounds", "duration", "displacement", "interference", "total"],
    )
    scenario = vod_rebalance_scenario(num_disks=12, num_items=400, seed=19)
    schedules = {
        method: plan_migration(scenario.instance, method=method)
        for method in ("auto", "saia", "greedy", "homogeneous")
    }
    reports = compare_degradation(scenario.cluster, scenario.context, schedules)
    for method in ("auto", "saia", "greedy", "homogeneous"):
        rep = reports[method]
        table.add_row(
            method, schedules[method].num_rounds, rep.duration,
            rep.displacement, rep.interference, rep.total,
        )
    emit(table)
    assert reports["auto"].total <= reports["homogeneous"].total

    benchmark(
        compare_degradation, scenario.cluster, scenario.context,
        {"auto": schedules["auto"]},
    )


def test_qos_displacement_dominates_for_hot_data(benchmark):
    """Hot items make finishing fast matter more than being gentle."""
    scenario = vod_rebalance_scenario(num_disks=10, num_items=300, alpha=1.2, seed=23)
    schedules = {
        "auto": plan_migration(scenario.instance),
        "homogeneous": plan_migration(scenario.instance, method="homogeneous"),
    }
    reports = compare_degradation(scenario.cluster, scenario.context, schedules)
    table = Table(
        "EXP-QOSb: Zipf(1.2) hot catalog — displacement vs interference",
        ["method", "displacement", "interference", "displacement share"],
    )
    for method, rep in reports.items():
        share = rep.displacement / rep.total if rep.total else 0.0
        table.add_row(method, rep.displacement, rep.interference, share)
    emit(table)
    assert reports["auto"].displacement < reports["homogeneous"].displacement

    benchmark(
        compare_degradation, scenario.cluster, scenario.context,
        {"auto": schedules["auto"]},
    )
