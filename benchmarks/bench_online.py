"""EXP-ONL — online migration policies under bursty arrivals.

Aqueduct-style operation: reconfiguration batches arrive while earlier
migrations still run.  The table compares the replanning policy (merge
all pending work and re-run the paper's scheduler each round) against
FIFO batch draining, on makespan and per-item response time.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.extensions.online import run_online


def bursty_arrivals(bursts: int, burst_size: int, gap: int, seed: int = 0):
    """Deterministic bursty pattern over a small disk pool."""
    import random

    rng = random.Random(seed)
    disks = [f"d{i}" for i in range(8)]
    arrivals = {}
    for b in range(bursts):
        batch = []
        while len(batch) < burst_size:
            u, v = rng.sample(disks, 2)
            batch.append((u, v))
        arrivals[b * gap] = batch
    caps = {d: rng.choice([1, 2, 4]) for d in disks}
    return arrivals, caps


def test_onl_policy_comparison(benchmark):
    table = Table(
        "EXP-ONL: online policies under bursty arrivals",
        ["bursts x size / gap", "policy", "makespan", "mean resp", "max resp", "plans"],
    )
    for bursts, size, gap in ((3, 30, 2), (5, 20, 1), (2, 60, 10)):
        arrivals, caps = bursty_arrivals(bursts, size, gap, seed=bursts)
        for policy in ("replan", "fifo"):
            report = run_online(arrivals, caps, policy=policy)
            table.add_row(
                f"{bursts}x{size}/{gap}", policy, report.makespan,
                report.mean_response, report.max_response, report.plans_computed,
            )
    emit(table)

    arrivals, caps = bursty_arrivals(3, 30, 2, seed=3)
    benchmark(run_online, arrivals, caps, "replan")


def test_onl_replan_beats_fifo_on_cross_batch_slack(benchmark):
    """A tiny batch behind a big unrelated one: replanning interleaves."""
    arrivals = {0: [("a", "b")] * 10, 1: [("c", "d")]}
    caps = {"a": 1, "b": 1, "c": 1, "d": 1}
    replan = run_online(arrivals, caps, policy="replan")
    fifo = run_online(arrivals, caps, policy="fifo")
    table = Table(
        "EXP-ONLb: response time of the straggler batch",
        ["policy", "makespan", "straggler response"],
    )
    table.add_row("replan", replan.makespan, replan.timeline[10][1] - 1)
    table.add_row("fifo", fifo.makespan, fifo.timeline[10][1] - 1)
    emit(table)
    assert replan.timeline[10][1] <= fifo.timeline[10][1]

    benchmark(run_online, arrivals, caps, "replan")
