"""EXP-ORBIT — watching Section V's edge orbits in both regimes.

The reference orbit machinery (Definitions 5.5–5.7) is exercised on
partial colorings left behind by first-fit:

* **starved palette** (``q < OPT``, dense multigraphs): growth quickly
  dead-ends in Δ-/Γ-witnesses — exactly Lemma 5.4's promise that a
  too-small palette betrays itself structurally (the algorithm then
  adds a color, justified by the witness);
* **adequate palette** (``q = OPT``, regular bipartite): the bad-edge
  orbits resolve — a recoloring exists and the machinery (via the flip
  engine) finds it, so no new color is spent.
"""

import random

import pytest

from benchmarks.bench_fig4_abpaths import regular_bipartite_instance
from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.edge_orbits import explore_orbits, seed_orbits
from repro.core.recolor import ColoringState
from repro.workloads.generators import random_instance


def first_fit(state, seed):
    order = state.graph.edge_ids()
    random.Random(seed).shuffle(order)
    for eid in order:
        u, v = state.graph.endpoints(eid)
        c = state.common_missing_color(u, v)
        if c is not None:
            state.assign(eid, c)
    return state


def starved_state(num_disks: int, num_items: int, palette_squeeze: int, seed: int):
    """First-fit with a squeezed palette; leftovers become bad edges."""
    inst = random_instance(num_disks, num_items, uniform_capacity=1, seed=seed)
    q = max(1, inst.delta_prime() - palette_squeeze)
    state = ColoringState(inst.graph, inst.capacities, q, seed=seed)
    return inst, first_fit(state, seed)


def adequate_state(n: int, d: int, seed: int):
    """Regular bipartite at its optimal palette (König: q = d works)."""
    inst = regular_bipartite_instance(n, d, seed)
    state = ColoringState(inst.graph, inst.capacities, d, seed=seed)
    return inst, first_fit(state, seed)


def test_orbit_growth_dynamics(benchmark):
    table = Table(
        "EXP-ORBIT: edge orbits under starved vs adequate palettes",
        ["regime", "graph", "orbits", "max size", "witnesses", "resolved"],
    )
    total_witnesses = 0
    for n, m, squeeze in ((3, 60, 3), (4, 150, 4), (5, 200, 5)):
        _inst, state = starved_state(n, m, squeeze, seed=n * 7)
        traces = explore_orbits(state)
        state.validate()
        witnesses = sum(1 for t in traces if "witness" in t.outcome)
        total_witnesses += witnesses
        table.add_row(
            f"starved (q=Δ'-{squeeze})", f"{n}d/{m}e", len(traces),
            max((t.final_size for t in traces), default=0),
            witnesses, sum(1 for t in traces if t.resolved),
        )
    total_resolved = 0
    for n, d in ((12, 9), (16, 12), (24, 16)):
        _inst, state = adequate_state(n, d, seed=n // 3)
        traces = explore_orbits(state)
        state.validate()
        resolved = sum(1 for t in traces if t.resolved)
        total_resolved += resolved
        table.add_row(
            "adequate (q=OPT)", f"{2 * n}d/{n * d}e", len(traces),
            max((t.final_size for t in traces), default=0),
            sum(1 for t in traces if "witness" in t.outcome), resolved,
        )
    emit(table)
    assert total_witnesses > 0, "starved palettes must produce witnesses"

    def kernel():
        _i, fresh = starved_state(5, 200, 5, seed=35)
        return explore_orbits(fresh)

    benchmark(kernel)


def test_orbit_seeds_match_bad_edges(benchmark):
    _inst, state = starved_state(4, 150, 4, seed=28)
    from repro.core.orbits import bad_edge_groups

    seeds = seed_orbits(state)
    groups = bad_edge_groups(state)
    assert len(seeds) == len(groups)

    benchmark(seed_orbits, state)
