"""EXP-SIM — end-to-end cluster scenarios through the simulator.

The paper's introduction motivates migration with load-balancing
reconfiguration and disk addition/removal.  This bench runs those
scenarios through the full pipeline (layout diff → transfer graph →
scheduler → bandwidth-splitting engine) and compares simulated
migration *time* (not just rounds) across schedulers — the end-to-end
version of the Figure 2 claim.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.cluster.engine import MigrationEngine
from repro.core.solver import plan_migration
from repro.workloads.scenarios import (
    decommission_scenario,
    scale_out_scenario,
    vod_rebalance_scenario,
)

SCENARIOS = [
    ("vod_rebalance", vod_rebalance_scenario),
    ("scale_out", scale_out_scenario),
    ("decommission", decommission_scenario),
]


def run_scenario(builder, method: str, seed: int = 11) -> tuple:
    scenario = builder(seed=seed)
    sched = plan_migration(scenario.instance, method=method)
    engine = MigrationEngine(scenario.cluster)  # bandwidth_split
    report = engine.execute(scenario.context, sched)
    return sched.num_rounds, report.total_time, scenario.instance.num_items


def test_sim_scenarios_by_method(benchmark):
    table = Table(
        "EXP-SIM: simulated migration time by scenario and scheduler "
        "(bandwidth-splitting model)",
        ["scenario", "moves", "auto rounds", "auto time", "homogeneous time", "speedup"],
    )
    for name, builder in SCENARIOS:
        auto_rounds, auto_time, moves = run_scenario(builder, "auto")
        _h_rounds, homo_time, _ = run_scenario(builder, "homogeneous")
        table.add_row(name, moves, auto_rounds, auto_time, homo_time, homo_time / auto_time)
        assert auto_time <= homo_time + 1e-9
    emit(table)

    benchmark(run_scenario, vod_rebalance_scenario, "auto")


def test_sim_failure_replan(benchmark):
    """Failure injection: replanning finishes the drain."""

    def kernel():
        scenario = scale_out_scenario(num_old=6, num_new=3, items_per_old_disk=25, seed=13)
        sched = plan_migration(scenario.instance)
        engine = MigrationEngine(scenario.cluster, time_model="unit")
        return engine.execute_with_replan(
            scenario.context,
            sched,
            fail_after_round=0,
            failed_disk="new2",
            planner=lambda inst: plan_migration(inst),
        )

    report = kernel()
    table = Table(
        "EXP-SIMb: disk failure after round 0 + replan",
        ["migrated", "stranded", "replans", "rounds executed", "total time"],
    )
    table.add_row(
        len(report.migrated_items), len(report.stranded_items),
        report.replans, report.rounds_executed, report.total_time,
    )
    emit(table)
    assert report.replans == 1

    benchmark(kernel)
