"""EXP-F2 — Figure 2: multi-transfer disks cut migration time.

The paper's motivating example: three disks, ``M`` items between every
pair.  With single-transfer disks (``c = 1``) the migration needs
``3M`` time units; letting every disk run two transfers on half
bandwidth (``c = 2``) needs ``M`` rounds of 2 time units = ``2M`` — a
1.5x speedup.  This bench regenerates that series with the real
scheduler and the bandwidth-splitting engine and times the full
pipeline.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.cluster.disk import Disk
from repro.cluster.engine import MigrationEngine
from repro.cluster.item import DataItem
from repro.cluster.layout import Layout
from repro.cluster.system import StorageCluster
from repro.core.solver import plan_migration

RING = {"a": "b", "b": "c", "c": "a"}


def build_cluster(items_per_pair: int, transfer_limit: int):
    disks = [
        Disk(disk_id=d, transfer_limit=transfer_limit, bandwidth=1.0) for d in RING
    ]
    items, layout, target = [], Layout(), Layout()
    for src, dst in RING.items():
        for k in range(items_per_pair):
            item = DataItem(item_id=f"{src}->{dst}/{k}")
            items.append(item)
            layout.place(item.item_id, src)
            target.place(item.item_id, dst)
    return StorageCluster(disks=disks, items=items, layout=layout), target


def run_pipeline(items_per_pair: int, transfer_limit: int) -> float:
    cluster, target = build_cluster(items_per_pair, transfer_limit)
    ctx = cluster.migration_to(target)
    sched = plan_migration(ctx.instance)
    report = MigrationEngine(cluster).execute(ctx, sched)
    return report.total_time


def test_fig2_series(benchmark):
    table = Table(
        "EXP-F2 (Figure 2): K3 with M items/pair — simulated migration time",
        ["M", "time c=1", "paper 3M", "time c=2", "paper 2M", "speedup"],
    )
    for m in (2, 4, 8, 16, 32):
        t1 = run_pipeline(m, 1)
        t2 = run_pipeline(m, 2)
        table.add_row(m, t1, 3 * m, t2, 2 * m, t1 / t2)
        assert t1 == pytest.approx(3 * m)
        assert t2 == pytest.approx(2 * m)
    emit(table)
    benchmark(run_pipeline, 32, 2)


@pytest.mark.parametrize("limit", [1, 2])
def test_bench_fig2_pipeline(benchmark, limit):
    result = benchmark(run_pipeline, 16, limit)
    assert result == pytest.approx((3 if limit == 1 else 2) * 16)
