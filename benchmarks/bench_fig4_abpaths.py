"""EXP-F4 — Figure 4: ab-path flips in the capacitated recolorer.

Figure 4 illustrates the alternating-path flip (Definition 5.2) that
frees a missing color so an uncolored edge can be colored (Lemma 5.1).
To make the flips do real work we color ``d``-regular bipartite
multigraphs with the *optimal* palette ``q = d`` (König's theorem says
it exists, but first-fit alone reliably gets stuck near the end): the
table reports how many stuck edges the flip engine rescues — the
algorithm achieves the optimal palette iff nothing stays stuck.
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.problem import MigrationInstance
from repro.core.recolor import ColoringState
from repro.graphs.multigraph import Multigraph


def regular_bipartite_instance(n: int, d: int, seed: int) -> MigrationInstance:
    """A d-regular bipartite multigraph (union of d random matchings)."""
    rng = random.Random(seed)
    g = Multigraph(
        nodes=[("L", i) for i in range(n)] + [("R", i) for i in range(n)]
    )
    for _ in range(d):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(n):
            g.add_edge(("L", i), ("R", perm[i]))
    return MigrationInstance(g, {v: 1 for v in g.nodes})


def flip_stats(inst: MigrationInstance, q: int, seed: int):
    """Color everything with q colors; count direct/rescued/stuck."""
    state = ColoringState(inst.graph, inst.capacities, q, seed=seed)
    order = inst.graph.edge_ids()
    random.Random(seed).shuffle(order)
    direct = rescued = stuck = 0
    for eid in order:
        u, v = inst.graph.endpoints(eid)
        c = state.common_missing_color(u, v)
        if c is not None:
            state.assign(eid, c)
            direct += 1
        elif state.try_color_edge(eid):
            rescued += 1
        else:
            stuck += 1
    state.validate()
    return direct, rescued, stuck


def test_fig4_flip_rescue_rates(benchmark):
    table = Table(
        "EXP-F4 (Figure 4): ab-path flips on d-regular bipartite at the "
        "optimal palette q = d",
        ["side n", "degree d", "edges", "direct", "flip-rescued", "stuck", "optimal palette"],
    )
    for n, d in ((8, 6), (16, 10), (32, 16), (48, 24)):
        inst = regular_bipartite_instance(n, d, seed=n)
        direct, rescued, stuck = flip_stats(inst, d, seed=n)
        table.add_row(n, d, n * d, direct, rescued, stuck, str(stuck == 0))
        assert stuck == 0, "flip engine failed to reach the König optimum"
        assert rescued > 0, "workload too easy: flips never exercised"
    emit(table)

    inst = regular_bipartite_instance(16, 10, seed=16)
    benchmark(flip_stats, inst, 10, 16)


def test_bench_single_flip(benchmark):
    inst = regular_bipartite_instance(32, 16, seed=5)
    state = ColoringState(inst.graph, inst.capacities, 16, seed=5)
    for eid in inst.graph.edge_ids():
        state.try_color_edge(eid)
    saturated = [
        (v, c)
        for v in inst.graph.nodes
        for c in range(state.q)
        if state.is_saturated(v, c)
    ]
    rng = random.Random(1)

    def kernel():
        v, c = rng.choice(saturated)
        targets = state.missing_colors(v)
        if targets:
            state.attempt_flip(v, c, targets[0])

    benchmark(kernel)
    state.validate()
