"""EXP-EX — exact optimum anchoring on tiny instances.

``OPT`` itself is NP-hard, so the other experiments compare against
the certified lower bound.  Here, on instances small enough for
brute force, we close the loop: the table reports LB, the exact OPT,
the even-capacity scheduler (must equal OPT when capacities are even)
and the general algorithm (must stay within Theorem 5.1's budget of
the true OPT, and in practice matches it).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.even_optimal import even_optimal_schedule
from repro.core.exact import exact_optimum_rounds
from repro.core.general import general_schedule
from repro.core.lower_bounds import lower_bound
from tests.conftest import even_instance, random_instance


def test_exact_anchor_general(benchmark):
    table = Table(
        "EXP-EX: exact OPT vs LB vs general algorithm (tiny instances)",
        ["seed", "items", "LB", "OPT", "general", "gap to OPT"],
    )
    worst_gap = 0
    for seed in range(10):
        inst = random_instance(5, 9, capacity_choices=(1, 2, 3), seed=seed)
        opt = exact_optimum_rounds(inst)
        got = general_schedule(inst).num_rounds
        lb = lower_bound(inst)
        worst_gap = max(worst_gap, got - opt)
        table.add_row(seed, inst.num_items, lb, opt, got, got - opt)
        assert lb <= opt <= got
    emit(table)
    assert worst_gap <= 1

    inst = random_instance(5, 9, capacity_choices=(1, 2, 3), seed=0)
    benchmark(exact_optimum_rounds, inst)


def test_exact_anchor_even(benchmark):
    table = Table(
        "EXP-EXb: exact OPT == Δ' == even-optimal rounds (Theorem 4.1 anchor)",
        ["seed", "items", "Δ'", "OPT", "even-optimal"],
    )
    for seed in range(6):
        inst = even_instance(4, 8, capacity_choices=(2, 4), seed=seed)
        opt = exact_optimum_rounds(inst)
        got = even_optimal_schedule(inst).num_rounds
        table.add_row(seed, inst.num_items, inst.delta_prime(), opt, got)
        assert got == opt == inst.delta_prime() or inst.num_items == 0
    emit(table)

    inst = even_instance(4, 8, capacity_choices=(2, 4), seed=0)
    benchmark(even_optimal_schedule, inst)
