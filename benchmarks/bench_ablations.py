"""EXP-ABL — ablations of the design choices DESIGN.md calls out.

Three knobs are ablated on a fixed scenario mix:

1. **Round synchronization** — the paper's round model vs the eager
   (event-driven) executor under the same reserved-lane rate model.
2. **Flip engine** — the general algorithm vs pure first-fit
   (``greedy``): how many rounds the ab-path machinery saves.
3. **Completion-time reordering** — sum of completion times before and
   after the weight-ordered round permutation (makespan unchanged).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.cluster.eager import EagerEngine
from repro.core.solver import plan_migration
from repro.extensions.completion_time import (
    reorder_rounds_by_weight,
    sum_completion_time,
)
from repro.workloads.generators import random_instance
from repro.workloads.scenarios import scale_out_scenario, vod_rebalance_scenario


def test_abl_round_sync_vs_eager(benchmark):
    table = Table(
        "EXP-ABL1: round-synchronized vs eager execution (reserved-lane rates)",
        ["scenario", "rounds", "round-model time", "eager time", "eager/rounds"],
    )
    for name, builder in (("vod", vod_rebalance_scenario), ("scale_out", scale_out_scenario)):
        # Round model under reserved shares (comparable to eager).
        scenario = builder(seed=21)
        sched = plan_migration(scenario.instance)
        graph = scenario.instance.graph
        round_time = 0.0
        for rnd in sched.rounds:
            worst = 0.0
            for eid in rnd:
                u, v = graph.endpoints(eid)
                du, dv = scenario.cluster.disk(u), scenario.cluster.disk(v)
                rate = min(du.bandwidth / du.transfer_limit, dv.bandwidth / dv.transfer_limit)
                item = scenario.cluster.items[scenario.context.edge_items[eid]]
                worst = max(worst, item.size / rate)
            round_time += worst
        eager_scenario = builder(seed=21)
        eager = EagerEngine(eager_scenario.cluster).execute(eager_scenario.context)
        table.add_row(name, sched.num_rounds, round_time, eager.total_time,
                      eager.total_time / round_time)
    emit(table)

    scenario = scale_out_scenario(seed=21)
    benchmark(EagerEngine(scenario.cluster).execute, scenario.context)


def test_abl_flip_engine_value(benchmark):
    table = Table(
        "EXP-ABL2: ab-path flip engine vs pure first-fit (rounds saved)",
        ["workload", "LB", "general", "greedy", "saved"],
    )
    # Near-regular graphs at c_v = 1 are the hard case for first-fit:
    # every node is equally saturated, so the last edges find no common
    # free color without recoloring.
    from repro.core.lower_bounds import lower_bound
    from repro.workloads.generators import regular_instance

    workloads = [
        ("20-node 8-regular", regular_instance(20, 8, capacity=1, seed=20)),
        ("30-node 12-regular", regular_instance(30, 12, capacity=1, seed=30)),
        ("40-node 16-regular", regular_instance(40, 16, capacity=1, seed=40)),
        ("random odd caps", random_instance(16, 400, capacities={1: 0.5, 3: 0.5}, seed=32)),
    ]

    for name, inst in workloads:
        general = plan_migration(inst, method="general").num_rounds
        greedy = plan_migration(inst, method="greedy").num_rounds
        table.add_row(name, lower_bound(inst), general, greedy, greedy - general)
        assert general <= greedy
    emit(table)

    inst = workloads[1][1]
    benchmark(plan_migration, inst, "general")


def test_abl_even_rounding_vs_general(benchmark):
    """Is the orbit machinery worth it when capacities are odd-but-big?
    Rounding odd c_v down to even enables the exact Section IV
    algorithm at a (1 + 1/(c_min-1)) price; the general algorithm
    recovers that loss."""
    from repro.core.lower_bounds import lower_bound

    table = Table(
        "EXP-ABL4: even-rounding (exact substrate) vs the general algorithm",
        ["capacity set", "LB", "general", "even-rounding", "rounding penalty"],
    )
    for caps in ({3: 1.0}, {3: 0.5, 5: 0.5}, {5: 0.5, 9: 0.5}):
        inst = random_instance(14, 420, capacities=caps, seed=51)
        general = plan_migration(inst, method="general").num_rounds
        rounded = plan_migration(inst, method="even_rounding").num_rounds
        table.add_row(
            str(sorted(caps)), lower_bound(inst), general, rounded,
            rounded / general,
        )
        assert general <= rounded
        c_min = min(caps)
        assert rounded <= (1 + 1 / (c_min - 1)) * general + 2
    emit(table)

    inst = random_instance(14, 420, capacities={3: 0.5, 5: 0.5}, seed=51)
    benchmark(plan_migration, inst, "even_rounding")


def test_abl_priority_scheduling_strategies(benchmark):
    """Three ways to serve weighted items early: post-hoc round
    reordering, item promotion, and priority-first greedy packing —
    weighted completion time vs makespan for each."""
    import random as _r

    from repro.extensions.completion_time import (
        promote_items,
        weighted_greedy_schedule,
        weighted_sum_completion_time,
    )

    table = Table(
        "EXP-ABL5: priority strategies — weighted completion time vs makespan",
        ["strategy", "rounds", "weighted SCT"],
    )
    inst = random_instance(10, 300, capacities={1: 0.4, 2: 0.4, 4: 0.2}, seed=61)
    rng = _r.Random(61)
    weights = {eid: rng.choice([1.0] * 9 + [50.0]) for eid in inst.graph.edge_ids()}

    base = plan_migration(inst)
    reordered = reorder_rounds_by_weight(base, weights)
    promoted = promote_items(reordered, inst, weights)
    greedy = weighted_greedy_schedule(inst, weights)
    for name, sched in (
        ("makespan as-is", base),
        ("+ round reorder", reordered),
        ("+ item promote", promoted),
        ("priority greedy", greedy),
    ):
        table.add_row(name, sched.num_rounds, weighted_sum_completion_time(sched, weights))
    emit(table)
    assert weighted_sum_completion_time(promoted, weights) <= (
        weighted_sum_completion_time(base, weights)
    )

    benchmark(weighted_greedy_schedule, inst, weights)


def test_abl_completion_reordering(benchmark):
    table = Table(
        "EXP-ABL3: round reordering for sum of completion times",
        ["workload", "rounds", "SCT as-scheduled", "SCT reordered", "reduction %"],
    )
    for seed in (41, 42, 43):
        inst = random_instance(14, 500, capacities={1: 0.4, 2: 0.4, 4: 0.2}, seed=seed)
        sched = plan_migration(inst)
        before = sum_completion_time(sched)
        after_sched = reorder_rounds_by_weight(sched)
        after = sum_completion_time(after_sched)
        table.add_row(
            f"random seed {seed}", sched.num_rounds, before, after,
            100.0 * (before - after) / before,
        )
        assert after <= before
        assert after_sched.num_rounds == sched.num_rounds
    emit(table)

    inst = random_instance(14, 500, capacities={1: 0.4, 2: 0.4, 4: 0.2}, seed=41)
    sched = plan_migration(inst)
    benchmark(reorder_rounds_by_weight, sched)
