"""EXP-LB — Section III: when does each lower bound bind?

LB1 (per-node bandwidth) binds on spread-out workloads; LB2 (subset
density) binds when multiplicity concentrates inside capacity-poor
subsets (odd cycles at c=1, hot pairs).  The table sweeps workload
shapes and reports both bounds; a second table measures the LB2
heuristic against exhaustive enumeration on small graphs.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.lower_bounds import lb1, lb2, lb2_exact, lower_bound
from repro.core.problem import MigrationInstance
from repro.workloads.generators import clique_instance, hotspot_instance, random_instance
from tests.conftest import random_instance as tiny_instance


def test_lb_binding_sweep(benchmark):
    workloads = [
        ("spread random", random_instance(20, 300, capacities={2: 0.5, 4: 0.5}, seed=1)),
        ("hot pair", MigrationInstance.from_moves([("a", "b")] * 40, {"a": 3, "b": 2})),
        ("odd cycle c=1", MigrationInstance.uniform(
            [("a", "b"), ("b", "c"), ("c", "a")] * 5, capacity=1)),
        ("clique c=1", clique_instance(5, 6, capacity=1)),
        ("hotspot drain", hotspot_instance(12, 2, 200, hot_capacity=4, cold_capacity=1, seed=2)),
    ]
    table = Table(
        "EXP-LB: LB1 (bandwidth) vs LB2 (density) across workload shapes",
        ["workload", "LB1 = Δ'", "LB2 = Γ'", "binding", "LB"],
    )
    for name, inst in workloads:
        a, b = lb1(inst), lb2(inst)
        binding = "LB1" if a >= b else "LB2"
        table.add_row(name, a, b, binding, max(a, b))
    emit(table)

    inst = workloads[0][1]
    benchmark(lower_bound, inst)


def test_lb2_heuristic_vs_exact(benchmark):
    matches = 0
    trials = 40
    worst_gap = 0
    for seed in range(trials):
        inst = tiny_instance(7, 16, capacity_choices=(1, 2, 3), seed=seed)
        h, e = lb2(inst), lb2_exact(inst)
        assert h <= e  # heuristic is always sound
        matches += h == e
        worst_gap = max(worst_gap, e - h)
    table = Table(
        "EXP-LBb: LB2 heuristic vs exhaustive enumeration (7-node graphs)",
        ["trials", "exact matches", "match %", "worst gap"],
    )
    table.add_row(trials, matches, 100.0 * matches / trials, worst_gap)
    emit(table)
    assert matches >= trials * 0.8  # the candidate family is strong

    inst = tiny_instance(7, 16, capacity_choices=(1, 2, 3), seed=0)
    benchmark(lb2_exact, inst)
