"""EXP-T41 — Theorem 4.1: the even-capacity scheduler is optimal.

The paper proves that with all ``c_v`` even, a schedule of exactly
``Δ' = max_v ceil(d_v/c_v)`` rounds exists.  The table sweeps instance
size, density and capacity mixes and reports ``rounds == Δ'`` for every
cell (optimality is *certified* because ``Δ'`` is a lower bound); the
benchmark times the full pipeline (augment → Euler → Δ' flow peels).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.even_optimal import even_optimal_schedule
from repro.core.lower_bounds import lb1
from repro.workloads.generators import clique_instance, random_instance

SWEEP = [
    # (disks, items, capacity mix)
    (6, 30, {2: 1.0}),
    (10, 100, {2: 0.5, 4: 0.5}),
    (20, 400, {2: 0.3, 4: 0.4, 6: 0.3}),
    (40, 1500, {2: 0.25, 4: 0.5, 8: 0.25}),
    (80, 5000, {4: 0.5, 8: 0.5}),
]


def test_t41_optimality_sweep(benchmark):
    table = Table(
        "EXP-T41 (Theorem 4.1): even capacities — rounds vs Δ' (optimal iff equal)",
        ["disks", "items", "cap mix", "Δ' = LB1", "rounds", "optimal"],
    )
    for n, m, mix in SWEEP:
        inst = random_instance(n, m, capacities=mix, seed=n + m)
        sched = even_optimal_schedule(inst)
        sched.validate(inst)
        optimal = sched.num_rounds == lb1(inst)
        table.add_row(n, m, str(sorted(mix)), lb1(inst), sched.num_rounds, str(optimal))
        assert optimal
    emit(table)

    inst = random_instance(20, 400, capacities={2: 0.5, 4: 0.5}, seed=1)
    benchmark(even_optimal_schedule, inst)


def test_t41_clique_family(benchmark):
    table = Table(
        "EXP-T41b: K_n cliques with even capacity c=2 (Figure 2 family)",
        ["n", "items/pair", "Δ'", "rounds", "optimal"],
    )
    for n, per_pair in ((3, 8), (5, 6), (8, 4), (12, 3)):
        inst = clique_instance(n, per_pair, capacity=2)
        sched = even_optimal_schedule(inst)
        sched.validate(inst)
        table.add_row(n, per_pair, lb1(inst), sched.num_rounds, str(sched.num_rounds == lb1(inst)))
        assert sched.num_rounds == lb1(inst)
    emit(table)
    benchmark(even_optimal_schedule, clique_instance(8, 4, capacity=2))


def test_bench_large_even_instance(benchmark):
    inst = random_instance(80, 5000, capacities={4: 0.5, 8: 0.5}, seed=99)
    sched = benchmark(even_optimal_schedule, inst)
    assert sched.num_rounds == lb1(inst)
