"""Shared helpers for the benchmark harness.

Each ``bench_*`` module reproduces one experiment row of DESIGN.md's
index: it prints the experiment's table (the "paper rows") and times a
representative kernel with pytest-benchmark.

pytest captures test output, so tables are buffered and flushed through
``pytest_terminal_summary`` — they appear below the benchmark timing
table on every ``pytest benchmarks/ --benchmark-only`` run — and are
also archived to ``benchmarks/results/experiments.txt``.
"""

from __future__ import annotations

import pathlib
from typing import List

import pytest

from repro.analysis.tables import Table

_RESULTS: List[str] = []
_RESULTS_FILE = pathlib.Path(__file__).parent / "results" / "experiments.txt"


def emit(table: Table) -> None:
    """Queue a table for the end-of-run experiment report."""
    _RESULTS.append(table.render())


def emit_line(text: str) -> None:
    _RESULTS.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    terminalreporter.section("experiment tables (see DESIGN.md / EXPERIMENTS.md)")
    body = "\n\n".join(_RESULTS)
    terminalreporter.write_line(body)
    _RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    _RESULTS_FILE.write_text(body + "\n")
    terminalreporter.write_line(f"\n[archived to {_RESULTS_FILE}]")
