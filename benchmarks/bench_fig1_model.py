"""EXP-F1 — Figure 1: the transfer-graph model at scale.

Figure 1 illustrates a transfer instance: disks as nodes, one edge per
data item, parallel edges when several items move between the same
pair.  This bench builds transfer graphs of increasing size from raw
move lists, reports their structural statistics (multiplicity, Δ, Δ'),
and times instance construction + schedule validation — the model
plumbing every other experiment relies on.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.lower_bounds import lb1
from repro.core.solver import plan_migration
from repro.workloads.generators import random_instance


def build(num_disks: int, num_items: int):
    return random_instance(
        num_disks, num_items, capacities={1: 0.3, 2: 0.4, 4: 0.3}, seed=17
    )


def test_fig1_model_statistics(benchmark):
    table = Table(
        "EXP-F1 (Figure 1): transfer-graph model statistics",
        ["disks", "items", "max multiplicity", "max degree", "Δ'", "validate ok"],
    )
    for n, m in ((5, 20), (20, 200), (50, 1000), (100, 5000)):
        inst = build(n, m)
        sched = plan_migration(inst, method="greedy")
        sched.validate(inst)
        table.add_row(
            n, m, inst.graph.max_multiplicity(), inst.graph.max_degree(), lb1(inst), "yes"
        )
    emit(table)
    benchmark(build, 50, 1000)


def test_bench_schedule_validation(benchmark):
    inst = build(50, 1000)
    sched = plan_migration(inst, method="greedy")

    def validate():
        sched.validate(inst)
        return sched.num_rounds

    assert benchmark(validate) >= lb1(inst)
