"""EXP-SIM2 — failure-and-recovery campaign throughput and durability.

The closed-loop simulator (:mod:`repro.sim`) drives the staged planner
with a continuous stream of repair instances.  This bench measures

* campaign throughput — simulator events processed per wall-clock
  second, and the share of wall time spent inside ``repro.plan`` (the
  planner is on the sim's critical path, so its share bounds how much
  the PlanCache can help);
* repair makespan and durability across the three placement policies
  (the paper's scheduling quality, observed through recovery speed);
* the EXP-SIM end-to-end scenario numbers from
  :mod:`benchmarks.bench_sim_cluster`, folded in so one file tracks
  every simulator-level metric.

Each run appends (or refreshes, keyed by commit) one entry in
``BENCH_SIM.json`` at the repo root, so the numbers accrete per PR.
Run standalone with ``python -m benchmarks.bench_sim``.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess
import time
from typing import Dict

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.obs import names
from repro.sim import (
    DEFAULT_POLICY_SPECS,
    SimConfig,
    SimEngine,
    compare_policies,
)

import repro.sim.engine as sim_engine

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SIM.json"
BENCH_SCHEMA = "bench-sim/v1"

#: The throughput campaign: busy enough to exercise repairs, small
#: enough to finish in well under a second.
CAMPAIGN = dict(duration=2000.0, items=200, seed=7, failure_rate=0.002)

#: The policy-comparison campaign: same failure process per policy.
POLICY_CAMPAIGN = dict(duration=1500.0, items=150, seed=11, failure_rate=0.002)


def timed_campaign(config: SimConfig):
    """Run a campaign, timing total wall and planner wall separately.

    The engine's *modeled* planner latency is simulated time; here we
    measure real time by shimming the ``plan`` call the engine makes.
    """
    spent = {"plan": 0.0}
    real_plan = sim_engine.plan

    def shim(*args, **kwargs):
        start = time.perf_counter()
        try:
            return real_plan(*args, **kwargs)
        finally:
            spent["plan"] += time.perf_counter() - start

    sim_engine.plan = shim
    start = time.perf_counter()
    try:
        engine = SimEngine(config).run()
    finally:
        sim_engine.plan = real_plan
    wall = time.perf_counter() - start
    return engine, wall, spent["plan"]


def collect_metrics() -> Dict[str, object]:
    """One BENCH_SIM.json metrics payload."""
    engine, wall, plan_wall = timed_campaign(SimConfig(**CAMPAIGN))
    events = engine.metrics.counters.get(names.SIM_EVENTS, 0)
    throughput = {
        "events": events,
        "wall_seconds": round(wall, 4),
        "events_per_second": round(events / wall) if wall > 0 else 0,
        "planner_wall_seconds": round(plan_wall, 4),
        "planner_share": round(plan_wall / wall, 4) if wall > 0 else 0.0,
        "incidents": len(engine.incidents),
        "plan_components_cached": engine.metrics.counters.get(
            names.SIM_PLAN_COMPONENTS_CACHED, 0
        ),
    }

    policies: Dict[str, object] = {}
    reports = compare_policies(SimConfig(**POLICY_CAMPAIGN), DEFAULT_POLICY_SPECS)
    for name in sorted(reports):
        summary = reports[name].summary
        policies[name] = {
            "mean_repair_makespan": summary["mean_repair_makespan"],
            "max_repair_makespan": summary["max_repair_makespan"],
            "data_loss_events": summary["data_loss_events"],
            "under_replicated_item_time": summary["under_replicated_item_time"],
            "repair_bytes": summary["repair_bytes"],
        }

    # Fold in the EXP-SIM cluster-scenario numbers so BENCH_SIM.json is
    # the single simulator-metric record.
    from benchmarks.bench_sim_cluster import SCENARIOS, run_scenario

    scenarios: Dict[str, object] = {}
    for name, builder in SCENARIOS:
        auto_rounds, auto_time, moves = run_scenario(builder, "auto")
        _rounds, homo_time, _moves = run_scenario(builder, "homogeneous")
        scenarios[name] = {
            "moves": moves,
            "auto_rounds": auto_rounds,
            "auto_time": round(auto_time, 4),
            "homogeneous_time": round(homo_time, 4),
        }

    return {
        "campaign": throughput,
        "policies": policies,
        "cluster_scenarios": scenarios,
    }


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=BENCH_FILE.parent,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_entry(metrics: Dict[str, object]) -> Dict[str, object]:
    """Append (or refresh, same commit) one entry in BENCH_SIM.json."""
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    else:
        data = {"schema": BENCH_SCHEMA, "entries": []}
    entry = {
        "commit": _current_commit(),
        "date": datetime.date.today().isoformat(),
        "metrics": metrics,
    }
    entries = [e for e in data["entries"] if e.get("commit") != entry["commit"]]
    entries.append(entry)
    data["entries"] = entries
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entry


def test_sim_campaign_metrics(benchmark):
    metrics = collect_metrics()
    campaign = metrics["campaign"]

    table = Table(
        "EXP-SIM2: failure-and-recovery campaign throughput",
        ["events", "wall (s)", "events/s", "planner share", "incidents", "cached"],
    )
    table.add_row(
        campaign["events"], campaign["wall_seconds"],
        campaign["events_per_second"], campaign["planner_share"],
        campaign["incidents"], campaign["plan_components_cached"],
    )
    emit(table)

    policy = Table(
        "EXP-SIM2b: durability and repair speed by placement policy",
        ["policy", "mean makespan", "max makespan", "loss events", "exposure"],
    )
    for name, row in metrics["policies"].items():
        policy.add_row(
            name, row["mean_repair_makespan"], row["max_repair_makespan"],
            row["data_loss_events"], row["under_replicated_item_time"],
        )
    emit(policy)

    append_entry(metrics)
    assert campaign["incidents"] > 0
    assert campaign["planner_share"] < 1.0

    benchmark(lambda: SimEngine(SimConfig(**CAMPAIGN)).run())


def main() -> int:
    entry = append_entry(collect_metrics())
    print(json.dumps(entry, indent=2, sort_keys=True))
    print(f"appended to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
