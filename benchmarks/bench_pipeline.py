"""EXP-PIPE — the staged planning pipeline vs monolithic dispatch.

Three claims, each measured:

1. **Decomposition win-rate** — on multi-component mixed-parity
   instances, per-component planning is never worse than the
   monolithic general solver and strictly better on some instances:
   an even or bipartite component is promoted to its optimal
   algorithm, and a component the randomized general solver lands
   above its lower bound on is cheaply restarted with fresh seeds —
   affordable only because a restart re-solves one small component,
   never the whole instance.
2. **Parallel solving** — independent components solve concurrently;
   on 8 heavy components the pool beats serial wall time ≥ 1.5× while
   producing byte-identical schedules.
3. **Cached replanning** — after a single-component change, a cached
   replan re-solves only the affected component.

Results are also written as a JSON artifact
(``benchmarks/results/pipeline.json``) for tracking across runs.
"""

import json
import os
import pathlib
import random
import time

import pytest

from benchmarks.conftest import emit, emit_line
from repro.analysis.tables import Table
from repro.core.general import general_schedule
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Multigraph
from repro.pipeline import PlanCache, plan
from repro.workloads.generators import multi_component_instance

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "pipeline.json"
_ARTIFACT = {}


def _record(key, value):
    _ARTIFACT[key] = value
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(_ARTIFACT, indent=2, sort_keys=True) + "\n")


def heavy_multi_component(num_components, disks=14, items=150, seed=0):
    """Disjoint odd-capacity components sized so the general solver's
    exhaustive small-graph LB2 dominates solve time."""
    rng = random.Random(seed)
    graph = Multigraph()
    caps = {}
    for k in range(num_components):
        nodes = [f"c{k:02d}.d{i:02d}" for i in range(disks)]
        for v in nodes:
            graph.add_node(v)
        for a, b in zip(nodes, nodes[1:]):
            graph.add_edge(a, b)
        for _ in range(items - (disks - 1)):
            u, v = rng.sample(nodes, 2)
            graph.add_edge(u, v)
        for v in nodes:
            caps[v] = rng.choice((1, 3))
    return MigrationInstance(graph, caps)


def test_pipe_decomposition_win_rate(benchmark):
    """≥ 50 mixed-parity multi-component instances: pipeline ``auto``
    is never worse than monolithic general, strictly better somewhere."""
    table = Table(
        "EXP-PIPE: component-wise planning vs monolithic general (50 instances)",
        ["components", "instances", "ties", "wins", "max saved", "mean ratio"],
    )
    wins_total = 0
    rows = []
    for num_components in (2, 4, 6, 8, 10):
        ties = wins = 0
        saved_max = 0
        ratios = []
        for trial in range(10):
            seed = 101 * num_components + trial
            inst = multi_component_instance(
                num_components, disks_per_component=5,
                items_per_component=50, seed=seed,
            )
            pipe = plan(inst, seed=seed)
            mono = general_schedule(inst, seed=seed)
            assert pipe.num_rounds <= mono.num_rounds, (
                f"pipeline worse than monolithic on seed {seed}"
            )
            saved = mono.num_rounds - pipe.num_rounds
            if saved > 0:
                wins += 1
                saved_max = max(saved_max, saved)
            else:
                ties += 1
            ratios.append(pipe.num_rounds / mono.num_rounds)
        wins_total += wins
        mean_ratio = sum(ratios) / len(ratios)
        table.add_row(num_components, 10, ties, wins, saved_max, round(mean_ratio, 4))
        rows.append({
            "components": num_components, "ties": ties, "wins": wins,
            "max_rounds_saved": saved_max, "mean_ratio": mean_ratio,
        })
    emit(table)
    assert wins_total >= 1, "decomposition never improved on 50 instances"
    _record("decomposition_sweep", {
        "instances": 50, "wins": wins_total, "rows": rows,
    })

    inst = multi_component_instance(6, disks_per_component=5,
                                    items_per_component=50, seed=42)
    benchmark(plan, inst)


def test_pipe_parallel_speedup():
    """8 heavy components: process-pool solve ≥ 1.5× faster, same bytes."""
    inst = heavy_multi_component(8, seed=3)

    t0 = time.perf_counter()
    serial = plan(inst)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = plan(inst, parallel=True)
    parallel_s = time.perf_counter() - t0

    assert parallel.schedule.rounds == serial.schedule.rounds
    assert parallel.schedule.method == serial.schedule.method
    speedup = serial_s / parallel_s
    emit_line(
        f"EXP-PIPEb: parallel component solving — serial {serial_s:.2f}s, "
        f"parallel {parallel_s:.2f}s ({os.cpu_count()} cores), "
        f"speedup {speedup:.2f}x, byte-identical schedules"
    )
    _record("parallel_8_components", {
        "serial_seconds": serial_s, "parallel_seconds": parallel_s,
        "speedup": speedup, "cores": os.cpu_count(),
        "identical_schedules": True,
    })
    if os.cpu_count() and os.cpu_count() >= 4:
        assert speedup >= 1.5, f"parallel speedup only {speedup:.2f}x"


def test_pipe_cached_replan():
    """Single-component change: the replan re-solves 1 of N components."""
    inst1 = heavy_multi_component(6, disks=10, items=60, seed=9)
    # The "fault": rebuild with one component's edge count changed.
    inst2 = heavy_multi_component(6, disks=10, items=60, seed=9)
    nodes0 = [v for v in inst2.graph.nodes if repr(v).startswith("'c00")]
    inst2.graph.add_edge(nodes0[0], nodes0[2])

    cache = PlanCache()
    t0 = time.perf_counter()
    cold = plan(inst1, cache=cache)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = plan(inst2, cache=cache)
    warm_s = time.perf_counter() - t0

    assert cold.components_solved == 6
    assert warm.components_solved == 1
    assert warm.components_cached == 5
    emit_line(
        f"EXP-PIPEc: cached replan after 1-of-6 component change — "
        f"cold plan {cold_s:.2f}s (6 solves), replan {warm_s:.2f}s "
        f"(1 solve, 5 cache hits), {cold_s / warm_s:.1f}x faster"
    )
    _record("cached_replan", {
        "components": 6, "cold_seconds": cold_s, "warm_seconds": warm_s,
        "resolved_components": warm.components_solved,
        "cached_components": warm.components_cached,
    })
    assert warm_s < cold_s
