"""EXP-BIP — optimally solvable special cases (Coffman et al.).

Section I notes Coffman et al. solved cycles, trees and bipartite
transfer graphs optimally.  Our :mod:`repro.core.special_cases` module
handles bipartite graphs (hence forests) for *arbitrary* capacities —
including the odd mixes that make the general problem NP-hard — via
node splitting + König coloring.  The table certifies optimality
(rounds == Δ' == LB1) across disk-addition shapes and compares against
what the general algorithm and Saia produce on the same inputs.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.lower_bounds import lb1
from repro.core.solver import plan_migration
from repro.core.special_cases import bipartite_optimal_schedule
from repro.workloads.generators import bipartite_instance


def test_bip_optimality_sweep(benchmark):
    table = Table(
        "EXP-BIP: bipartite transfer graphs — optimal for arbitrary (odd) c_v",
        ["old", "new", "items", "c_old/c_new", "Δ'", "bip-opt", "general", "saia"],
    )
    for old, new, items, c_old, c_new in (
        (6, 2, 100, 1, 3),
        (12, 4, 400, 1, 5),
        (20, 8, 1500, 3, 7),
        (40, 10, 5000, 1, 9),
    ):
        inst = bipartite_instance(old, new, items, c_old, c_new, seed=items)
        special = bipartite_optimal_schedule(inst)
        general = plan_migration(inst, method="general")
        saia = plan_migration(inst, method="saia")
        table.add_row(
            old, new, items, f"{c_old}/{c_new}", lb1(inst),
            special.num_rounds, general.num_rounds, saia.num_rounds,
        )
        assert special.num_rounds == lb1(inst)
        assert special.num_rounds <= general.num_rounds
    emit(table)

    inst = bipartite_instance(12, 4, 400, 1, 5, seed=400)
    benchmark(bipartite_optimal_schedule, inst)


def test_bip_auto_dispatch(benchmark):
    inst = bipartite_instance(8, 4, 300, old_capacity=1, new_capacity=3, seed=9)

    def run():
        return plan_migration(inst, method="auto")

    sched = benchmark(run)
    assert sched.method == "bipartite_optimal"
    assert sched.num_rounds == lb1(inst)
