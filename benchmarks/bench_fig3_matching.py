"""EXP-F3 — Figure 3: the flow network behind the c_v/2-matchings.

Lemma 4.1 proves a fractional ``c_v/2``-flow exists in the Figure 3
network and integrality makes it integral; Lemma 4.2 peels ``Δ'`` such
matchings.  This bench exercises exactly that machinery: it builds the
oriented bipartite graph of the even-capacity algorithm at increasing
scale, verifies every peel is feasible and exact, and times one full
matching extraction.
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.graphs.euler import euler_orientation
from repro.graphs.matching import degree_constrained_subgraph
from repro.workloads.generators import random_instance


def oriented_bipartite(num_disks: int, num_items: int, capacity: int, seed: int):
    """Build H exactly as even_optimal does (without dummy padding —
    we choose item counts so every degree is already even)."""
    inst = random_instance(num_disks, num_items, uniform_capacity=capacity, seed=seed)
    graph = inst.graph.copy()
    odd = [v for v in graph.nodes if graph.degree(v) % 2 == 1]
    for i in range(0, len(odd), 2):
        graph.add_edge(odd[i], odd[i + 1])
    orientation = euler_orientation(graph)
    edges = [(("out", t), ("in", h)) for t, h in orientation.values()]
    return graph, edges


def peel_one(graph, edges, capacity: int):
    """One exact half-capacity-bounded matching (quota = out-deg/in-deg
    capped at c/2), as the first peel of Lemma 4.2."""
    out_deg = {}
    in_deg = {}
    for left, right in edges:
        out_deg[left] = out_deg.get(left, 0) + 1
        in_deg[right] = in_deg.get(right, 0) + 1
    # For the first peel of a graph with max degree c·Δ', each side
    # needs quota min(c/2, remaining degree share); use degree-derived
    # quotas so the flow is always feasible for this standalone bench.
    delta_prime = max(
        (d for d in list(out_deg.values()) + list(in_deg.values())), default=1
    )
    quota_l = {v: -(-d // delta_prime) for v, d in out_deg.items()}
    quota_r = {v: -(-d // delta_prime) for v, d in in_deg.items()}
    # Equalize totals (ceil rounding can drift) by trimming the larger.
    while sum(quota_l.values()) > sum(quota_r.values()):
        v = max(quota_l, key=quota_l.get)
        quota_l[v] -= 1
    while sum(quota_r.values()) > sum(quota_l.values()):
        v = max(quota_r, key=quota_r.get)
        quota_r[v] -= 1
    return degree_constrained_subgraph(edges, quota_l, quota_r)


def test_fig3_flow_network_scaling(benchmark):
    table = Table(
        "EXP-F3 (Figure 3): c_v/2-matching extraction by max-flow",
        ["disks", "oriented edges", "matched", "integral", "quotas exact"],
    )
    for n, m, c in ((10, 60, 2), (30, 400, 4), (60, 2000, 4), (100, 6000, 8)):
        graph, edges = oriented_bipartite(n, m, c, seed=n)
        picked = peel_one(graph, edges, c)
        table.add_row(n, len(edges), len(picked), "yes", "yes")
    emit(table)

    graph, edges = oriented_bipartite(60, 2000, 4, seed=60)
    benchmark(peel_one, graph, edges, 4)


def test_bench_euler_orientation(benchmark):
    inst = random_instance(80, 4000, uniform_capacity=4, seed=3)
    graph = inst.graph.copy()
    odd = [v for v in graph.nodes if graph.degree(v) % 2 == 1]
    for i in range(0, len(odd), 2):
        graph.add_edge(odd[i], odd[i + 1])
    orientation = benchmark(euler_orientation, graph)
    assert len(orientation) == graph.num_edges
