"""EXP-THR — the throttle curve: migration speed vs client calm.

Aqueduct migrates under a performance guarantee; in the paper's model
the guarantee is headroom: schedule against ``max(1, floor(θ·c_v))``
lanes and leave the rest to clients.  The table sweeps θ on the VoD
scenario and reports the two degradation components: interference
falls with θ (fewer lanes busy), displacement rises (hot items wait
longer on the wrong disks) — the curve operators actually pick on.

A second table shows round balancing (`analysis.balance`): evening out
round sizes at fixed makespan to flatten per-round interference
spikes.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.balance import equalize_rounds, round_size_stats
from repro.analysis.tables import Table
from repro.core.solver import plan_migration
from repro.extensions.throttle import throttle_tradeoff
from repro.workloads.generators import random_instance
from repro.workloads.scenarios import vod_rebalance_scenario


def test_thr_tradeoff_curve(benchmark):
    scenario = vod_rebalance_scenario(num_disks=12, num_items=400, seed=29)
    points = throttle_tradeoff(
        scenario.cluster, scenario.context, thetas=(1.0, 0.75, 0.5, 0.25)
    )
    table = Table(
        "EXP-THR: throttle level θ vs migration duration and degradation",
        ["θ", "rounds", "duration", "interference", "displacement", "total"],
    )
    for p in points:
        table.add_row(
            p.theta, p.rounds, p.duration, p.interference, p.displacement,
            p.total_degradation,
        )
    emit(table)
    assert points[0].rounds <= points[-1].rounds
    assert points[-1].displacement >= points[0].displacement

    benchmark(
        throttle_tradeoff, scenario.cluster, scenario.context, (1.0, 0.5)
    )


def test_thr_round_balancing(benchmark):
    table = Table(
        "EXP-THRb: round-size balancing at fixed makespan",
        ["workload", "rounds", "stdev before", "stdev after", "max before", "max after"],
    )
    for seed in (71, 72, 73):
        inst = random_instance(12, 300, capacities={1: 0.4, 2: 0.4, 4: 0.2}, seed=seed)
        sched = plan_migration(inst, method="greedy")
        before = round_size_stats(sched)
        balanced = equalize_rounds(sched, inst)
        after = round_size_stats(balanced)
        table.add_row(
            f"random seed {seed}", sched.num_rounds,
            before["stdev"], after["stdev"], before["max"], after["max"],
        )
        assert after["stdev"] <= before["stdev"] + 1e-9
        assert balanced.num_rounds == sched.num_rounds
    emit(table)

    inst = random_instance(12, 300, capacities={1: 0.4, 2: 0.4, 4: 0.2}, seed=71)
    sched = plan_migration(inst, method="greedy")
    benchmark(equalize_rounds, sched, inst)
