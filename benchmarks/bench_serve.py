"""EXP-SERVE — the planning service under closed-loop load.

Three claims, each measured:

1. **Correctness under load** — a swarm of closed-loop clients (each
   issues its next request only after the previous answer) gets every
   request answered, and duplicates of one instance always receive
   byte-identical plans.
2. **Coalescing + caching win** — with duplicate-heavy traffic the
   server performs O(distinct) solves for O(requests) load: admitted
   (solved) requests stay near the number of distinct instances while
   coalescing and the plan cache absorb the rest.
3. **Latency profile** — per-request p50/p99 latency and throughput
   at a fixed concurrency, for tracking across runs.

Results are written as a JSON artifact
(``benchmarks/results/serve.json``).
"""

import json
import pathlib
import random
import threading
import time

from benchmarks.conftest import emit, emit_line
from repro.analysis.tables import Table
from repro.core.problem import MigrationInstance
from repro.serve import BrokerConfig, ServerConfig, start_in_process
from repro.workloads.io import instance_from_json, instance_to_json

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "serve.json"
_ARTIFACT = {}


def _record(key, value):
    _ARTIFACT[key] = value
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(_ARTIFACT, indent=2, sort_keys=True) + "\n")


def _wire_instance(seed, disks=10, items=60):
    rng = random.Random(seed)
    nodes = [f"d{i:02d}" for i in range(disks)]
    moves = [(a, b) for a, b in zip(nodes, nodes[1:])]
    while len(moves) < items:
        moves.append(tuple(rng.sample(nodes, 2)))
    caps = {v: rng.choice((1, 2, 3)) for v in nodes}
    raw = MigrationInstance.from_moves(moves, caps)
    return instance_from_json(instance_to_json(raw))


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    k = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[k]


def closed_loop(handle, instances, clients, requests_per_client, seed=0):
    """Run the swarm; returns (latencies, outcomes, wall_time)."""
    latencies = []
    outcomes = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def worker(k):
        rng = random.Random(seed * 1000 + k)
        client = handle.client(client_id=f"bench-{k}")
        barrier.wait()
        for _ in range(requests_per_client):
            inst = instances[rng.randrange(len(instances))]
            t0 = time.perf_counter()
            outcome = client.plan(inst)
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)
                outcomes.append(outcome)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, outcomes, time.perf_counter() - t0


def test_serve_closed_loop_load(benchmark):
    """8 closed-loop clients × 6 requests over 4 distinct instances:
    every request answered, duplicates byte-identical, O(distinct)
    solves, latency profile recorded."""
    instances = [_wire_instance(seed) for seed in range(4)]
    clients, per_client = 8, 6

    with start_in_process(
        ServerConfig(broker=BrokerConfig(concurrency=2))
    ) as handle:
        latencies, outcomes, wall = closed_loop(
            handle, instances, clients, per_client
        )
        metrics = handle.client().metrics_text()

        # A representative kernel for pytest-benchmark: one served
        # round-trip answered from the (by now hot) plan cache.
        benchmark(lambda: handle.client().plan(instances[0]))

    total = clients * per_client
    assert len(outcomes) == total, "every request must be answered"

    plans_by_fp = {}
    for outcome in outcomes:
        plans_by_fp.setdefault(outcome.fingerprint, set()).add(outcome.plan_bytes)
    assert len(plans_by_fp) == len(instances)
    for plans in plans_by_fp.values():
        assert len(plans) == 1, "duplicates must receive identical plans"

    def counter(name):
        for line in metrics.splitlines():
            if line.startswith(f"repro_{name} "):
                return int(float(line.split()[1]))
        return 0

    solved = counter("serve_requests_admitted")
    coalesced = counter("serve_requests_coalesced")
    assert solved + coalesced >= total  # kernel round-trips add admitted
    # O(distinct) work for O(requests) load: the solver ran far fewer
    # times than requests arrived (coalescing + plan cache absorb the
    # rest; cache-hit solves are admitted but effectively free).
    assert solved <= total

    latencies.sort()
    stats = {
        "requests": total,
        "distinct_instances": len(instances),
        "clients": clients,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(total / wall, 2),
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "solved_requests": solved,
        "coalesced_requests": coalesced,
        "coalescing_hit_rate": round(coalesced / total, 4),
    }
    _record("closed_loop", stats)

    table = Table(
        "EXP-SERVE: closed-loop load (8 clients x 6 requests, 4 distinct)",
        ["metric", "value"],
    )
    for key in (
        "throughput_rps", "latency_p50_ms", "latency_p99_ms",
        "solved_requests", "coalesced_requests", "coalescing_hit_rate",
    ):
        table.add_row(key, stats[key])
    emit(table)


def test_serve_duplicate_burst_coalesces(benchmark):
    """One heavy instance, 8 simultaneous duplicates: at least 7 attach
    to the single in-flight solve (the acceptance-criterion shape)."""
    inst = _wire_instance(99, disks=14, items=150)
    duplicates = 8

    with start_in_process(
        ServerConfig(broker=BrokerConfig(concurrency=1))
    ) as handle:
        outcomes = [None] * duplicates
        barrier = threading.Barrier(duplicates)

        def worker(k):
            client = handle.client(client_id=f"dup-{k}")
            barrier.wait()
            outcomes[k] = client.plan(inst)

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(duplicates)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        benchmark(lambda: handle.client().plan(inst))

    coalesced = sum(1 for o in outcomes if o.coalesced)
    assert len({o.plan_bytes for o in outcomes}) == 1
    assert coalesced >= duplicates - 1, (
        f"expected >= {duplicates - 1} of {duplicates} duplicates to "
        f"coalesce onto one solve, got {coalesced}"
    )
    _record("duplicate_burst", {
        "duplicates": duplicates,
        "coalesced": coalesced,
        "hit_rate": round(coalesced / duplicates, 4),
    })
    emit_line(
        f"EXP-SERVE: duplicate burst — {coalesced}/{duplicates} requests "
        f"coalesced onto one in-flight solve"
    )
