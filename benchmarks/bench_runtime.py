"""EXP-RUN — runtime supervision: fault rate vs. completion time.

The paper's premise is that migrations execute while the system is
degraded; the runtime layer (``repro.runtime``) is where that finally
happens.  This experiment sweeps the per-transfer fault rate on a
decommission drain and reports the cost of supervision: extra rounds
(retries re-occupy transfer slots), simulated completion time, retry
and replan counts.  A second table kills a disk mid-run and compares
outcomes across schedulers, exercising the escalation ladder's replan
rung end to end.

Both tables assert the conservation invariant the property suite pins:
every planned move is delivered or explicitly stranded — supervision
never loses items silently.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.solver import plan_migration
from repro.runtime import DiskCrash, FaultPlan, MigrationExecutor, RetryPolicy
from repro.workloads.scenarios import decommission_scenario, scale_out_scenario


def _run(scenario_fn, seed, faults, method="auto"):
    scenario = scenario_fn(seed=seed)
    schedule = plan_migration(scenario.instance, method=method, seed=seed)
    executor = MigrationExecutor(
        scenario.cluster,
        scenario.context,
        schedule,
        faults=faults,
        method=method,
        seed=seed,
    )
    planned = scenario.context.num_moves
    report = executor.run()
    assert report.finished
    assert len(report.delivered) + len(report.stranded) == planned
    return schedule, report


def test_run_fault_rate_sweep(benchmark):
    table = Table(
        "EXP-RUN: fault-rate sweep on the decommission drain "
        "(retry ladder: 3 retries, 1 defer, then replan)",
        ["fault rate", "planned rounds", "executed rounds", "sim time",
         "retries", "replans", "stranded"],
    )
    baseline_rounds = None
    for rate in (0.0, 0.05, 0.1, 0.2, 0.3):
        schedule, report = _run(
            decommission_scenario, 11, FaultPlan(transfer_failure_rate=rate)
        )
        counters = report.telemetry.counters
        table.add_row(
            f"{rate:.2f}",
            schedule.num_rounds,
            report.rounds_executed,
            f"{report.total_time:.1f}",
            counters.get("retries", 0),
            report.replans,
            len(report.stranded),
        )
        if baseline_rounds is None:
            baseline_rounds = report.rounds_executed
            assert baseline_rounds == schedule.num_rounds
        # Supervision can only add work, never lose it.
        assert report.rounds_executed >= schedule.num_rounds
        assert not report.stranded
    emit(table)

    benchmark(
        lambda: _run(
            decommission_scenario, 11, FaultPlan(transfer_failure_rate=0.1)
        )
    )


def test_run_crash_replan_by_scheduler():
    table = Table(
        "EXP-RUNb: disk crash at t=4 during scale-out, by scheduler "
        "(crash strands sourced items, retargets in-flight destinations)",
        ["method", "executed rounds", "sim time", "replans", "delivered",
         "stranded"],
    )
    crash = FaultPlan(crashes=(DiskCrash("new0", 4.0),))
    for method in ("auto", "greedy", "homogeneous"):
        _schedule, report = _run(scale_out_scenario, 5, crash, method=method)
        table.add_row(
            method,
            report.rounds_executed,
            f"{report.total_time:.1f}",
            report.replans,
            len(report.delivered),
            len(report.stranded),
        )
        assert report.finished
    emit(table)
