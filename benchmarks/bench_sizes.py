"""EXP-SIZES — non-uniform items: size-class scheduling.

The paper's unit-size assumption hides straggler waste: under the
fair-share round model a round lasts as long as its largest transfer.
The table mixes a few large objects into a small-object batch and
compares wall-clock of (a) scheduling everything together vs
(b) size-class separation — the knob that restores the unit-size
assumption per round.
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.solver import plan_migration
from repro.extensions.sizes import size_class_schedule, simulated_time
from repro.workloads.generators import random_instance


def sized_workload(heavy_fraction: float, heavy_size: float, seed: int = 5):
    rng = random.Random(seed)
    inst = random_instance(12, 240, capacities={1: 0.3, 2: 0.4, 4: 0.3}, seed=seed)
    sizes = {
        eid: (heavy_size if rng.random() < heavy_fraction else 1.0)
        for eid in inst.graph.edge_ids()
    }
    return inst, sizes


def test_sizes_heavy_fraction_sweep(benchmark):
    table = Table(
        "EXP-SIZES: mixed vs size-class scheduling (heavy items of size 64)",
        ["heavy %", "mixed rounds", "mixed time", "classed rounds", "classed time", "speedup"],
    )
    for pct in (0, 2, 5, 10, 25):
        inst, sizes = sized_workload(pct / 100.0, 64.0, seed=pct + 1)
        mixed = plan_migration(inst)
        classed = size_class_schedule(inst, sizes)
        t_mixed = simulated_time(inst, mixed, sizes)
        t_classed = simulated_time(inst, classed, sizes)
        table.add_row(
            pct, mixed.num_rounds, t_mixed, classed.num_rounds, t_classed,
            t_mixed / t_classed,
        )
        if 0 < pct <= 10:
            assert t_classed <= t_mixed  # separation pays in the sparse-heavy regime
    emit(table)

    inst, sizes = sized_workload(0.05, 64.0)
    benchmark(size_class_schedule, inst, sizes)


def test_sizes_class_count_tradeoff(benchmark):
    """Finer classes cut stragglers but add round-count overhead."""
    table = Table(
        "EXP-SIZESb: bucketing base vs time (sizes spread over 1..64)",
        ["base", "classes", "rounds", "time"],
    )
    from repro.extensions.sizes import size_classes

    rng = random.Random(9)
    inst = random_instance(12, 240, capacities={1: 0.3, 2: 0.4, 4: 0.3}, seed=9)
    sizes = {
        eid: rng.choice([1.0, 1.0, 1.0, 4.0, 16.0, 64.0])
        for eid in inst.graph.edge_ids()
    }
    for base in (64.0, 8.0, 2.0):
        classed = size_class_schedule(inst, sizes, base=base)
        table.add_row(
            base, len(size_classes(sizes, base=base)), classed.num_rounds,
            simulated_time(inst, classed, sizes),
        )
    emit(table)

    benchmark(simulated_time, inst, plan_migration(inst), sizes)
