"""EXP-ENGINE — raw-speed comparison of the two solver engines.

The flat CSR array backend (:mod:`repro.graphs.array_backend` plus the
compact kernels) exists purely for speed: it must produce the *same
bytes* as the reference object engine (`repro-migrate check --engine`
proves that differentially) while solving large components many times
faster.  This bench measures that factor end to end through
``repro.plan`` — lowering cost included — on instances where the solve
stage dominates:

* the headline: a 100k-edge even-capacity random instance
  (Δ' ≈ 1600), where the object engine's per-edge dict/object churn is
  the bottleneck and the array engine targets **>= 10x**;
* a 30k-edge variant of the same family (mid-size scaling point);
* a 3000-node 68-regular configuration-model instance — small Δ',
  DFS-bound, reported honestly as the family where flat arrays help
  least.

Each run appends (or refreshes, keyed by commit) one entry in
``BENCH_ENGINE.json`` at the repo root, so the speedups accrete per
PR.  Run standalone with ``python -m benchmarks.bench_engine``;
``--quick`` runs the small smoke case only (the CI
``engine-bench-smoke`` job) and fails unless the array engine wins.
Every case also re-asserts byte-identical rounds, so the speedup
numbers can never drift away from the equivalence contract.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.problem import MigrationInstance
from repro.pipeline.planner import plan
from repro.workloads.generators import random_instance, regular_instance

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json"
BENCH_SCHEMA = "bench-engine/v1"

# The object engine's Euler/Kempe recursions are deep on 100k-edge
# instances; the array engine never recurses that far.
_RECURSION_LIMIT = 500_000


@dataclass(frozen=True)
class BenchCase:
    name: str
    factory: Callable[[], MigrationInstance]
    #: minimum acceptable array-over-object speedup (1.0 = "must win").
    target: float
    quick: bool = False


CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        name="random-100k-even",
        factory=lambda: random_instance(
            64, 100_000, capacities={2: 0.5, 4: 0.5}, seed=7
        ),
        target=10.0,
    ),
    BenchCase(
        name="random-30k-even",
        factory=lambda: random_instance(
            64, 30_000, capacities={2: 0.5, 4: 0.5}, seed=7
        ),
        target=5.0,
    ),
    BenchCase(
        name="regular-3000x68",
        factory=lambda: regular_instance(3000, 68, capacity=2, seed=3),
        target=1.0,
    ),
    BenchCase(
        name="random-8k-even-smoke",
        factory=lambda: random_instance(
            32, 8_000, capacities={2: 0.5, 4: 0.5}, seed=7
        ),
        target=1.0,
        quick=True,
    ),
)


def run_case(case: BenchCase) -> Dict[str, object]:
    """Time both backends through ``repro.plan`` on one instance.

    Uncached, serial, same method selection — the only variable is the
    engine.  The object run goes first so the array run can be checked
    byte-for-byte against it.
    """
    sys.setrecursionlimit(_RECURSION_LIMIT)
    instance = case.factory()

    start = time.perf_counter()
    obj = plan(instance, backend="object")
    object_seconds = time.perf_counter() - start

    start = time.perf_counter()
    arr = plan(instance, backend="array")
    array_seconds = time.perf_counter() - start

    identical = (
        obj.schedule.rounds == arr.schedule.rounds
        and obj.schedule.method == arr.schedule.method
    )
    return {
        "edges": instance.num_items,
        "disks": instance.num_disks,
        "delta_prime": instance.delta_prime(),
        "method": arr.schedule.method,
        "rounds": arr.schedule.num_rounds,
        "object_seconds": round(object_seconds, 3),
        "array_seconds": round(array_seconds, 3),
        "speedup": round(object_seconds / array_seconds, 2)
        if array_seconds > 0
        else 0.0,
        "target": case.target,
        "identical": identical,
    }


def collect_metrics(quick: bool = False) -> Dict[str, object]:
    """One BENCH_ENGINE.json metrics payload."""
    cases: Dict[str, object] = {}
    for case in CASES:
        if quick and not case.quick:
            continue
        if not quick and case.quick:
            continue
        cases[case.name] = run_case(case)
    return {"mode": "quick" if quick else "full", "cases": cases}


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=BENCH_FILE.parent,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_entry(metrics: Dict[str, object]) -> Dict[str, object]:
    """Append (or refresh, same commit) one entry in BENCH_ENGINE.json."""
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    else:
        data = {"schema": BENCH_SCHEMA, "entries": []}
    entry = {
        "commit": _current_commit(),
        "date": datetime.date.today().isoformat(),
        "metrics": metrics,
    }
    entries = [e for e in data["entries"] if e.get("commit") != entry["commit"]]
    entries.append(entry)
    data["entries"] = entries
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entry


def _render_table(metrics: Dict[str, object]) -> Table:
    table = Table(
        "EXP-ENGINE: array backend vs object engine (repro.plan wall time)",
        ["case", "edges", "Δ'", "method", "object (s)", "array (s)", "speedup"],
    )
    for name, row in metrics["cases"].items():  # type: ignore[union-attr]
        table.add_row(
            name, row["edges"], row["delta_prime"], row["method"],
            row["object_seconds"], row["array_seconds"], f'{row["speedup"]}x',
        )
    return table


def _check(metrics: Dict[str, object]) -> int:
    """0 when every case is byte-identical and meets its target."""
    failures = 0
    for name, row in metrics["cases"].items():  # type: ignore[union-attr]
        if not row["identical"]:
            print(f"FAIL {name}: backends diverged (not byte-identical)")
            failures += 1
        if row["speedup"] < row["target"]:
            print(
                f"FAIL {name}: speedup {row['speedup']}x below the "
                f"{row['target']}x target"
            )
            failures += 1
    return failures


def test_engine_smoke(benchmark):
    metrics = collect_metrics(quick=True)
    emit(_render_table(metrics))
    assert _check(metrics) == 0

    instance = random_instance(32, 8_000, capacities={2: 0.5, 4: 0.5}, seed=7)
    benchmark(lambda: plan(instance, backend="array"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the small smoke case only (CI engine-bench-smoke)",
    )
    args = parser.parse_args(argv)
    metrics = collect_metrics(quick=args.quick)
    print(_render_table(metrics).render())
    entry = append_entry(metrics)
    print(f"appended to {BENCH_FILE} (commit {entry['commit'][:12]})")
    return 1 if _check(metrics) else 0


if __name__ == "__main__":
    sys.exit(main())
