"""EXP-SPACE — the cost of space constraints (Hall et al.'s model).

The paper assumes unconstrained space; its predecessor (Hall et al.,
cited as [4]) showed one spare unit per disk keeps migration
schedulable within constant factor of the space-oblivious optimum.
The table sweeps spare space from roomy to a single unit and reports
the round overhead and bypass usage of the space-feasibility
post-pass — the constant-factor behaviour should be visible.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.solver import plan_migration
from repro.extensions.space import (
    default_occupancy,
    make_space_feasible,
    spare_space,
)
from repro.workloads.generators import random_instance


def build_swap(num_pairs: int, items_per_disk: int, capacity: int = 4):
    """Pairwise swap: full disks exchange their entire contents.

    With ``c_v = 4`` a capacity-optimal round moves 2 items into each
    disk; space freed by outgoing items is only usable next round, so
    fewer than 2 spare units per disk forces the schedule to stretch —
    exactly Hall et al.'s regime.
    """
    from repro.core.problem import MigrationInstance

    moves = []
    nodes = []
    for p in range(num_pairs):
        a, b = f"a{p}", f"b{p}"
        nodes += [a, b]
        moves.extend([(a, b)] * items_per_disk)
        moves.extend([(b, a)] * items_per_disk)
    inst = MigrationInstance.from_moves(moves, {v: capacity for v in nodes})
    sched = plan_migration(inst)
    occ = default_occupancy(inst)
    return inst, sched, occ


def test_space_spare_sweep(benchmark):
    table = Table(
        "EXP-SPACE: round overhead vs spare space (pairwise swaps, c_v = 4)",
        ["spare units", "base rounds", "space rounds", "overhead x", "bypassed items"],
    )
    inst, sched, occ = build_swap(5, 12)
    for spare in (12, 6, 2, 1):
        space = {v: occ[v] + spare for v in occ}
        plan = make_space_feasible(inst, sched, occupancy=occ, space=space)
        table.add_row(
            spare, sched.num_rounds, plan.num_rounds, plan.overhead,
            len(plan.bypassed_items),
        )
        assert plan.overhead <= 3.0  # Hall et al.-style constant factor
    emit(table)

    space = {v: occ[v] + 1 for v in occ}
    benchmark(make_space_feasible, inst, sched, occ, space)


def test_space_cycle_bypass(benchmark):
    """Full rotation cycles can only proceed via bypass nodes."""
    from repro.core.problem import MigrationInstance

    table = Table(
        "EXP-SPACEb: full rotation cycles broken by bypass nodes",
        ["cycle len", "rounds", "bypassed", "feasible"],
    )
    for n in (3, 5, 8):
        nodes = [f"n{i}" for i in range(n)]
        moves = [(nodes[i], nodes[(i + 1) % n]) for i in range(n)]
        caps = {v: 1 for v in nodes}
        caps["spare"] = 1
        inst = MigrationInstance.from_moves(moves, caps, extra_nodes=["spare"])
        sched = plan_migration(inst)
        occ = {v: 1 for v in nodes}
        occ["spare"] = 0
        space = {v: 1 for v in nodes}
        space["spare"] = 1
        plan = make_space_feasible(inst, sched, occupancy=occ, space=space)
        table.add_row(n, plan.num_rounds, len(plan.bypassed_items), "yes")
        assert plan.bypassed_items
    emit(table)

    nodes = [f"n{i}" for i in range(5)]
    moves = [(nodes[i], nodes[(i + 1) % 5]) for i in range(5)]
    caps = {v: 1 for v in nodes}
    caps["spare"] = 1
    inst = MigrationInstance.from_moves(moves, caps, extra_nodes=["spare"])
    sched = plan_migration(inst)
    occ = {v: 1 for v in nodes}
    occ["spare"] = 0
    space = {v: 1 for v in nodes}
    space["spare"] = 1
    benchmark(make_space_feasible, inst, sched, occ, space)
