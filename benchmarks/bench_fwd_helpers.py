"""EXP-FWD — forwarding beats the density bound (extension).

Direct migration cannot beat ``Γ'``; with idle helpers, forwarding can
drive the makespan down toward ``Δ'`` (Coffman et al.; Sanders &
Solis-Oba's "helpers").  The table sweeps odd cycles — where the gap
``Γ'/Δ' → cycle/(cycle-1)`` is extremal — with increasing helper
counts and reports direct vs forwarded rounds against both bounds.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.lower_bounds import lower_bound
from repro.extensions.indirect import forwarding_schedule
from repro.workloads.adversarial import odd_cycle_with_helpers, shannon_triangle


def test_fwd_helper_sweep(benchmark):
    table = Table(
        "EXP-FWD: forwarding through helpers on Γ'-bound odd cycles",
        ["cycle", "mult", "helpers", "Δ'", "Γ'-LB", "direct", "forwarded", "improved"],
    )
    for cycle, mult, helpers in (
        (3, 1, 1),
        (3, 4, 3),
        (5, 2, 5),
        (7, 3, 7),
    ):
        inst = odd_cycle_with_helpers(cycle, mult, helpers)
        result = forwarding_schedule(inst)
        table.add_row(
            cycle, mult, helpers, result.lb1, lower_bound(inst),
            result.direct_rounds, result.num_rounds, str(result.improved),
        )
        assert result.num_rounds <= result.direct_rounds
    emit(table)

    inst = odd_cycle_with_helpers(5, 2, 5)
    benchmark(forwarding_schedule, inst)


def test_fwd_no_helpers_no_magic(benchmark):
    """Without idle capacity forwarding cannot beat the density bound."""
    table = Table(
        "EXP-FWDb: Shannon triangles without helpers (no idle capacity)",
        ["bundle", "Γ'-LB", "direct", "forwarded"],
    )
    for bundle in (2, 4, 8):
        inst = shannon_triangle(bundle)
        result = forwarding_schedule(inst)
        rounds = result.num_rounds if result.rounds else result.direct_rounds
        table.add_row(bundle, lower_bound(inst), result.direct_rounds, rounds)
        assert rounds >= lower_bound(inst)
    emit(table)

    benchmark(forwarding_schedule, shannon_triangle(4))
