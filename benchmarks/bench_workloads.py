"""EXP-WORKLOADS — incremental replanning vs full replans.

The delta planner (:func:`repro.plan_delta`) exists so that a running
tiered system does not pay a from-scratch plan for every temperature
tick.  This bench measures that saving honestly, on the family where a
full plan is genuinely expensive: many small odd-capacity components
(general solver + exhaustive LB2 per component), 30k edges total.  A
1% delta confined to a handful of components should leave everything
else untouched — the patched plan reuses the untouched components from
the prior plan and only re-works the dirty ones.

Three claims are re-asserted on every run, so the speedup numbers can
never drift away from the correctness contract:

* **byte-identity** — ``plan_delta`` rounds equal a full ``plan`` of
  the patched instance against the shared cache, digest for digest;
* **verified lower bound** — every patched plan carries a lower-bound
  certificate that re-verifies from the instance alone, and its bound
  equals the full replan's;
* **patch certificate** — the (prior, delta, result) binding
  re-verifies bit for bit.

The headline case targets **>= 10x** on a 1% delta; the sweep rows
(0.5% / 2% / 5%) show how the advantage decays as the delta spreads
across more components.  Each run appends (or refreshes, keyed by
commit) one entry in ``BENCH_WORKLOADS.json`` at the repo root.  Run
standalone with ``python -m benchmarks.bench_workloads``; ``--quick``
runs a small smoke case only and requires the delta path to win.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import random
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.checks.certify import (
    rounds_digest,
    verify_certificate,
    verify_patch_certificate,
)
from repro.core.delta import InstanceDelta, apply_delta
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Multigraph
from repro.pipeline.cache import PlanCache
from repro.pipeline.delta import plan_delta
from repro.pipeline.planner import plan

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_WORKLOADS.json"
BENCH_SCHEMA = "bench-workloads/v1"

#: base seed for instances, deltas and plans alike.
SEED = 7


@dataclass(frozen=True)
class BenchCase:
    name: str
    num_components: int
    component_nodes: int
    component_edges: int
    #: fraction of all edges edited (split evenly remove/retarget/add).
    delta_fraction: float
    #: components the delta is confined to.
    dirty_components: int
    #: minimum acceptable delta-over-full speedup.
    target: float
    quick: bool = False


CASES: Tuple[BenchCase, ...] = (
    # The headline: 30k edges, odd capacities (general solver +
    # exhaustive LB2 on every 10-node component), 1% delta confined to
    # 4 of the 100 components.
    BenchCase(
        name="delta-30k-1pct",
        num_components=100,
        component_nodes=10,
        component_edges=300,
        delta_fraction=0.01,
        dirty_components=4,
        target=10.0,
    ),
    BenchCase(
        name="delta-30k-halfpct",
        num_components=100,
        component_nodes=10,
        component_edges=300,
        delta_fraction=0.005,
        dirty_components=2,
        target=10.0,
    ),
    BenchCase(
        name="delta-30k-2pct",
        num_components=100,
        component_nodes=10,
        component_edges=300,
        delta_fraction=0.02,
        dirty_components=8,
        target=5.0,
    ),
    BenchCase(
        name="delta-30k-5pct",
        num_components=100,
        component_nodes=10,
        component_edges=300,
        delta_fraction=0.05,
        dirty_components=20,
        target=2.0,
    ),
    BenchCase(
        name="delta-3k-1pct-smoke",
        num_components=20,
        component_nodes=10,
        component_edges=150,
        delta_fraction=0.01,
        dirty_components=2,
        target=1.5,
        quick=True,
    ),
)


def build_instance(case: BenchCase, seed: int = SEED) -> MigrationInstance:
    """Many small odd-capacity components: the full-plan-expensive family.

    Each component is a spanning path plus random extra edges over
    ``component_nodes`` disks with capacities drawn from ``{1, 3}`` —
    odd, so the general solver runs, and small enough (<= 14 nodes)
    that certification takes the exhaustive LB2 branch.
    """
    rng = random.Random(seed)
    graph = Multigraph()
    capacities: Dict[str, int] = {}
    for k in range(case.num_components):
        names = [f"c{k:03d}.d{i:02d}" for i in range(case.component_nodes)]
        for name in names:
            graph.add_node(name)
            capacities[name] = rng.choice((1, 3))
        for i in range(case.component_nodes - 1):
            graph.add_edge(names[i], names[i + 1])
        for _ in range(case.component_edges - (case.component_nodes - 1)):
            u = rng.randrange(case.component_nodes)
            v = rng.randrange(case.component_nodes)
            while v == u:
                v = rng.randrange(case.component_nodes)
            graph.add_edge(names[u], names[v])
    return MigrationInstance(graph, capacities)


def confined_delta(
    instance: MigrationInstance, case: BenchCase, seed: int = SEED
) -> InstanceDelta:
    """A ``delta_fraction`` edit confined to ``dirty_components``.

    The edit budget splits evenly across removes, retargets and adds.
    Removes and retargets consume *disjoint* edges from a shuffled
    pool, so a retarget never races a remove for the last parallel
    edge of a pair.
    """
    rng = random.Random(seed + 1)
    step = case.num_components // case.dirty_components
    dirty = [f"c{k:03d}" for k in range(0, case.num_components, step)][
        : case.dirty_components
    ]
    dirty_set = set(dirty)
    comp_nodes: Dict[str, List[str]] = {c: [] for c in dirty}
    for node in instance.graph.nodes:
        prefix = node.split(".")[0]
        if prefix in dirty_set:
            comp_nodes[prefix].append(node)
    for nodes in comp_nodes.values():
        nodes.sort()
    pool: List[Tuple[str, str]] = []
    for _eid, u, v in instance.graph.edges():
        if u.split(".")[0] in dirty_set:
            pool.append((u, v))
    rng.shuffle(pool)
    n_each = int(instance.num_items * case.delta_fraction) // 3
    if len(pool) < 2 * n_each:
        raise ValueError("dirty components too small for the requested delta")
    removes = [pool.pop() for _ in range(n_each)]
    retargets: List[Tuple[str, str, str]] = []
    for _ in range(n_each):
        u, v = pool.pop()
        candidates = [n for n in comp_nodes[u.split(".")[0]] if n not in (u, v)]
        retargets.append((u, v, candidates[rng.randrange(len(candidates))]))
    adds: List[Tuple[str, str]] = []
    for _ in range(n_each):
        nodes = comp_nodes[dirty[rng.randrange(len(dirty))]]
        i = rng.randrange(len(nodes))
        j = rng.randrange(len(nodes))
        while j == i:
            j = rng.randrange(len(nodes))
        adds.append((nodes[i], nodes[j]))
    return InstanceDelta(
        add_moves=tuple(adds),
        remove_moves=tuple(removes),
        retarget_moves=tuple(retargets),
    )


def run_case(case: BenchCase) -> Dict[str, object]:
    """Time one (prior plan, delta) pair both ways and verify all claims.

    ``t_full`` is a from-scratch certified plan of the patched instance
    (cold cache — what a system without the delta API would pay);
    ``t_delta`` is ``plan_delta`` against the prior plan's warm cache.
    """
    instance = build_instance(case)
    delta = confined_delta(instance, case)
    cache = PlanCache(max_entries=8192)
    prior = plan(instance, "auto", SEED, cache=cache, certify=True)

    start = time.perf_counter()
    result = plan_delta(prior, delta, cache=cache, certify=True)
    delta_seconds = time.perf_counter() - start

    patched = apply_delta(instance, delta)
    start = time.perf_counter()
    cold = plan(patched, "auto", SEED, cache=PlanCache(max_entries=8192), certify=True)
    full_seconds = time.perf_counter() - start

    # Byte-identity contract: a full plan sharing the delta run's cache
    # reproduces the patched schedule digest for digest.
    shared = plan(patched, "auto", SEED, cache=cache, certify=True)
    identical = rounds_digest(shared.schedule.rounds) == rounds_digest(
        result.schedule.rounds
    )

    # Lower-bound certificate: present, re-verifiable, equal to the
    # cold replan's bound.
    assert result.certificate is not None and cold.certificate is not None
    verified_bound = verify_certificate(patched, result.certificate)
    bounds_equal = verified_bound == cold.certificate.bound

    # Patch certificate: (prior, delta, result) binding re-verifies.
    assert result.patch_certificate is not None
    verify_patch_certificate(
        result.patch_certificate,
        prior.schedule.rounds,
        delta.canonical_payload(),
        result.schedule.rounds,
    )

    return {
        "edges": instance.num_items,
        "delta_changes": delta.num_changes,
        "dirty_components": case.dirty_components,
        "rounds": result.schedule.num_rounds,
        "lower_bound": verified_bound,
        "bounds_equal": bounds_equal,
        "components_reused": result.components_reused,
        "components_patched": result.components_patched,
        "components_resolved": result.components_resolved,
        "full_seconds": round(full_seconds, 3),
        "delta_seconds": round(delta_seconds, 3),
        "speedup": round(full_seconds / delta_seconds, 2)
        if delta_seconds > 0
        else 0.0,
        "target": case.target,
        "identical": identical,
    }


def collect_metrics(quick: bool = False) -> Dict[str, object]:
    """One BENCH_WORKLOADS.json metrics payload."""
    cases: Dict[str, object] = {}
    for case in CASES:
        if quick != case.quick:
            continue
        cases[case.name] = run_case(case)
    return {"mode": "quick" if quick else "full", "cases": cases}


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=BENCH_FILE.parent,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_entry(metrics: Dict[str, object]) -> Dict[str, object]:
    """Append (or refresh, same commit) one entry in BENCH_WORKLOADS.json."""
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    else:
        data = {"schema": BENCH_SCHEMA, "entries": []}
    entry = {
        "commit": _current_commit(),
        "date": datetime.date.today().isoformat(),
        "metrics": metrics,
    }
    entries = [e for e in data["entries"] if e.get("commit") != entry["commit"]]
    entries.append(entry)
    data["entries"] = entries
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entry


def _render_table(metrics: Dict[str, object]) -> Table:
    table = Table(
        "EXP-WORKLOADS: plan_delta vs full certified replan",
        ["case", "edges", "Δ", "reused/patched/resolved",
         "full (s)", "delta (s)", "speedup"],
    )
    for name, row in metrics["cases"].items():  # type: ignore[union-attr]
        table.add_row(
            name, row["edges"], row["delta_changes"],
            f'{row["components_reused"]}/{row["components_patched"]}'
            f'/{row["components_resolved"]}',
            row["full_seconds"], row["delta_seconds"], f'{row["speedup"]}x',
        )
    return table


def _check(metrics: Dict[str, object]) -> int:
    """0 when every case is identical, certified and meets its target."""
    failures = 0
    for name, row in metrics["cases"].items():  # type: ignore[union-attr]
        if not row["identical"]:
            print(f"FAIL {name}: patched schedule diverged from full replan")
            failures += 1
        if not row["bounds_equal"]:
            print(f"FAIL {name}: verified bound differs from full replan's")
            failures += 1
        if row["speedup"] < row["target"]:
            print(
                f"FAIL {name}: speedup {row['speedup']}x below the "
                f"{row['target']}x target"
            )
            failures += 1
    return failures


def test_workloads_smoke(benchmark):
    metrics = collect_metrics(quick=True)
    emit(_render_table(metrics))
    assert _check(metrics) == 0

    case = CASES[-1]
    instance = build_instance(case)
    delta = confined_delta(instance, case)
    cache = PlanCache(max_entries=8192)
    prior = plan(instance, "auto", SEED, cache=cache, certify=True)
    benchmark(lambda: plan_delta(prior, delta, cache=cache, certify=True))


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the small smoke case only",
    )
    args = parser.parse_args(argv)
    metrics = collect_metrics(quick=args.quick)
    print(_render_table(metrics).render())
    entry = append_entry(metrics)
    print(f"appended to {BENCH_FILE} (commit {entry['commit'][:12]})")
    return 1 if _check(metrics) else 0


if __name__ == "__main__":
    sys.exit(main())
