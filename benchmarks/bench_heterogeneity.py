"""EXP-HET — when does modeling heterogeneity pay, and by how much?

The paper's thesis: assuming one transfer per disk "will significantly
degrade the finish time … as a slow node can be a bottleneck".  Two
sweeps quantify the crossover:

* fleet modernization — fraction of disks upgraded from ``c = 1`` to
  ``c = 8``: the win over the homogeneous model grows with the upgrade
  fraction (slow nodes stop mattering only when work avoids them);
* capability spread — uniform fleets of growing ``c``: the win is the
  capacity factor itself.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.lower_bounds import lower_bound
from repro.core.solver import plan_migration
from repro.workloads.generators import random_instance


def test_het_upgrade_fraction_sweep(benchmark):
    """With uniform traffic the speedup stays ≈1 until the *last* slow
    disk is upgraded — any c=1 disk touched by the migration pins Δ'.
    This plateau is exactly the paper's slow-node bottleneck claim;
    the jump at 100% shows what removing the bottleneck releases."""
    table = Table(
        "EXP-HET: speedup vs fraction of disks upgraded to c=8 (rest c=1; "
        "uniform traffic — note the slow-node plateau)",
        ["upgraded %", "LB", "auto rounds", "homogeneous rounds", "speedup"],
    )
    speedups = []
    for pct in (0, 25, 50, 75, 100):
        mix = {8: pct / 100.0, 1: 1 - pct / 100.0}
        mix = {c: f for c, f in mix.items() if f > 0}
        inst = random_instance(16, 480, capacities=mix, seed=100 + pct)
        auto = plan_migration(inst).num_rounds
        homo = plan_migration(inst, method="homogeneous").num_rounds
        speedups.append(homo / auto)
        table.add_row(pct, lower_bound(inst), auto, homo, homo / auto)
    emit(table)
    assert speedups[-1] > speedups[0]  # full upgrade buys the most
    assert speedups[0] == pytest.approx(1.0, abs=0.2)  # all-c=1 fleet: no win
    # The plateau: partial upgrades barely help under uniform traffic.
    assert all(s < 1.5 for s in speedups[:-1])

    inst = random_instance(16, 480, capacities={8: 0.5, 1: 0.5}, seed=150)
    benchmark(plan_migration, inst)


def test_het_worst_disk_bottleneck(benchmark):
    """One slow disk in a fast fleet: its c_v pins LB1 whenever it is
    involved, which is the paper's slow-node bottleneck argument."""
    table = Table(
        "EXP-HETb: one c=1 straggler in a c=8 fleet",
        ["straggler degree share", "LB", "rounds", "binding disk"],
    )
    from repro.core.problem import MigrationInstance
    from repro.graphs.multigraph import Multigraph
    import random as _random

    for share in (0.05, 0.2, 0.5):
        rng = _random.Random(int(share * 100))
        nodes = [f"fast{i}" for i in range(10)] + ["slow"]
        graph = Multigraph(nodes=nodes)
        total = 400
        straggler_edges = int(total * share)
        for _ in range(straggler_edges):
            graph.add_edge("slow", rng.choice(nodes[:10]))
        while graph.num_edges < total:
            u, v = rng.sample(nodes[:10], 2)
            graph.add_edge(u, v)
        caps = {v: 8 for v in nodes[:10]}
        caps["slow"] = 1
        inst = MigrationInstance(graph, caps)
        sched = plan_migration(inst)
        slow_binds = inst.constrained_degree("slow") == inst.delta_prime()
        table.add_row(share, lower_bound(inst), sched.num_rounds,
                      "slow" if slow_binds else "fast fleet")
        if share >= 0.2:
            assert slow_binds
    emit(table)

    benchmark(plan_migration, inst)
