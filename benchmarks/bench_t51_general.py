"""EXP-T51 — Theorem 5.1: the general algorithm is (1 + o(1))-approx.

The theorem bounds the palette by ``OPT + O(sqrt(OPT))``.  OPT is
NP-hard, so the table reports the excess over the certified lower
bound ``LB <= OPT`` — an over-estimate of the true excess — against
the budget ``2·ceil(sqrt(LB)) + 2``, across sizes and capacity mixes
(odd capacities force the general path).  The approximation factor
must approach 1 as LB grows (Corollary 5.3).
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.general import GeneralSolverStats, general_schedule
from repro.core.lower_bounds import lower_bound
from repro.workloads.generators import hotspot_instance, random_instance

SWEEP = [
    (8, 40, {1: 0.5, 3: 0.5}),
    (12, 150, {1: 0.3, 2: 0.4, 5: 0.3}),
    (25, 600, {1: 0.2, 3: 0.5, 4: 0.3}),
    (50, 2500, {1: 0.2, 2: 0.3, 3: 0.3, 7: 0.2}),
    (80, 8000, {1: 0.1, 3: 0.4, 5: 0.3, 8: 0.2}),
]


def test_t51_excess_sweep(benchmark):
    table = Table(
        "EXP-T51 (Theorem 5.1): general algorithm — excess over LB vs O(√LB) budget",
        ["disks", "items", "LB", "rounds", "excess", "budget 2⌈√LB⌉+2", "ratio", "q growths"],
    )
    for n, m, mix in SWEEP:
        inst = random_instance(n, m, capacities=mix, seed=n)
        stats = GeneralSolverStats()
        sched = general_schedule(inst, stats=stats)
        sched.validate(inst)
        lb = lower_bound(inst)
        excess = sched.num_rounds - lb
        budget = 2 * math.isqrt(lb) + 2
        table.add_row(
            n, m, lb, sched.num_rounds, excess, budget,
            sched.num_rounds / lb, stats.palette_growths,
        )
        assert excess <= budget
    emit(table)

    inst = random_instance(25, 600, capacities={1: 0.2, 3: 0.5, 4: 0.3}, seed=25)
    benchmark(general_schedule, inst)


def test_t51_ratio_approaches_one(benchmark):
    """Corollary 5.3: the approximation factor tends to 1 as OPT grows."""
    table = Table(
        "EXP-T51b: approximation factor vs instance scale (hotspot family)",
        ["items", "LB", "rounds", "ratio (upper bd.)"],
    )
    ratios = []
    for m in (50, 200, 800, 3200):
        inst = hotspot_instance(16, num_hot=3, num_items=m, hot_capacity=3, cold_capacity=1, seed=m)
        sched = general_schedule(inst)
        lb = lower_bound(inst)
        ratio = sched.num_rounds / lb
        ratios.append(ratio)
        table.add_row(m, lb, sched.num_rounds, ratio)
    emit(table)
    assert ratios[-1] <= ratios[0] + 1e-9  # no degradation with scale
    assert ratios[-1] < 1.05

    inst = hotspot_instance(16, 3, 800, hot_capacity=3, cold_capacity=1, seed=800)
    benchmark(general_schedule, inst)
