"""EXP-CLONE — migration with cloning (extension).

Khuller–Kim–Wan's model: items with destination *sets*, receivers
re-serve copies.  The table compares gossip scheduling against the
no-cloning baseline across fanouts: gossip tracks the logarithmic
broadcast bound while naive pays linearly in the fanout.
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.extensions.cloning import (
    CloningInstance,
    best_cloning_schedule,
    cloning_lower_bound,
    gossip_schedule,
    naive_schedule,
)
from repro.workloads.adversarial import replication_fanout


def test_clone_broadcast_series(benchmark):
    table = Table(
        "EXP-CLONE: single hot item to k replicas — gossip vs no-cloning",
        ["fanout k", "log2(k+1) bound", "gossip", "naive", "speedup"],
    )
    for k in (3, 7, 15, 31, 63):
        nodes = {f"d{i}": 1 for i in range(k)}
        nodes["src"] = 1
        inst = CloningInstance({"hot": ("src", {f"d{i}" for i in range(k)})}, nodes)
        gossip = len(gossip_schedule(inst))
        naive = len(naive_schedule(inst))
        table.add_row(k, math.ceil(math.log2(k + 1)), gossip, naive, naive / gossip)
        assert gossip == math.ceil(math.log2(k + 1))
        assert naive == k
    emit(table)

    nodes = {f"d{i}": 1 for i in range(31)}
    nodes["src"] = 1
    inst = CloningInstance({"hot": ("src", {f"d{i}" for i in range(31)})}, nodes)
    benchmark(gossip_schedule, inst)


def test_clone_mixed_fleet(benchmark):
    table = Table(
        "EXP-CLONEb: many items with replica fanout (capacitated disks)",
        ["items", "fanout", "disks", "LB", "best", "naive"],
    )
    for items, fanout, disks in ((10, 3, 12), (20, 5, 16), (40, 7, 24)):
        inst = replication_fanout(items, fanout=fanout, num_disks=disks, capacity=2)
        best = len(best_cloning_schedule(inst))
        naive = len(naive_schedule(inst))
        table.add_row(items, fanout, disks, cloning_lower_bound(inst), best, naive)
        assert cloning_lower_bound(inst) <= best <= naive
    emit(table)

    inst = replication_fanout(20, fanout=5, num_disks=16, capacity=2)
    benchmark(best_cloning_schedule, inst)
