"""EXP-B1 — scheduler comparison: ours vs Saia vs prior homogeneous work.

Section I positions the paper against (a) Saia's 1.5-approximation via
node splitting + Shannon coloring and (b) the classic homogeneous
model where every disk performs one transfer per round.  The table
reports rounds and ratio-to-LB for each scheduler across the workload
families; the expected shape: ``general <= saia <= homogeneous`` with
the homogeneous penalty growing with the capacity mix.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.metrics import compare_methods
from repro.analysis.tables import Table
from repro.core.lower_bounds import lower_bound
from repro.workloads.generators import (
    bipartite_instance,
    clique_instance,
    hotspot_instance,
    random_instance,
)

WORKLOADS = [
    ("random-mixed", lambda: random_instance(20, 400, capacities={1: 0.3, 2: 0.4, 4: 0.3}, seed=1)),
    ("random-fast-fleet", lambda: random_instance(20, 400, capacities={4: 0.5, 8: 0.5}, seed=2)),
    ("bipartite-scaleout", lambda: bipartite_instance(12, 4, 400, old_capacity=1, new_capacity=4, seed=3)),
    ("hotspot-drain", lambda: hotspot_instance(16, 2, 300, hot_capacity=4, cold_capacity=1, seed=4)),
    ("clique-c2 (Fig2)", lambda: clique_instance(3, 20, capacity=2)),
]

METHODS = ("general", "saia", "greedy", "homogeneous")


def test_b1_method_comparison(benchmark):
    table = Table(
        "EXP-B1: rounds by scheduler (ratio to LB in parentheses-like columns)",
        ["workload", "LB"] + [f"{m}" for m in METHODS] + [f"{m} ratio" for m in METHODS],
    )
    for name, build in WORKLOADS:
        inst = build()
        results = compare_methods(inst, methods=METHODS)
        lb = lower_bound(inst)
        rounds = [results[m].rounds for m in METHODS]
        ratios = [results[m].ratio for m in METHODS]
        table.add_row(name, lb, *rounds, *ratios)
        # The paper's ordering claims.
        assert results["general"].rounds <= results["saia"].rounds
        assert results["general"].rounds <= results["homogeneous"].rounds
    emit(table)

    inst = WORKLOADS[0][1]()
    benchmark(compare_methods, inst, METHODS)


def test_b1_homogeneous_penalty_grows_with_capacity(benchmark):
    """The single-transfer assumption costs ~c when every disk has c."""
    table = Table(
        "EXP-B1b: homogeneous-model penalty vs uniform capacity c",
        ["c", "LB (hetero)", "general", "homogeneous", "penalty x"],
    )
    for c in (1, 2, 4, 8):
        inst = random_instance(12, 300, uniform_capacity=c, seed=5)
        results = compare_methods(inst, methods=("general", "homogeneous"))
        penalty = results["homogeneous"].rounds / results["general"].rounds
        table.add_row(
            c, lower_bound(inst), results["general"].rounds,
            results["homogeneous"].rounds, penalty,
        )
        if c >= 2:
            assert penalty > c / 2  # splitting must pay off materially
    emit(table)

    inst = random_instance(12, 300, uniform_capacity=4, seed=5)
    benchmark(compare_methods, inst, ("general", "homogeneous"))
