"""EXP-NET — rack fabrics: when the network, not the disk, bottlenecks.

The paper assumes a dedicated fast fabric (Section II).  This bench
quantifies when that assumption matters: the same migration is executed
under rack topologies with decreasing uplink bandwidth (increasing
oversubscription).  With generous uplinks the fabric model matches the
paper's disk-bound model exactly; as uplinks shrink, cross-rack rounds
stretch and rack locality starts paying.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.cluster.engine import MigrationEngine
from repro.cluster.network import FabricRates, FabricTopology, rack_locality
from repro.core.solver import plan_migration
from repro.workloads.scenarios import scale_out_scenario


def run_with_uplink(uplink: float, racks: int = 3, seed: int = 17):
    scenario = scale_out_scenario(num_old=9, num_new=3, items_per_old_disk=30, seed=seed)
    topo = FabricTopology.striped(scenario.cluster.disks, racks=racks,
                                  uplink_bandwidth=uplink)
    sched = plan_migration(scenario.instance)
    engine = MigrationEngine(scenario.cluster, rate_model=FabricRates(topo))
    report = engine.execute(scenario.context, sched)
    return report.total_time, rack_locality(scenario.context, topo), sched.num_rounds


def test_net_oversubscription_sweep(benchmark):
    table = Table(
        "EXP-NET: migration time vs rack uplink bandwidth (3 racks)",
        ["uplink bw", "rounds", "time", "slowdown vs fastest", "rack locality"],
    )
    times = {}
    for uplink in (64.0, 16.0, 4.0, 1.0, 0.25):
        time_taken, locality, rounds = run_with_uplink(uplink)
        times[uplink] = time_taken
        table.add_row(uplink, rounds, time_taken, time_taken / min(times.values()),
                      locality)
    emit(table)
    # Monotone: tighter uplinks can only slow the migration.
    ordered = [times[u] for u in (64.0, 16.0, 4.0, 1.0, 0.25)]
    assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))

    benchmark(run_with_uplink, 4.0)


def test_net_generous_uplink_matches_paper_model(benchmark):
    """A dedicated fast fabric reduces to the disk-bound model."""
    scenario = scale_out_scenario(num_old=9, num_new=3, items_per_old_disk=30, seed=17)
    sched = plan_migration(scenario.instance)
    plain = MigrationEngine(scenario.cluster)
    plain_time = 0.0
    for rnd in sched.rounds:
        plain_time += plain.round_duration(scenario.context, rnd)

    topo = FabricTopology.striped(scenario.cluster.disks, racks=3,
                                  uplink_bandwidth=10_000.0)
    fabric = MigrationEngine(scenario.cluster, rate_model=FabricRates(topo))
    fabric_time = 0.0
    for rnd in sched.rounds:
        fabric_time += fabric.round_duration(scenario.context, rnd)
    assert fabric_time == pytest.approx(plain_time)

    benchmark(fabric.round_duration, scenario.context, sched.rounds[0])
