"""EXP-REC — failure recovery: re-replication speed by scheduler.

The paper's introduction: after disk failures the system must "quickly
redistribute or recover data".  With ``r``-way replication, the time to
re-replicate after a disk loss is the window during which a second
failure loses data — so the scheduler choice has direct durability
impact.  The table builds replicated clusters, kills a disk, plans the
re-replication copies, and compares round counts across schedulers.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.cluster.disk import Disk
from repro.cluster.item import DataItem
from repro.cluster.network import FabricTopology
from repro.cluster.replication import (
    place_replicated,
    recovery_moves,
    recovery_moves_balanced,
    validate_replication,
)
from repro.core.lower_bounds import lower_bound
from repro.core.solver import plan_migration


def build_recovery(num_disks: int, num_items: int, limit_mix, placement_seed=7,
                   planner=recovery_moves):
    disks = [
        Disk(disk_id=f"d{i}", transfer_limit=limit_mix[i % len(limit_mix)])
        for i in range(num_disks)
    ]
    topo = FabricTopology.striped([d.disk_id for d in disks], racks=3,
                                  uplink_bandwidth=8.0)
    items = {f"i{k}": DataItem(item_id=f"i{k}") for k in range(num_items)}
    layout = place_replicated(
        items, disks, replicas=2, topology=topo, seed=placement_seed
    )
    survivors = [d for d in disks if d.disk_id != "d0"]
    plan = planner(layout, "d0", survivors, topology=topo)
    return layout, plan


def test_rec_scheduler_comparison(benchmark):
    table = Table(
        "EXP-REC: re-replication after losing one of N disks "
        "(balanced = min-cost-flow target assignment)",
        ["disks", "items", "copies", "LB", "auto", "balanced targets",
         "homogeneous"],
    )
    for n, m in ((8, 120), (16, 600), (32, 2400)):
        _layout, plan = build_recovery(n, m, limit_mix=(1, 2, 4))
        inst = plan.instance
        auto = plan_migration(inst).num_rounds
        homo = plan_migration(inst, method="homogeneous").num_rounds
        _lb2, balanced_plan = build_recovery(
            n, m, limit_mix=(1, 2, 4), planner=recovery_moves_balanced
        )
        balanced = plan_migration(balanced_plan.instance).num_rounds
        table.add_row(
            n, m, plan.num_copies, lower_bound(inst), auto, balanced, homo,
        )
        assert auto <= homo
        assert balanced <= auto
    emit(table)

    _layout, plan = build_recovery(16, 600, limit_mix=(1, 2, 4))
    benchmark(plan_migration, plan.instance)


def test_rec_placement_spread_ablation(benchmark):
    """Deterministic tie-breaking pairs the same disks repeatedly, so a
    failure's recovery serializes behind one partner; randomized
    partners parallelize it (why production placement randomizes)."""
    table = Table(
        "EXP-RECb: recovery rounds — deterministic vs randomized replica partners",
        ["placement", "copies", "LB", "recovery rounds"],
    )
    results = {}
    for label, seed in (("deterministic", None), ("randomized", 7)):
        _layout, plan = build_recovery(9, 240, limit_mix=(4, 1, 1), placement_seed=seed)
        rounds = plan_migration(plan.instance).num_rounds
        results[label] = rounds
        table.add_row(label, plan.num_copies, lower_bound(plan.instance), rounds)
    emit(table)
    assert results["randomized"] <= results["deterministic"]

    benchmark(build_recovery, 9, 240, (4, 1, 1))


def test_rec_replication_invariants(benchmark):
    layout, _plan = build_recovery(16, 600, limit_mix=(2, 4))
    validate_replication(layout, replicas=2)

    def kernel():
        lay, plan = build_recovery(16, 600, limit_mix=(2, 4))
        return plan.num_copies

    assert benchmark(kernel) > 0
