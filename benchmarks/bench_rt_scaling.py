"""EXP-RT — Lemma 5.9: runtime scaling of the schedulers.

The paper bounds the general algorithm's runtime polynomially in
``|E|``, ``|V|`` and ``Δ``.  This bench measures wall-clock scaling of
both schedulers as ``|E|`` doubles (at fixed density and at fixed node
count) and reports the growth factor — near-linear empirically, since
the flip engine touches each edge a bounded number of times on these
families.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.core.even_optimal import even_optimal_schedule
from repro.core.general import general_schedule
from repro.workloads.generators import random_instance


def timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_rt_general_scaling(benchmark):
    table = Table(
        "EXP-RT: general algorithm wall-clock vs |E| (mixed odd capacities)",
        ["disks", "items", "seconds", "x vs previous"],
    )
    prev = None
    for n, m in ((20, 500), (28, 1000), (40, 2000), (56, 4000), (80, 8000)):
        inst = random_instance(n, m, capacities={1: 0.3, 3: 0.4, 5: 0.3}, seed=m)
        sec = timed(general_schedule, inst)
        table.add_row(n, m, sec, (sec / prev) if prev else 1.0)
        prev = sec
    emit(table)

    inst = random_instance(40, 2000, capacities={1: 0.3, 3: 0.4, 5: 0.3}, seed=2000)
    benchmark(general_schedule, inst)


def test_rt_even_scaling(benchmark):
    table = Table(
        "EXP-RTb: even-capacity scheduler wall-clock vs |E| (flow peels)",
        ["disks", "items", "Δ'", "seconds"],
    )
    for n, m in ((20, 500), (40, 2000), (80, 8000)):
        inst = random_instance(n, m, capacities={2: 0.5, 4: 0.5}, seed=m)
        sec = timed(even_optimal_schedule, inst)
        table.add_row(n, m, inst.delta_prime(), sec)
    emit(table)

    inst = random_instance(40, 2000, capacities={2: 0.5, 4: 0.5}, seed=7)
    benchmark(even_optimal_schedule, inst)
