#!/usr/bin/env python
"""CI smoke test for ``repro-migrate serve``.

Boots a real server subprocess with a persistent store and a trace,
fires 50 concurrent client requests (duplicate-heavy) at it, asserts
every one succeeds with consistent plan bytes, scrapes ``/metrics``,
then SIGTERMs the server and asserts a clean graceful-drain exit 0
with the store flushed.

Run:  python .github/scripts/serve_smoke.py
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.serve.client import PlanClient  # noqa: E402
from repro.workloads.generators import random_instance  # noqa: E402
from repro.workloads.io import (  # noqa: E402
    instance_from_json,
    instance_to_json,
)

REQUESTS = 50
DISTINCT = 5


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    store = os.path.join(tmp, "plans.sqlite")
    trace = os.path.join(tmp, "serve.jsonl")

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--store", store, "--trace-out", trace,
            "--concurrency", "2",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        banner = server.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        assert match, f"no listen banner in {banner!r}"
        host, port = match.group(1), int(match.group(2))
        print(f"server up at {host}:{port}")

        instances = [
            instance_from_json(
                instance_to_json(
                    random_instance(num_disks=10, num_items=60, seed=seed)
                )
            )
            for seed in range(DISTINCT)
        ]
        outcomes = [None] * REQUESTS
        errors = []

        def worker(k: int) -> None:
            try:
                client = PlanClient(host, port, client_id=f"smoke-{k}")
                outcomes[k] = client.plan(instances[k % DISTINCT])
            except Exception as exc:  # noqa: BLE001 - report, don't die
                errors.append((k, exc))

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(REQUESTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors, f"{len(errors)} requests failed: {errors[:3]}"
        assert all(o is not None for o in outcomes)
        by_fp = {}
        for o in outcomes:
            by_fp.setdefault(o.fingerprint, set()).add(o.plan_bytes)
        assert len(by_fp) == DISTINCT, f"expected {DISTINCT} fingerprints"
        assert all(len(plans) == 1 for plans in by_fp.values()), (
            "duplicates must receive identical plan bytes"
        )
        coalesced = sum(1 for o in outcomes if o.coalesced)
        print(f"all {REQUESTS} requests succeeded; {coalesced} coalesced")

        metrics = PlanClient(host, port).metrics_text()
        assert "repro_serve_requests_admitted" in metrics
        assert "repro_serve_requests_completed" in metrics
        print("metrics scrape OK")

        health = PlanClient(host, port).health()
        assert health["status"] == "ok", health

        # SIGTERM the server process itself: graceful drain, exit 0.
        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=60)
        assert code == 0, f"server exited {code}, expected clean drain 0"
        print("SIGTERM drain: exit 0")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()

    assert os.path.exists(store), "plan store was not flushed"
    assert os.path.getsize(store) > 0

    # The server trace merges with an offline plan trace in one report.
    plan_trace = os.path.join(tmp, "plan.jsonl")
    workload = os.path.join(tmp, "w.json")
    for argv in (
        ["generate", workload, "--disks", "10", "--items", "60"],
        ["plan", workload, "--json", "--trace-out", plan_trace],
        ["stats", trace, plan_trace, "--validate"],
    ):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, f"repro-migrate {argv[0]} failed"
    print("merged stats --validate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
