#!/usr/bin/env python
"""A client swarm against an in-process planning server.

Boots the :mod:`repro.serve` service on an ephemeral port inside this
process, then fires a burst of concurrent clients at it — several of
which ask for the *same* migration instance.  The broker's
single-flight coalescing answers every duplicate from one solve, and
the plan cache answers stragglers that arrive after it finished;
either way each client receives the identical canonical plan.

Run:  python examples/serve_clients.py
"""

import random
import threading

from repro.core.problem import MigrationInstance
from repro.serve import BrokerConfig, ServerConfig, start_in_process
from repro.workloads.io import instance_from_json, instance_to_json


def heavy_instance(seed: int, disks: int = 14, items: int = 150) -> MigrationInstance:
    """One odd-capacity component sized so a solve takes real work —
    wide enough a window for duplicate requests to pile onto it."""
    rng = random.Random(seed)
    nodes = [f"d{i:02d}" for i in range(disks)]
    moves = [(a, b) for a, b in zip(nodes, nodes[1:])]
    while len(moves) < items:
        moves.append(tuple(rng.sample(nodes, 2)))
    caps = {v: rng.choice((1, 3)) for v in nodes}
    raw = MigrationInstance.from_moves(moves, caps)
    # Round-trip through the wire format, exactly as a remote client would.
    return instance_from_json(instance_to_json(raw))


def main() -> None:
    # Three distinct workloads, each requested by four clients at once.
    instances = [heavy_instance(seed) for seed in (1, 2, 3)]
    jobs = [inst for inst in instances for _ in range(4)]

    outcomes = [None] * len(jobs)
    barrier = threading.Barrier(len(jobs))

    with start_in_process(
        ServerConfig(broker=BrokerConfig(concurrency=2))
    ) as handle:

        def worker(k: int) -> None:
            client = handle.client(client_id=f"client-{k}")
            barrier.wait()  # release the whole swarm at once
            outcomes[k] = client.plan(jobs[k])

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(len(jobs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        metrics = handle.client().metrics_text()

    by_fingerprint = {}
    for job, outcome in zip(jobs, outcomes):
        by_fingerprint.setdefault(outcome.fingerprint, set()).add(
            outcome.plan_bytes
        )
        outcome.schedule(job)  # validates against the instance

    coalesced = sum(1 for o in outcomes if o.coalesced)
    print(f"requests: {len(jobs)} ({len(instances)} distinct instances)")
    print(
        f"coalesced: {coalesced}/{len(jobs)} "
        f"(hit-rate {coalesced / len(jobs):.0%})"
    )
    for fp, plans in sorted(by_fingerprint.items()):
        assert len(plans) == 1, "duplicates must receive identical plans"
        print(f"  {fp[:12]}…: {len(plans)} unique plan across its duplicates")

    admitted = [
        line for line in metrics.splitlines()
        if line.startswith("repro_serve_requests")
        or line.startswith("serve_requests")
    ]
    print("server counters:")
    for line in admitted:
        print(f"  {line}")


if __name__ == "__main__":
    main()
