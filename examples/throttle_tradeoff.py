#!/usr/bin/env python
"""Pick a migration throttle level with the degradation model.

Schedules the VoD demand-shift migration at several throttle levels
(θ = fraction of each disk's transfer lanes the migration may use) and
prints the operator's tradeoff curve: interference (lanes busy) falls
with θ, displacement (hot data stuck on wrong disks) rises — and the
total is often minimized strictly *between* full speed and a crawl.

Run:  python examples/throttle_tradeoff.py
"""

from repro.analysis.tables import Table
from repro.extensions.throttle import throttle_tradeoff
from repro.workloads.scenarios import vod_rebalance_scenario


def main() -> None:
    scenario = vod_rebalance_scenario(num_disks=12, num_items=400, seed=29)
    print(f"VoD demand shift: {scenario.instance.num_items} items to move\n")

    points = throttle_tradeoff(
        scenario.cluster, scenario.context, thetas=(1.0, 0.75, 0.5, 0.25)
    )
    table = Table(
        "throttle tradeoff (lower total = calmer migration overall)",
        ["θ", "rounds", "duration", "interference", "displacement", "total"],
    )
    for p in points:
        table.add_row(
            p.theta, p.rounds, p.duration, p.interference, p.displacement,
            p.total_degradation,
        )
    print(table.render())

    best = min(points, key=lambda p: p.total_degradation)
    print(f"\nminimum total degradation at θ = {best.theta:g} "
          f"({best.rounds} rounds, {best.duration:.1f} time units)")
    if best.theta < 1.0:
        print("note: full-speed migration is NOT the gentlest option here —")
        print("lane interference on hot disks outweighs the longer wait.")


if __name__ == "__main__":
    main()
