#!/usr/bin/env python
"""Online migration: batches arriving while earlier work still runs.

Three reconfiguration bursts hit a small cluster two rounds apart.
The replanning policy merges all pending moves and re-runs the paper's
scheduler every round; FIFO drains batch-by-batch. Replanning
interleaves unrelated work into slack rounds and cuts response times.

Run:  python examples/online_batches.py
"""

import random

from repro.extensions.online import run_online


def main() -> None:
    rng = random.Random(42)
    disks = [f"disk{i}" for i in range(8)]
    capacities = {d: rng.choice([1, 2, 4]) for d in disks}

    arrivals = {}
    for burst, round_no in enumerate((0, 2, 4)):
        batch = []
        while len(batch) < 25:
            u, v = rng.sample(disks, 2)
            batch.append((u, v))
        arrivals[round_no] = batch
        print(f"burst {burst}: {len(batch)} moves arrive at round {round_no}")

    print(f"\ncapacities: { {d: capacities[d] for d in sorted(disks)} }\n")
    for policy in ("replan", "fifo"):
        report = run_online(arrivals, capacities, policy=policy)
        print(f"policy={policy:7s} makespan={report.makespan:3d} rounds  "
              f"mean response={report.mean_response:5.2f}  "
              f"max response={report.max_response:3d}  "
              f"plans computed={report.plans_computed}")

    print("\nreplanning pays a plan per round to keep response times low;")
    print("FIFO computes one plan per batch but convoys later arrivals.")


if __name__ == "__main__":
    main()
