#!/usr/bin/env python
"""Quickstart: schedule a small heterogeneous migration.

Builds the paper's running example by hand — a handful of disks with
different transfer constraints and a batch of items to move — and asks
the library for a minimum-round schedule, first through the one-call
legacy API and then through the staged planning pipeline, which also
reports *how* the plan was made.

Run:  python examples/quickstart.py
"""

from repro import MigrationInstance, lower_bound, plan, plan_migration


def main() -> None:
    # Ten data items to move between four disks.  `nvme` is new
    # hardware that can run four transfers at once; `old` disks one.
    moves = [
        ("old1", "nvme"), ("old1", "nvme"), ("old1", "nvme"),
        ("old2", "nvme"), ("old2", "nvme"),
        ("old1", "old2"),
        ("old2", "mid"), ("mid", "nvme"),
        ("mid", "old1"), ("nvme", "mid"),
    ]
    capacities = {"old1": 1, "old2": 1, "mid": 2, "nvme": 4}
    instance = MigrationInstance.from_moves(moves, capacities)

    print(f"instance: {instance}")
    print(f"lower bound (max of LB1/LB2): {lower_bound(instance)} rounds")

    schedule = plan_migration(instance)  # auto: picks the right algorithm
    print(f"scheduler used: {schedule.method}")
    print(f"schedule length: {schedule.num_rounds} rounds\n")

    graph = instance.graph
    for i, round_edges in enumerate(schedule.rounds):
        transfers = ", ".join(
            "{}->{}".format(*graph.endpoints(eid)) for eid in sorted(round_edges)
        )
        print(f"  round {i}: {transfers}")

    # The schedule is validated internally, but you can re-check:
    schedule.validate(instance)
    print("\nschedule validates: every item moves once, no disk ever "
          "exceeds its transfer constraint.")

    # The staged pipeline returns the same schedule plus provenance:
    # which solver handled each connected component, what each stage
    # cost, and (with certify=True) a machine-checked lower bound.
    result = plan(instance, certify=True)
    print("\nplanning pipeline:")
    for comp in result.components:
        print(f"  component {comp.index}: {comp.num_disks} disks, "
              f"{comp.num_items} items -> {comp.method} "
              f"({comp.rounds} rounds)")
    print("  stage timings: " + ", ".join(
        f"{stage} {seconds * 1e3:.2f}ms"
        for stage, seconds in result.stage_timings.items()
    ))
    print(f"  certified lower bound: {result.lower_bound} rounds "
          f"(optimal: {result.certified_optimal})")


if __name__ == "__main__":
    main()
