#!/usr/bin/env python
"""Failure-and-recovery campaign: placement policies compared head-on.

The paper motivates fast migration with failure recovery: the quicker
re-replication completes, the shorter the window in which a second
failure loses data.  This example runs the same seeded failure process
(disk failures, scrubbing, latent errors, replacements) under two
placement policies and compares the durability numbers the policies
actually trade off — repair makespan, repair bandwidth, and
under-replicated item-time.  Every repair is planned by
``repro.plan(...)``, so recurring incident shapes hit the PlanCache.

Run:  python examples/sim_campaign.py
"""

from repro.analysis.tables import Table
from repro.sim import SimConfig, compare_policies

POLICIES = ("random", "spread")


def main() -> None:
    config = SimConfig(
        racks=3,
        machines_per_rack=2,
        disks_per_machine=4,
        items=150,
        scheme="rs6+3",
        duration=2000.0,
        seed=11,
        failure_rate=0.002,
        scrub_interval=100.0,
        latent_error_rate=0.1,
    )
    print(
        f"campaign: {config.items} items, scheme={config.scheme}, "
        f"{config.duration:.0f}s simulated, seed={config.seed}"
    )
    print(f"fleet: {config.racks} racks x {config.machines_per_rack} "
          f"machines x {config.disks_per_machine} disks\n")

    reports = compare_policies(config, POLICIES)

    table = Table(
        "durability and repair cost by placement policy (same failures)",
        [
            "policy", "incidents", "loss events", "exposure (item-s)",
            "repair bytes", "mean makespan", "max makespan", "cache hits",
        ],
    )
    for policy in POLICIES:
        summary = reports[policy].summary
        table.add_row(
            policy,
            summary["incidents"],
            summary["data_loss_events"],
            round(summary["under_replicated_item_time"], 1),
            summary["repair_bytes"],
            round(summary["mean_repair_makespan"], 2),
            round(summary["max_repair_makespan"], 2),
            summary["plan_components_cached"],
        )
    print(table.render())

    a, b = (reports[p].summary for p in POLICIES)
    if a["under_replicated_item_time"] != b["under_replicated_item_time"]:
        faster = min(
            POLICIES,
            key=lambda p: reports[p].summary["under_replicated_item_time"],
        )
        print(
            f"\n{faster} placement kept items exposed for the least time — "
            f"its repair rounds clear the per-disk transfer constraints "
            f"(and the rack uplinks) fastest under this failure process."
        )


if __name__ == "__main__":
    main()
