#!/usr/bin/env python
"""Load-balancing reconfiguration on a VoD cluster (paper Section I).

A video-on-demand cluster balances Zipf-skewed demand across a
heterogeneous fleet.  Overnight the popularity ranking shifts; the
demand-balanced layout changes and data must migrate.  This example
runs the whole pipeline — layout diff, transfer graph, scheduler,
bandwidth-splitting execution — and compares the heterogeneity-aware
schedule with the classic one-transfer-per-disk model.

Run:  python examples/load_rebalance.py
"""

from repro.analysis.metrics import schedule_quality
from repro.cluster.engine import MigrationEngine
from repro.core.solver import plan_migration
from repro.workloads.scenarios import vod_rebalance_scenario


def main() -> None:
    scenario = vod_rebalance_scenario(num_disks=12, num_items=400, alpha=0.9, seed=7)
    instance = scenario.instance
    caps = sorted(set(instance.capacities.values()))
    print(f"cluster: {instance.num_disks} disks, transfer constraints {caps}")
    print(f"demand shift requires moving {instance.num_items} of 400 videos\n")

    # Heterogeneity-aware schedule (the paper's algorithms).
    schedule = plan_migration(instance)
    quality = schedule_quality(instance, schedule)
    print(f"heterogeneous schedule ({schedule.method}): "
          f"{schedule.num_rounds} rounds "
          f"(lower bound {quality.lower_bound}, ratio {quality.ratio:.3f})")

    report = MigrationEngine(scenario.cluster).execute(scenario.context, schedule)
    print(f"simulated wall-clock (bandwidth splitting): {report.total_time:.1f} time units")

    # What prior homogeneous-model work would do on the same cluster.
    homo_scenario = vod_rebalance_scenario(num_disks=12, num_items=400, alpha=0.9, seed=7)
    homo = plan_migration(homo_scenario.instance, method="homogeneous")
    homo_report = MigrationEngine(homo_scenario.cluster).execute(
        homo_scenario.context, homo
    )
    print(f"\nhomogeneous baseline: {homo.num_rounds} rounds, "
          f"{homo_report.total_time:.1f} time units")
    print(f"speedup from modeling heterogeneity: "
          f"{homo_report.total_time / report.total_time:.2f}x")


if __name__ == "__main__":
    main()
