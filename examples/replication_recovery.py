#!/usr/bin/env python
"""Failure recovery on a replicated, rack-aware cluster.

Builds a 2-way-replicated cluster across three racks, kills a disk,
plans the re-replication copies as a migration instance, and compares
how fast each scheduler restores full redundancy — the window during
which a second failure would lose data.

Run:  python examples/replication_recovery.py
"""

from repro.analysis.gantt import render_gantt
from repro.cluster.disk import Disk
from repro.cluster.item import DataItem
from repro.cluster.network import FabricTopology
from repro.cluster.replication import (
    place_replicated,
    recovery_moves,
    validate_replication,
)
from repro.core.lower_bounds import lower_bound
from repro.core.solver import plan_migration


def main() -> None:
    disks = [
        Disk(disk_id=f"d{i}", transfer_limit=(4 if i % 3 == 0 else 1))
        for i in range(9)
    ]
    topology = FabricTopology.striped(
        [d.disk_id for d in disks], racks=3, uplink_bandwidth=8.0
    )
    items = {f"obj{k}": DataItem(item_id=f"obj{k}") for k in range(240)}
    # seed: randomized replica partners spread a failed disk's recovery
    # sources over the whole fleet (try seed=None to see recovery
    # serialize behind a single partner disk).
    layout = place_replicated(items, disks, replicas=2, topology=topology, seed=7)
    validate_replication(layout, 2, topology, racks_available=3)
    print("cluster: 9 disks / 3 racks, 240 objects x 2 replicas")

    failed = "d0"
    survivors = [d for d in disks if d.disk_id != failed]
    plan = recovery_moves(layout, failed, survivors, topology=topology)
    print(f"\ndisk {failed} failed: {len(plan.degraded_items)} objects degraded, "
          f"{plan.num_copies} copies to make")
    print(f"re-replication lower bound: {lower_bound(plan.instance)} rounds")

    for method in ("auto", "greedy", "homogeneous"):
        sched = plan_migration(plan.instance, method=method)
        print(f"  {method:12s}: {sched.num_rounds} rounds")

    sched = plan_migration(plan.instance)
    print("\nper-disk transfer lanes during recovery (auto schedule):")
    print(render_gantt(plan.instance, sched, max_rounds=30))
    validate_replication(layout, 2)  # redundancy restored in the layout
    print("\nreplication invariants hold after recovery planning.")


if __name__ == "__main__":
    main()
