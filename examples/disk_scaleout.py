#!/usr/bin/env python
"""Disk addition: spread data onto new high-capability hardware.

The second migration driver the paper names: disks get added (here,
four NVMe-class devices joining eight older disks) and data must
redistribute quickly so the cluster runs balanced.  Because the new
disks sustain four concurrent transfers each, the transfer graph is
strongly heterogeneous — exactly where this paper improves on
single-transfer scheduling.

Run:  python examples/disk_scaleout.py
"""

from repro.analysis.metrics import compare_methods
from repro.analysis.tables import Table
from repro.cluster.engine import MigrationEngine
from repro.core.solver import plan_migration
from repro.workloads.scenarios import scale_out_scenario


def main() -> None:
    scenario = scale_out_scenario(num_old=8, num_new=4, items_per_old_disk=40, seed=3)
    instance = scenario.instance
    print(f"scale-out: {instance.num_items} items move onto the 4 new disks")
    print(f"transfer constraints: old disks "
          f"{sorted(set(c for d, c in instance.capacities.items() if str(d).startswith('old')))}, "
          f"new disks "
          f"{sorted(set(c for d, c in instance.capacities.items() if str(d).startswith('new')))}\n")

    results = compare_methods(
        instance, methods=("general", "saia", "greedy", "homogeneous")
    )
    table = Table("scheduler comparison", ["method", "rounds", "ratio to LB"])
    for method, quality in sorted(results.items(), key=lambda kv: kv[1].rounds):
        table.add_row(method, quality.rounds, quality.ratio)
    print(table.render())

    schedule = plan_migration(instance)
    report = MigrationEngine(scenario.cluster).execute(scenario.context, schedule)
    print(f"\nexecuted {len(report.migrated_items)} transfers in "
          f"{schedule.num_rounds} rounds / {report.total_time:.1f} simulated time units")
    used = scenario.cluster.space_used()
    new_load = [int(used[d]) for d in sorted(used, key=str) if str(d).startswith("new")]
    print(f"items now on new disks: {new_load}")


if __name__ == "__main__":
    main()
