#!/usr/bin/env python
"""Disk removal with a mid-migration failure and replanning.

Drains three retiring disks, then injects a failure: one of the
*receiving* disks dies after the first round.  The engine replans the
surviving moves (re-targeting items that were headed to the dead disk)
and finishes the drain, reporting what was migrated, re-planned and
stranded — the disk-removal/recovery story of the paper's introduction
made concrete.

Run:  python examples/failure_drain.py
"""

from repro.cluster.engine import MigrationEngine
from repro.cluster.events import DiskRemoved, MigrationReplanned
from repro.core.solver import plan_migration
from repro.workloads.scenarios import decommission_scenario


def main() -> None:
    scenario = decommission_scenario(num_disks=10, num_retiring=3, items_per_disk=30, seed=2)
    instance = scenario.instance
    schedule = plan_migration(instance)
    print(f"decommission: {instance.num_items} items to drain off retiring disks")
    print(f"planned schedule: {schedule.num_rounds} rounds ({schedule.method})\n")

    # Pick a surviving disk that receives data and kill it after round 0.
    receivers = {
        str(instance.graph.endpoints(eid)[1]) for eid in instance.graph.edge_ids()
    }
    victim = sorted(d for d in receivers if not str(d).startswith("old"))[0]
    print(f"injecting failure: disk {victim!r} dies after round 0")

    engine = MigrationEngine(scenario.cluster, time_model="unit")
    report = engine.execute_with_replan(
        scenario.context,
        schedule,
        fail_after_round=0,
        failed_disk=victim,
        planner=lambda inst: plan_migration(inst),
    )

    print(f"\nreplans: {report.replans}")
    for event in report.log.of_type(DiskRemoved):
        print(f"  t={event.time:.1f}: disk {event.disk_id!r} removed")
    for event in report.log.of_type(MigrationReplanned):
        print(f"  t={event.time:.1f}: replanned ({event.remaining_items} moves left) "
              f"because {event.reason}")

    print(f"\nmigrated {len(set(report.migrated_items))} items in "
          f"{report.rounds_executed} rounds, total time {report.total_time:.1f}")
    if report.stranded_items:
        print(f"stranded (source died before drain): {sorted(report.stranded_items)}")
    else:
        print("no items stranded — the drain completed despite the failure")


if __name__ == "__main__":
    main()
