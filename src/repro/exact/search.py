"""Deterministic DFS branch-and-bound over the compact CSR arrays.

The solver proves true optima on small instances (≤ 16 items, ≤ 14
disks — the same caps as the exact LB2 machinery) for all three
objectives of :mod:`repro.core.objectives`:

* **makespan** — iterative deepening on the round count ``k`` from the
  certified lower bound up to the Theorem 5.1 heuristic incumbent; the
  first feasible ``k`` is optimal because every smaller ``k`` was
  exhausted.
* **bounded color** — iterative deepening on the timeline length ``T``;
  per-item allowed-round sets restrict the candidate rounds, so round
  indices are significant and the result may contain empty rounds.
* **group completion** — a single DFS minimizing ``Σ w_g · C_g`` with a
  greedy first-fit incumbent; round indices are branched exhaustively
  (``K ≤ m`` suffices: deleting an empty round and shifting later
  rounds down never increases any completion, so some optimal schedule
  has no empty rounds).

Search design (shared by the fixed-``k`` feasibility DFS):

* **edge order** — edges are ordered by the degeneracy peel of the
  transfer graph: nodes are repeatedly removed at minimum remaining
  degree, and edges incident to the densest core (largest peel step)
  are branched first, ties broken by edge index.  The order is a pure
  function of the CSR arrays.
* **symmetry breaking** — for makespan, color classes are
  interchangeable orbits under any permutation of rounds; the canonical
  orbit ordering opens round ``j`` only when rounds ``0..j-1`` are
  already open, so each coloring is visited in exactly one
  representative ordering.  Round-indexed objectives get no such break
  (indices are wall-clock time).
* **pruning** — (a) per-node feasibility propagation: a disk with
  ``rem_deg_v`` unscheduled incident items must satisfy
  ``rem_deg_v ≤ k·c_v − placed_v``; (b) Lemma 3.1 subset pruning: for
  the densest connected subsets (enumerated once by the shared
  :mod:`repro.exact.subsets` iterator — the same iterator behind the
  exact LB2 witness), the remaining internal edges of ``S`` must fit in
  ``Σ_r ⌊(Σ_{v∈S} c_v − load_v,r) / 2⌋``; (c) for bounded color, every
  unscheduled item incident to a touched disk must retain at least one
  allowed round with spare capacity at both endpoints.
* **budget** — every branch taken counts against a node budget; on
  exhaustion the search raises the typed :class:`ExactBudgetExceeded`
  instead of silently degrading.

Every result carries a tamper-evident :class:`OptimalityCertificate`:
sha256 digests binding the instance, the objective, the emitted rounds
and the explored-subproblem sequence, plus the proof form — either
``matching-lb`` (the value equals an independently recomputable lower
bound) or ``exhausted-frontier`` (re-verified by deterministically
replaying the search and comparing certificates).  The search never
consults the RNG or the clock, so replays are exact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SolverError
from repro.core.general import general_schedule
from repro.core.lower_bounds import EXACT_LB2_NODE_LIMIT, lower_bound
from repro.core.objectives import (
    BoundedColorObjective,
    GroupCompletionObjective,
    MakespanObjective,
    Objective,
)
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.exact.subsets import connected_subsets
from repro.graphs.array_backend import CompactInstance, lift_rounds, lower_instance

#: Applicability cap on items: beyond this the search space is too
#: large for a guaranteed-exact answer (mirrors ``MAX_EXACT_ITEMS`` of
#: the brute-force reference solver).
EXACT_SEARCH_EDGE_LIMIT = 16

#: Applicability cap on disks — shared with the exact LB2 enumeration,
#: so inside the cap the root lower bound is the *true* Γ'.
EXACT_SEARCH_NODE_LIMIT = EXACT_LB2_NODE_LIMIT

#: Default branch budget; exceeding it raises :class:`ExactBudgetExceeded`.
DEFAULT_NODE_BUDGET = 2_000_000

#: How many of the densest connected subsets the Lemma 3.1 pruner tracks.
MAX_TRACKED_SUBSETS = 6

#: Registry name of the solver (also the schedule ``method`` label).
EXACT_BB_METHOD = "exact_bb"

CERTIFICATE_FORMAT = "repro-optimality-certificate"
CERTIFICATE_VERSION = 1

PROOF_MATCHING_LB = "matching-lb"
PROOF_EXHAUSTED = "exhausted-frontier"


class ExactBudgetExceeded(SolverError):
    """The branch-and-bound budget ran out before optimality was proven.

    Attributes:
        explored: branches taken when the budget tripped.
        budget: the configured budget.
        best_value: objective value of the best incumbent found, if any.
    """

    def __init__(self, explored: int, budget: int, best_value: Optional[int]) -> None:
        self.explored = explored
        self.budget = budget
        self.best_value = best_value
        detail = f"best incumbent {best_value}" if best_value is not None else "no incumbent"
        super().__init__(
            f"exact search exceeded its budget of {budget} branches ({detail})"
        )


class InfeasibleObjectiveError(SolverError):
    """No schedule satisfies the objective (e.g. incompatible windows)."""


def instance_digest(instance: MigrationInstance) -> str:
    """sha256 over the relabeling-stable canonical instance payload."""
    caps = sorted((repr(v), c) for v, c in instance.capacities.items())
    moves: List[Tuple[str, str]] = []
    for _eid, u, v in instance.graph.edges():
        ru, rv = repr(u), repr(v)
        moves.append((ru, rv) if ru <= rv else (rv, ru))
    payload = json.dumps(
        {"capacities": caps, "moves": sorted(moves)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def exact_rounds_digest(rounds: Sequence[Sequence[int]]) -> str:
    """sha256 of the round structure, empty rounds significant."""
    canon = [sorted(int(eid) for eid in rnd) for rnd in rounds]
    payload = json.dumps(canon, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class OptimalityCertificate:
    """Tamper-evident proof that an exact result is optimal.

    ``proof`` is either :data:`PROOF_MATCHING_LB` — the value equals a
    lower bound any verifier can recompute from the instance and
    objective alone — or :data:`PROOF_EXHAUSTED`, which
    :func:`verify_optimality` re-establishes by replaying the
    deterministic search and comparing every field, including the
    running sha256 over the explored-subproblem sequence.
    """

    objective_kind: str
    objective_digest: str
    instance_digest: str
    value: int
    lower_bound: int
    proof: str
    explored: int
    budget: int
    frontier_digest: str
    rounds_digest: str
    version: int = CERTIFICATE_VERSION

    def to_json(self, indent: int = 2) -> str:
        payload: Dict[str, Any] = {
            "format": CERTIFICATE_FORMAT,
            "version": self.version,
            "objective_kind": self.objective_kind,
            "objective_digest": self.objective_digest,
            "instance_digest": self.instance_digest,
            "value": self.value,
            "lower_bound": self.lower_bound,
            "proof": self.proof,
            "explored": self.explored,
            "budget": self.budget,
            "frontier_digest": self.frontier_digest,
            "rounds_digest": self.rounds_digest,
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "OptimalityCertificate":
        data = json.loads(payload)
        if data.get("format") != CERTIFICATE_FORMAT:
            raise ValueError(
                f"not an optimality certificate: {data.get('format')!r}"
            )
        if data.get("version") != CERTIFICATE_VERSION:
            raise ValueError(f"unsupported version {data.get('version')!r}")
        return cls(
            objective_kind=str(data["objective_kind"]),
            objective_digest=str(data["objective_digest"]),
            instance_digest=str(data["instance_digest"]),
            value=int(data["value"]),
            lower_bound=int(data["lower_bound"]),
            proof=str(data["proof"]),
            explored=int(data["explored"]),
            budget=int(data["budget"]),
            frontier_digest=str(data["frontier_digest"]),
            rounds_digest=str(data["rounds_digest"]),
        )


@dataclass(frozen=True)
class ExactResult:
    """An optimal schedule plus its proof."""

    schedule: MigrationSchedule
    value: int
    lower_bound: int
    explored: int
    objective: Objective
    certificate: OptimalityCertificate


def _check_applicable(instance: MigrationInstance) -> None:
    if instance.num_items > EXACT_SEARCH_EDGE_LIMIT:
        raise ValueError(
            f"exact search caps at {EXACT_SEARCH_EDGE_LIMIT} items, "
            f"instance has {instance.num_items}"
        )
    if instance.num_disks > EXACT_SEARCH_NODE_LIMIT:
        raise ValueError(
            f"exact search caps at {EXACT_SEARCH_NODE_LIMIT} disks, "
            f"instance has {instance.num_disks}"
        )


def _degeneracy_edge_order(ci: CompactInstance) -> List[int]:
    """Edge indices, densest core first (see module docstring)."""
    g = ci.graph
    n = g.num_nodes
    rem = list(g.degree)
    removed = [False] * n
    peel = [0] * n
    for step in range(n):
        best = -1
        for i in range(n):
            if not removed[i] and (best < 0 or rem[i] < rem[best]):
                best = i
        removed[best] = True
        peel[best] = step
        for idx in range(g.indptr[best], g.indptr[best + 1]):
            other = g.inc_other[idx]
            if not removed[other]:
                rem[other] -= 1

    def key(e: int) -> Tuple[int, int, int]:
        pu, pv = peel[g.edge_u[e]], peel[g.edge_v[e]]
        return (-min(pu, pv), -max(pu, pv), e)

    return sorted(range(g.num_edges), key=key)


def _dense_subsets(ci: CompactInstance) -> List[Tuple[Tuple[int, ...], int]]:
    """The densest connected subsets for the Lemma 3.1 pruner.

    Returns up to :data:`MAX_TRACKED_SUBSETS` ``(node_indices,
    edges_inside)`` pairs, ordered by descending density bound then by
    the subset itself — a pure function of the CSR arrays, via the same
    :func:`repro.exact.subsets.connected_subsets` iterator that powers
    the exact LB2 witness.
    """
    g = ci.graph
    caps = ci.capacities
    adjacency: List[List[int]] = [
        [g.inc_other[i] for i in range(g.indptr[v], g.indptr[v + 1])]
        for v in range(g.num_nodes)
    ]
    scored: List[Tuple[int, Tuple[int, ...], int]] = []
    for combo in connected_subsets(adjacency, min_size=2):
        mask = 0
        capsum = 0
        for v in combo:
            mask |= 1 << v
            capsum += caps[v]
        inside = sum(
            1
            for e in range(g.num_edges)
            if (mask >> g.edge_u[e]) & 1 and (mask >> g.edge_v[e]) & 1
        )
        half = capsum // 2
        if inside == 0 or half == 0:
            continue
        bound = -(-inside // half)
        if bound >= 2:
            scored.append((bound, combo, inside))
    scored.sort(key=lambda item: (-item[0], len(item[1]), item[1]))
    return [(combo, inside) for _bound, combo, inside in scored[:MAX_TRACKED_SUBSETS]]


class _Tracker:
    """Per-subset state for the Lemma 3.1 dynamic prune."""

    __slots__ = ("nodes", "mask", "rem")

    def __init__(self, nodes: Tuple[int, ...], edges_inside: int) -> None:
        self.nodes = nodes
        self.mask = 0
        for v in nodes:
            self.mask |= 1 << v
        self.rem = edges_inside


class _Search:
    """One branch-and-bound run; never touches RNG or clock."""

    def __init__(
        self,
        instance: MigrationInstance,
        objective: Objective,
        node_budget: int,
    ) -> None:
        self.instance = instance
        self.objective = objective
        self.budget = node_budget
        self.explored = 0
        self.best_value: Optional[int] = None
        self._hasher = hashlib.sha256()
        self.ci = lower_instance(instance)
        g = self.ci.graph
        self.n = g.num_nodes
        self.m = g.num_edges
        self.caps = self.ci.capacities
        self.eu = g.edge_u
        self.ev = g.edge_v
        self.order = _degeneracy_edge_order(self.ci)
        self.subsets = _dense_subsets(self.ci)

    # -- bookkeeping ----------------------------------------------------
    def _mark(self, event: str) -> None:
        self._hasher.update(event.encode())

    def _tick(self, edge_pos: int, round_index: int) -> None:
        self.explored += 1
        self._hasher.update(b"%d:%d;" % (edge_pos, round_index))
        if self.explored > self.budget:
            raise ExactBudgetExceeded(self.explored, self.budget, self.best_value)

    def frontier_digest(self) -> str:
        return self._hasher.hexdigest()

    # -- fixed-k feasibility DFS (makespan & bounded color) -------------
    def feasible(
        self, k: int, allowed: Optional[List[Tuple[int, ...]]]
    ) -> Optional[List[List[int]]]:
        """A feasible assignment of all edges to rounds ``0..k-1``.

        ``allowed`` maps edge *index* to its candidate rounds (bounded
        color); ``None`` means any round, with the canonical-orbit
        symmetry break.  Returns ``k`` rounds of edge indices (some
        possibly empty) or ``None``.
        """
        n, m, caps = self.n, self.m, self.caps
        eu, ev, order = self.eu, self.ev, self.order
        load = [[0] * k for _ in range(n)]
        rem_deg = list(self.ci.graph.degree)
        free = [caps[v] * k for v in range(n)]
        for v in range(n):
            if rem_deg[v] > free[v]:
                return None
        trackers = [_Tracker(nodes, inside) for nodes, inside in self.subsets]
        assign = [-1] * m
        self._mark("k%d;" % k)

        def tracker_ok(tracker: _Tracker) -> bool:
            rem = tracker.rem
            if rem == 0:
                return True
            capacity = 0
            for r in range(k):
                capsum = 0
                for v in tracker.nodes:
                    capsum += caps[v] - load[v][r]
                capacity += capsum // 2
                if capacity >= rem:
                    return True
            return capacity >= rem

        def windows_open(v: int) -> bool:
            # Bounded color only: every unscheduled edge at ``v`` must
            # retain an allowed round with slack at both endpoints.
            assert allowed is not None
            g = self.ci.graph
            for idx in range(g.indptr[v], g.indptr[v + 1]):
                e = g.inc_edge[idx]
                if assign[e] >= 0:
                    continue
                a, b = eu[e], ev[e]
                if not any(
                    load[a][r] < caps[a] and load[b][r] < caps[b]
                    for r in allowed[e]
                    if r < k
                ):
                    return False
            return True

        def dfs(i: int, used: int) -> bool:
            if i == m:
                return True
            e = order[i]
            u, v = eu[e], ev[e]
            if allowed is None:
                candidates: Sequence[int] = range(min(used + 1, k))
            else:
                candidates = [r for r in allowed[e] if r < k]
            for r in candidates:
                if load[u][r] >= caps[u] or load[v][r] >= caps[v]:
                    continue
                self._tick(i, r)
                load[u][r] += 1
                load[v][r] += 1
                free[u] -= 1
                free[v] -= 1
                rem_deg[u] -= 1
                rem_deg[v] -= 1
                assign[e] = r
                touched = [
                    t
                    for t in trackers
                    if (t.mask >> u) & 1 or (t.mask >> v) & 1
                ]
                for t in touched:
                    if (t.mask >> u) & 1 and (t.mask >> v) & 1:
                        t.rem -= 1
                ok = (
                    rem_deg[u] <= free[u]
                    and rem_deg[v] <= free[v]
                    and all(tracker_ok(t) for t in touched)
                )
                if ok and allowed is not None:
                    ok = windows_open(u) and windows_open(v)
                if ok:
                    next_used = used
                    if allowed is None and r == used:
                        next_used = used + 1
                    if dfs(i + 1, next_used):
                        return True
                for t in touched:
                    if (t.mask >> u) & 1 and (t.mask >> v) & 1:
                        t.rem += 1
                assign[e] = -1
                load[u][r] -= 1
                load[v][r] -= 1
                free[u] += 1
                free[v] += 1
                rem_deg[u] += 1
                rem_deg[v] += 1
            return False

        if not dfs(0, 0):
            self._mark("X%d;" % k)
            return None
        rounds: List[List[int]] = [[] for _ in range(k)]
        for e in range(m):
            rounds[assign[e]].append(e)
        return [sorted(rnd) for rnd in rounds]

    # -- group completion DFS -------------------------------------------
    def minimize_group(
        self, objective: GroupCompletionObjective
    ) -> Tuple[List[List[int]], int, int]:
        """Optimal rounds, value, and trivial lower bound ``Σ w_g``."""
        g = self.ci.graph
        weights = objective.weights
        names = sorted(weights)
        gid_of_name = {name: i for i, name in enumerate(names)}
        w = [weights[name] for name in names]
        gid = [gid_of_name[objective.group_of(g.edge_ids[e])] for e in range(self.m)]
        base_lb = sum(w)
        n, m, caps = self.n, self.m, self.caps
        eu, ev = self.eu, self.ev
        if m == 0:
            return [], 0, 0
        K = m
        # Heavy groups first, then the degeneracy order.
        degeneracy_pos = {e: i for i, e in enumerate(self.order)}
        order = sorted(range(m), key=lambda e: (-w[gid[e]], degeneracy_pos[e]))
        self._mark("G%d;" % K)

        # Greedy first-fit incumbent in the same order.
        load = [[0] * K for _ in range(n)]
        greedy_assign = [-1] * m
        for e in order:
            u, v = eu[e], ev[e]
            for r in range(K):
                if load[u][r] < caps[u] and load[v][r] < caps[v]:
                    greedy_assign[e] = r
                    load[u][r] += 1
                    load[v][r] += 1
                    break
        comp = [0] * len(w)
        for e in range(m):
            comp[gid[e]] = max(comp[gid[e]], greedy_assign[e] + 1)
        best_value = sum(w[i] * comp[i] for i in range(len(w)))
        best_assign = list(greedy_assign)
        self.best_value = best_value
        self._mark("I%d;" % best_value)

        if best_value > base_lb:
            load = [[0] * K for _ in range(n)]
            assign = [-1] * m
            comp = [0] * len(w)
            pending = [0] * len(w)
            for e in range(m):
                pending[gid[e]] += 1

            def bound() -> int:
                total = 0
                for i in range(len(w)):
                    c = comp[i]
                    if pending[i] > 0 and c == 0:
                        c = 1
                    total += w[i] * c
                return total

            def dfs(pos: int, value_bound: int) -> None:
                nonlocal best_value, best_assign
                if pos == m:
                    if value_bound < best_value:
                        best_value = value_bound
                        best_assign = list(assign)
                        self.best_value = best_value
                        self._mark("U%d;" % best_value)
                    return
                e = order[pos]
                u, v = eu[e], ev[e]
                gi = gid[e]
                for r in range(K):
                    if load[u][r] >= caps[u] or load[v][r] >= caps[v]:
                        continue
                    prev_comp = comp[gi]
                    comp[gi] = max(prev_comp, r + 1)
                    pending[gi] -= 1
                    new_bound = bound()
                    if new_bound < best_value:
                        self._tick(pos, r)
                        load[u][r] += 1
                        load[v][r] += 1
                        assign[e] = r
                        dfs(pos + 1, new_bound)
                        assign[e] = -1
                        load[u][r] -= 1
                        load[v][r] -= 1
                    comp[gi] = prev_comp
                    pending[gi] += 1

            dfs(0, 0)

        rounds: List[List[int]] = [[] for _ in range(K)]
        for e in range(m):
            rounds[best_assign[e]].append(e)
        compact = [sorted(rnd) for rnd in rounds if rnd]
        return compact, best_value, base_lb


def _bounded_candidates(
    search: _Search, objective: BoundedColorObjective
) -> Tuple[List[Tuple[int, ...]], int, int]:
    """Per-edge-index windows plus the window LB and timeline cap."""
    g = search.ci.graph
    allowed: List[Tuple[int, ...]] = [
        objective.allowed_rounds(g.edge_ids[e]) for e in range(search.m)
    ]
    window_lb = max((min(win) + 1 for win in allowed), default=0)
    horizon = max((max(win) + 1 for win in allowed), default=0)
    return allowed, window_lb, horizon


def solve_exact(
    instance: MigrationInstance,
    objective: Optional[Objective] = None,
    *,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> ExactResult:
    """Solve ``instance`` to proven optimality for ``objective``.

    Args:
        instance: at most :data:`EXACT_SEARCH_EDGE_LIMIT` items and
            :data:`EXACT_SEARCH_NODE_LIMIT` disks.
        objective: defaults to the instance's own objective (which
            defaults to makespan).
        node_budget: branch budget; exceeded ⇒
            :class:`ExactBudgetExceeded`.

    Returns:
        An :class:`ExactResult` whose schedule is validated, whose
        value is the true optimum, and whose certificate
        :func:`verify_optimality` accepts.

    Raises:
        ValueError: instance exceeds the applicability caps.
        InfeasibleObjectiveError: no schedule satisfies the objective.
        ExactBudgetExceeded: the budget ran out.
    """
    _check_applicable(instance)
    obj = instance.objective if objective is None else objective
    obj.validate(instance)
    search = _Search(instance, obj, node_budget)

    keep_empty = False
    if isinstance(obj, BoundedColorObjective):
        rounds_idx, value, lb, proof = _solve_bounded(search, obj)
        keep_empty = True
    elif isinstance(obj, GroupCompletionObjective):
        rounds_idx, value, lb = search.minimize_group(obj)
        proof = PROOF_MATCHING_LB if value == lb else PROOF_EXHAUSTED
    else:
        rounds_idx, value, lb, proof = _solve_makespan(search)

    lifted = lift_rounds(search.ci.graph, rounds_idx)
    lifted = [sorted(rnd) for rnd in lifted]
    schedule = MigrationSchedule(lifted, method=EXACT_BB_METHOD, keep_empty=keep_empty)
    schedule.validate(instance)
    obj.check(instance, schedule.rounds)
    recomputed = obj.value(instance, schedule.rounds)
    if recomputed != value:
        raise SolverError(
            f"exact search value {value} disagrees with objective value {recomputed}"
        )
    certificate = OptimalityCertificate(
        objective_kind=obj.kind,
        objective_digest=obj.digest(),
        instance_digest=instance_digest(instance),
        value=value,
        lower_bound=lb,
        proof=proof,
        explored=search.explored,
        budget=node_budget,
        frontier_digest=search.frontier_digest(),
        rounds_digest=exact_rounds_digest(schedule.rounds),
    )
    return ExactResult(
        schedule=schedule,
        value=value,
        lower_bound=lb,
        explored=search.explored,
        objective=obj,
        certificate=certificate,
    )


def _solve_makespan(search: _Search) -> Tuple[List[List[int]], int, int, str]:
    instance = search.instance
    lb = lower_bound(instance)
    heuristic = general_schedule(instance, seed=0)
    upper = heuristic.num_rounds
    search._mark("L%d;U%d;" % (lb, upper))
    if upper == lb:
        # Heuristic already matches the certified lower bound.
        index_of = search.ci.graph.edge_index_of
        rounds = [sorted(index_of[eid] for eid in rnd) for rnd in heuristic.rounds]
        return rounds, lb, lb, PROOF_MATCHING_LB
    for k in range(lb, upper):
        solution = search.feasible(k, allowed=None)
        if solution is not None:
            proof = PROOF_MATCHING_LB if k == lb else PROOF_EXHAUSTED
            return [rnd for rnd in solution if rnd], k, lb, proof
    index_of = search.ci.graph.edge_index_of
    rounds = [sorted(index_of[eid] for eid in rnd) for rnd in heuristic.rounds]
    return rounds, upper, lb, PROOF_EXHAUSTED


def _solve_bounded(
    search: _Search, objective: BoundedColorObjective
) -> Tuple[List[List[int]], int, int, str]:
    instance = search.instance
    if search.m == 0:
        return [], 0, 0, PROOF_MATCHING_LB
    allowed, window_lb, horizon = _bounded_candidates(search, objective)
    lb = max(lower_bound(instance), window_lb)
    search._mark("B%d;H%d;" % (lb, horizon))
    for timeline in range(lb, horizon + 1):
        if any(not any(r < timeline for r in win) for win in allowed):
            search._mark("W%d;" % timeline)
            continue
        solution = search.feasible(timeline, allowed=allowed)
        if solution is not None:
            proof = PROOF_MATCHING_LB if timeline == lb else PROOF_EXHAUSTED
            return solution, timeline, lb, proof
    raise InfeasibleObjectiveError(
        f"no schedule satisfies the allowed-round sets within horizon {horizon}"
    )


def verify_optimality(
    instance: MigrationInstance,
    objective: Objective,
    schedule: MigrationSchedule,
    certificate: OptimalityCertificate,
) -> None:
    """Re-establish an :class:`OptimalityCertificate` without trust.

    Checks, in order: digest bindings (instance, objective, rounds),
    objective-specific feasibility, the claimed value, and the proof —
    by recomputing the lower bound for ``matching-lb``, or by replaying
    the deterministic search and comparing certificates field-for-field
    for ``exhausted-frontier``.

    Raises:
        ValueError: on any mismatch (the certificate is rejected).
    """
    if certificate.version != CERTIFICATE_VERSION:
        raise ValueError(f"unsupported certificate version {certificate.version}")
    if certificate.objective_kind != objective.kind:
        raise ValueError(
            f"certificate objective kind {certificate.objective_kind!r} "
            f"!= {objective.kind!r}"
        )
    if certificate.objective_digest != objective.digest():
        raise ValueError("certificate does not bind this objective")
    if certificate.instance_digest != instance_digest(instance):
        raise ValueError("certificate does not bind this instance")
    if certificate.rounds_digest != exact_rounds_digest(schedule.rounds):
        raise ValueError("certificate does not bind this schedule")
    schedule.validate(instance)
    objective.check(instance, schedule.rounds)
    value = objective.value(instance, schedule.rounds)
    if value != certificate.value:
        raise ValueError(
            f"schedule value {value} != certified value {certificate.value}"
        )
    if certificate.proof == PROOF_MATCHING_LB:
        lb = _independent_lower_bound(instance, objective)
        if certificate.lower_bound != lb:
            raise ValueError(
                f"certified lower bound {certificate.lower_bound} != recomputed {lb}"
            )
        if value != lb:
            raise ValueError(
                f"matching-lb proof but value {value} != lower bound {lb}"
            )
        return
    if certificate.proof != PROOF_EXHAUSTED:
        raise ValueError(f"unknown proof form {certificate.proof!r}")
    try:
        replayed = solve_exact(instance, objective, node_budget=certificate.budget)
    except SolverError as exc:
        raise ValueError(f"replayed search failed: {exc}") from exc
    if replayed.certificate != certificate:
        raise ValueError("replayed search does not reproduce the certificate")


def _independent_lower_bound(
    instance: MigrationInstance, objective: Objective
) -> int:
    """The lower bound a ``matching-lb`` verifier recomputes itself."""
    if isinstance(objective, BoundedColorObjective):
        if instance.num_items == 0:
            return 0
        window_lb = max(
            (min(objective.allowed_rounds(eid)) + 1 for eid in instance.graph.edge_ids()),
            default=0,
        )
        return max(lower_bound(instance), window_lb)
    if isinstance(objective, GroupCompletionObjective):
        if instance.num_items == 0:
            return 0
        return sum(objective.weights.values())
    if isinstance(objective, MakespanObjective):
        return lower_bound(instance)
    raise ValueError(f"no independent lower bound for objective {objective.kind!r}")


def exact_bb_schedule(
    instance: MigrationInstance,
    seed: int = 0,
    stats: object = None,
) -> MigrationSchedule:
    """Registry adapter: the makespan-optimal schedule for ``instance``.

    ``seed`` and ``stats`` are accepted for signature compatibility and
    ignored — the search is deterministic and seed-free.
    """
    del seed, stats
    return solve_exact(instance, MakespanObjective()).schedule
