"""repro.exact — exact optimization for small migration instances.

The rest of the repo certifies *lower bounds*; this package certifies
*optima*.  It contains:

* :mod:`repro.exact.subsets` — deterministic connected-subset
  enumeration shared by the exact LB2 witness and the branch-and-bound
  pruner;
* :mod:`repro.exact.search` — a deterministic DFS branch-and-bound
  edge-coloring solver over the compact CSR arrays, supporting the
  makespan, bounded-color and group-completion objectives and emitting
  tamper-evident :class:`~repro.exact.search.OptimalityCertificate`\\ s;
* :mod:`repro.exact.gap` — the true-approximation-gap harness behind
  ``repro-migrate gap`` and ``BENCH_EXACT.json``.

Everything here is stdlib-only and deterministic across processes and
``PYTHONHASHSEED`` values.
"""

from repro.exact.search import (
    DEFAULT_NODE_BUDGET,
    EXACT_BB_METHOD,
    EXACT_SEARCH_EDGE_LIMIT,
    EXACT_SEARCH_NODE_LIMIT,
    ExactBudgetExceeded,
    ExactResult,
    InfeasibleObjectiveError,
    OptimalityCertificate,
    exact_bb_schedule,
    instance_digest,
    solve_exact,
    verify_optimality,
)
from repro.exact.subsets import connected_node_subsets, connected_subsets

__all__ = [
    "DEFAULT_NODE_BUDGET",
    "EXACT_BB_METHOD",
    "EXACT_SEARCH_EDGE_LIMIT",
    "EXACT_SEARCH_NODE_LIMIT",
    "ExactBudgetExceeded",
    "ExactResult",
    "InfeasibleObjectiveError",
    "OptimalityCertificate",
    "connected_node_subsets",
    "connected_subsets",
    "exact_bb_schedule",
    "instance_digest",
    "solve_exact",
    "verify_optimality",
]
