"""True approximation-gap harness over the exact solver.

Theorem 5.1 guarantees the general scheduler uses at most roughly
``2·⌈Δ'/2⌉ + 1`` rounds — a *worst-case* multiplicative bound.  What
the paper cannot report (and PR 6's EXPERIMENTS only estimates against
lower bounds) is the **true** gap: heuristic rounds divided by the
*provably optimal* rounds.  With :mod:`repro.exact.search` in the tree,
that ratio is computable exactly on small instances, and this harness
sweeps it across every generator family at the exact solver's caps
(≤ 16 items, ≤ 14 disks).

For each instance the harness:

* certifies the lower bound (``max(Δ', Γ')`` via
  :mod:`repro.checks.certify`, witnesses re-verified);
* solves to proven optimality and **verifies the optimality
  certificate** — every certificate in the sweep is re-established via
  :func:`repro.checks.certify.verify_optimality_certificate`, never
  trusted;
* runs each comparison heuristic and records ``rounds / optimal``.

Everything is deterministic: the corpus is seeded, the exact search is
RNG- and clock-free, and the metrics payload is canonical JSON — two
runs (under any ``PYTHONHASHSEED``) produce identical bytes, which the
CI ``exact-smoke`` job checks with a literal ``cmp``.  Results accrete
into ``BENCH_EXACT.json`` keyed by commit, like the other BENCH files.

Run via ``repro-migrate gap`` (``--quick`` for the CI subset,
``--report`` for a canonical JSON artifact, ``--bench`` to append the
BENCH entry).
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.problem import MigrationInstance
from repro.exact.search import EXACT_SEARCH_EDGE_LIMIT, solve_exact
from repro.workloads.generators import (
    bipartite_instance,
    clique_instance,
    hotspot_instance,
    random_instance,
    regular_instance,
)

BENCH_SCHEMA = "bench-exact/v1"
DEFAULT_BENCH_FILE = "BENCH_EXACT.json"

#: Heuristics whose true approximation ratio the sweep records.  The
#: general solver is the Theorem 5.1 subject; the baselines give the
#: ratio context (how much of the gap is closed by being clever).
HEURISTIC_METHODS: Tuple[str, ...] = ("general", "saia", "greedy", "homogeneous")

#: Instance seeds per family — full sweep and the CI ``--quick`` subset.
FULL_SEEDS: Tuple[int, ...] = (0, 1, 2, 3, 4)
QUICK_SEEDS: Tuple[int, ...] = (0, 1)


@dataclass(frozen=True)
class GapFamily:
    """One generator family, parameterized by an instance seed."""

    name: str
    factory: Callable[[int], MigrationInstance]


def _clique(seed: int) -> MigrationInstance:
    # The clique generator is parameter-deterministic (no RNG); vary the
    # shape with the seed instead: K_3 with 4–5 parallel items per pair,
    # or K_4 with 2 (all ≤ 16 items).
    shapes = ((3, 4), (3, 5), (4, 2))
    disks, per_pair = shapes[seed % len(shapes)]
    return clique_instance(disks, per_pair, capacity=1)


def _class2(seed: int) -> MigrationInstance:
    """Class-2 graphs under unit capacities: the optimum strictly
    exceeds ``max(Δ', Γ')``, so the proof is ``exhausted-frontier`` —
    this family keeps the sweep honest about the replay-verified path.
    """
    if seed % 5 == 0:
        # K5: Δ' = 4 but χ'(K5) = 5 (odd-order complete graph).
        moves = [
            (f"d{i}", f"d{j}") for i in range(5) for j in range(i + 1, 5)
        ]
    elif seed % 5 == 1:
        # Petersen graph: Δ' = 3 but χ' = 4 (the classic snark-adjacent
        # counterexample).
        outer = [(f"o{i}", f"o{(i + 1) % 5}") for i in range(5)]
        inner = [(f"i{i}", f"i{(i + 2) % 5}") for i in range(5)]
        spokes = [(f"o{i}", f"i{i}") for i in range(5)]
        moves = outer + inner + spokes
    else:
        # Odd cycle C_{2k+1}: Δ' = 2 but χ' = 3.
        length = (7, 9, 11)[seed % 5 - 2]
        moves = [(f"d{i}", f"d{(i + 1) % length}") for i in range(length)]
    nodes = sorted({v for pair in moves for v in pair})
    return MigrationInstance.from_moves(moves, {v: 1 for v in nodes})


#: The sweep corpus: seven families, all inside the exact caps.
FAMILIES: Tuple[GapFamily, ...] = (
    GapFamily(
        "random-mixed",
        lambda s: random_instance(
            6, 14, capacities={1: 0.4, 2: 0.4, 3: 0.2}, seed=100 + s
        ),
    ),
    GapFamily(
        "random-unit",
        lambda s: random_instance(7, 15, uniform_capacity=1, seed=200 + s),
    ),
    GapFamily(
        "random-even",
        lambda s: random_instance(6, 16, uniform_capacity=2, seed=300 + s),
    ),
    GapFamily(
        "bipartite",
        lambda s: bipartite_instance(
            4, 3, 14, old_capacity=1, new_capacity=2, seed=400 + s
        ),
    ),
    GapFamily("clique", _clique),
    GapFamily("class2", _class2),
    GapFamily("hotspot", lambda s: hotspot_instance(7, 2, 15, seed=500 + s)),
    GapFamily(
        "regular", lambda s: regular_instance(8, 4, capacity=2, seed=600 + s)
    ),
)


def sweep_instance(instance: MigrationInstance) -> Dict[str, Any]:
    """Exact-solve one instance and measure every heuristic against it.

    The optimality certificate is verified (not trusted) before any
    ratio is derived from it.

    Raises:
        CertificationError: if the certificate fails verification.
        ValueError: if the instance exceeds the exact solver's caps.
    """
    from repro.checks.certify import (
        make_certificate,
        verify_certificate,
        verify_optimality_certificate,
    )
    from repro.pipeline.planner import plan

    lb = verify_certificate(instance, make_certificate(instance))
    res = solve_exact(instance)
    verify_optimality_certificate(
        instance, res.objective, res.schedule, res.certificate
    )
    heuristics: Dict[str, Any] = {}
    for method in HEURISTIC_METHODS:
        rounds = plan(instance, method=method, seed=0).schedule.num_rounds
        heuristics[method] = {
            "rounds": rounds,
            "ratio": round(rounds / res.value, 4) if res.value else 1.0,
        }
    return {
        "disks": instance.num_disks,
        "items": instance.num_items,
        "lower_bound": lb,
        "optimal": res.value,
        "proof": res.certificate.proof,
        "explored": res.explored,
        "heuristics": heuristics,
    }


def collect_gap_metrics(quick: bool = False) -> Dict[str, Any]:
    """One BENCH_EXACT.json metrics payload (deterministic bytes)."""
    seeds = QUICK_SEEDS if quick else FULL_SEEDS
    families: Dict[str, Any] = {}
    for family in FAMILIES:
        cases: List[Dict[str, Any]] = []
        for seed in seeds:
            case = sweep_instance(family.factory(seed))
            case["seed"] = seed
            cases.append(case)
        summary: Dict[str, Any] = {
            "instances": len(cases),
            "optimal_equals_lb": sum(
                1 for c in cases if c["optimal"] == c["lower_bound"]
            ),
        }
        for method in HEURISTIC_METHODS:
            ratios = [c["heuristics"][method]["ratio"] for c in cases]
            summary[method] = {
                "max_ratio": max(ratios),
                "mean_ratio": round(sum(ratios) / len(ratios), 4),
                "optimal_hits": sum(
                    1
                    for c in cases
                    if c["heuristics"][method]["rounds"] == c["optimal"]
                ),
            }
        families[family.name] = {"summary": summary, "cases": cases}
    return {
        "mode": "quick" if quick else "full",
        "edge_limit": EXACT_SEARCH_EDGE_LIMIT,
        "families": families,
    }


def canonical_json(metrics: Dict[str, Any]) -> str:
    """The byte-comparable form of a metrics payload."""
    return json.dumps(metrics, indent=2, sort_keys=True) + "\n"


def _current_commit(cwd: pathlib.Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_bench_entry(
    metrics: Dict[str, Any], bench_file: pathlib.Path
) -> Dict[str, Any]:
    """Append (or refresh, same commit) one entry in BENCH_EXACT.json.

    Re-running at the same commit replaces that commit's entry, so the
    file converges to identical bytes no matter how often it runs.
    """
    if bench_file.exists():
        data = json.loads(bench_file.read_text())
    else:
        data = {"schema": BENCH_SCHEMA, "entries": []}
    entry = {
        "commit": _current_commit(bench_file.resolve().parent),
        # The entry date is provenance for humans reading the BENCH
        # file, not part of any schedule; determinism of the *metrics*
        # is what the exact-smoke job compares.
        "date": datetime.date.today().isoformat(),  # repro: allow-wall-clock
        "metrics": metrics,
    }
    entries = [e for e in data["entries"] if e.get("commit") != entry["commit"]]
    entries.append(entry)
    data["entries"] = entries
    bench_file.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entry


def render_gap_table(metrics: Dict[str, Any]) -> str:
    """Human summary: one row per family."""
    from repro.analysis.tables import Table

    table = Table(
        "true approximation gap (heuristic rounds / proven optimum)",
        ["family", "n", "opt=LB", "general max", "general mean", "worst baseline"],
    )
    for name in sorted(metrics["families"]):
        summary = metrics["families"][name]["summary"]
        worst = max(
            summary[m]["max_ratio"] for m in HEURISTIC_METHODS if m != "general"
        )
        table.add_row(
            name,
            summary["instances"],
            f'{summary["optimal_equals_lb"]}/{summary["instances"]}',
            f'{summary["general"]["max_ratio"]:.4f}',
            f'{summary["general"]["mean_ratio"]:.4f}',
            f"{worst:.4f}",
        )
    return table.render()


def run_gap(
    quick: bool = False,
    report_path: Optional[str] = None,
    bench_path: Optional[str] = None,
) -> Tuple[Dict[str, Any], int]:
    """The ``repro-migrate gap`` work: sweep, report, bench.

    Returns ``(metrics, exit_code)``; a sweep that completes has
    already verified every optimality certificate, so the exit code is
    0 unless a heuristic beat a "proven" optimum — which would mean the
    proof machinery is broken and must fail loudly.
    """
    metrics = collect_gap_metrics(quick=quick)
    failures = 0
    for name, family in metrics["families"].items():
        for case in family["cases"]:
            for method, row in case["heuristics"].items():
                if row["rounds"] < case["optimal"]:
                    print(
                        f"FAIL {name}/seed{case['seed']}: {method} used "
                        f"{row['rounds']} rounds, below the proven optimum "
                        f"{case['optimal']}"
                    )
                    failures += 1
    if report_path:
        pathlib.Path(report_path).write_text(canonical_json(metrics))
    if bench_path:
        append_bench_entry(metrics, pathlib.Path(bench_path))
    return metrics, (1 if failures else 0)
