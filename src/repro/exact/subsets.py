"""Deterministic enumeration of connected node subsets.

Both exact machines in this repo maximize or prune over node subsets:

* :func:`repro.core.lower_bounds.lb2_exact_witness` maximizes the
  Lemma 3.1 density bound ``ceil(|E(S)| / floor(Σ c_v / 2))`` over
  subsets ``S``;
* the branch-and-bound solver (:mod:`repro.exact.search`) precomputes
  the same bound per subset to prune its color search.

Restricting the enumeration to *connected* subsets loses nothing: if
``S`` splits into components ``S₁, …, S_k`` with ``a_i`` internal edges
and half-capacities ``h_i``, then ``floor(Σ c / 2) ≥ Σ h_i`` (the floor
of a sum dominates the sum of floors) and the mediant inequality gives
``ceil(Σ a_i / Σ h_i) ≤ max_i ceil(a_i / h_i)`` — some component is at
least as dense as the union.  Connected enumeration is typically far
smaller than ``2^n`` on sparse instances, and never larger.

The enumeration is deterministic: subsets are produced in a fixed order
that depends only on the (sorted) adjacency structure, never on set or
dict iteration order, so witnesses and prune tables are byte-stable
across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

if TYPE_CHECKING:
    from repro.core.problem import MigrationInstance
    from repro.graphs.multigraph import Node

_FREE, _IN_SUBSET, _EXCLUDED, _IN_FRONTIER = 0, 1, 2, 3


def connected_subsets(
    adjacency: Sequence[Sequence[int]], min_size: int = 2
) -> Iterator[Tuple[int, ...]]:
    """Yield every connected subset of ``{0, …, n-1}`` exactly once.

    ``adjacency[i]`` lists the neighbours of node ``i`` (duplicates and
    self-entries are ignored).  Each yielded tuple is sorted ascending;
    subsets smaller than ``min_size`` are suppressed.

    Enumeration scheme: for each root ``r`` (ascending), enumerate the
    connected subsets whose minimum element is ``r`` by a binary
    include/exclude decision tree over an ordered frontier.  Every
    subset corresponds to exactly one decision leaf (its excluded set is
    forced to be the full outer neighbourhood), so there are no
    duplicates and the order is a pure function of ``adjacency``.
    """
    n = len(adjacency)
    adj: List[List[int]] = [
        sorted({u for u in row if u != i and 0 <= u < n})
        for i, row in enumerate(adjacency)
    ]
    status = [_FREE] * n

    def extend(
        root: int, subset: List[int], frontier: List[int]
    ) -> Iterator[Tuple[int, ...]]:
        if not frontier:
            if len(subset) >= min_size:
                yield tuple(sorted(subset))
            return
        v = frontier[0]
        rest = frontier[1:]
        # Branch 1: include v; its unseen neighbours join the frontier.
        status[v] = _IN_SUBSET
        added = [u for u in adj[v] if u > root and status[u] == _FREE]
        for u in added:
            status[u] = _IN_FRONTIER
        subset.append(v)
        yield from extend(root, subset, rest + added)
        subset.pop()
        for u in added:
            status[u] = _FREE
        # Branch 2: exclude v for the rest of this root's subtree.
        status[v] = _EXCLUDED
        yield from extend(root, subset, rest)
        status[v] = _IN_FRONTIER  # restore to the caller's view

    for root in range(n):
        status[root] = _IN_SUBSET
        frontier = [u for u in adj[root] if u > root]
        for u in frontier:
            status[u] = _IN_FRONTIER
        yield from extend(root, [root], frontier)
        for u in frontier:
            status[u] = _FREE
        status[root] = _FREE


def connected_node_subsets(
    instance: "MigrationInstance", min_size: int = 2
) -> Iterator[Tuple["Node", ...]]:
    """:func:`connected_subsets` lifted to an instance's node labels.

    Nodes are indexed in graph insertion order (the canonical order used
    throughout the repo), so the enumeration order — and therefore any
    first-strict-improvement witness chosen from it — is reproducible.
    """
    nodes = list(instance.graph.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    adjacency: List[List[int]] = [[] for _ in nodes]
    for _eid, u, v in instance.graph.edges():
        adjacency[index[u]].append(index[v])
        adjacency[index[v]].append(index[u])
    for combo in connected_subsets(adjacency, min_size=min_size):
        yield tuple(nodes[i] for i in combo)
