"""Whole-program effect, determinism, and concurrency analyzer.

The per-file linter (:mod:`repro.checks.lints`) flags nondeterministic
*sites*; the hashseed battery replays a handful of pipelines under
different ``PYTHONHASHSEED`` values and compares bytes.  Between the two
sits a blind spot this module closes: properties that hold only
*transitively*.  A solver registered ``randomized=False`` must not reach
``random.shuffle`` through four layers of helpers; a coroutine must not
reach ``sqlite3.connect`` through an innocent-looking ``self.store``
method.  The analyzer proves such properties over the project call
graph instead of sampling them at runtime.

Effect lattice
--------------

Every function gets a set of *effects*, the union of its intrinsic
effects and those of everything it (transitively) calls:

========== ===========================================================
``random``     draws from an unseeded entropy source (``random.*``
               module-level calls, ``os.urandom``, ``secrets``,
               ``uuid.uuid4``)
``clock``      reads wall/monotonic time (``time.time``,
               ``datetime.now``, ``perf_counter``, ...)
``io``         touches files, sockets, or databases (``open``,
               ``socket``, ``sqlite3``, ``subprocess``, ``pathlib``
               I/O methods)
``blocking``   waits: ``time.sleep``, ``Executor.shutdown(wait=True)``
``hash-order`` iterates a raw set/frozenset in an order-sensitive
               position (seeded from the linter's site analysis)
``state``      mutates non-local state (attribute/subscript stores,
               ``global``/``nonlocal`` rebinding)
========== ===========================================================

The report classifies each function from its closure: ``random`` or
``hash-order`` → **nondeterministic**; else ``clock`` → **clock**; else
``io``/``blocking`` → **io**; else ``state`` → **deterministic-stateful**;
else **pure**.

Rules
-----

``flow-solver-nondet``
    A ``@register_solver(randomized=False)`` entry transitively reaches
    ``random`` or ``hash-order``.
``flow-solver-clock``
    Any registered solver transitively reaches a clock read.
``flow-plan-clock``
    A ``core``/``graphs`` function reachable from ``repro.plan(...)``
    reads the clock directly.
``flow-async-blocking``
    An ``async def`` calls a blocking/IO function synchronously (not
    ``await``-ed, not offloaded via ``run_in_executor``/``to_thread``).
``flow-async-unawaited``
    A coroutine function is called as a bare statement — the coroutine
    is created and dropped, the body never runs.
``flow-async-orphan-task``
    ``create_task``/``ensure_future`` whose result is discarded; the
    event loop holds only a weak reference, so the task can be
    garbage-collected mid-flight.
``flow-async-shared-write``
    An attribute written by a coroutine outside any ``async with``
    lock is also touched by a method the same class dispatches to a
    thread pool.
``flow-pool-boundary``
    A lambda, nested function, or bound method is submitted to a
    ``ProcessPoolExecutor`` — unpicklable under the ``spawn`` start
    method, and a bound method would drag shared mutable state across
    the process boundary.

Suppression mirrors the linter: ``# repro: allow-flow-async-blocking``
(trailing or standalone-above).  Accepted findings that cannot carry an
inline comment live in ``flow_baseline.json`` next to this module; every
entry needs a written ``reason`` and stale entries fail the gate.

The JSON report is byte-deterministic: sorted findings, sorted keys,
relative paths, no timestamps — it is replayed across ``PYTHONHASHSEED``
values by the hashseed battery.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.checks.astwalk import (
    collect_symbols,
    iter_python_files,
    parse_file,
    parse_suppressions,
)
from repro.checks.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_call_graph,
)
from repro.checks.lints import default_root, order_sensitive_findings

#: rule id -> one-line description (the full catalog lives in docs/checks.md).
FLOW_RULES: Dict[str, str] = {
    "flow-solver-nondet": "randomized=False solver transitively reaches random/hash-order",
    "flow-solver-clock": "registered solver transitively reaches a clock read",
    "flow-plan-clock": "core/graphs function reachable from repro.plan reads the clock",
    "flow-async-blocking": "blocking/IO call inside async def without executor offload",
    "flow-async-unawaited": "coroutine called as a bare statement (never awaited)",
    "flow-async-orphan-task": "create_task/ensure_future result discarded (task may be GC'd)",
    "flow-async-shared-write": "unlocked coroutine write to state shared with a pool thread",
    "flow-pool-boundary": "unpicklable callable submitted across the ProcessPool boundary",
}

#: Baseline shipped with the package (for the default analysis root).
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "flow_baseline.json"

REPORT_VERSION = 1

# ----------------------------------------------------------------------
# effect sinks
# ----------------------------------------------------------------------

RANDOM, CLOCK, IO, BLOCKING, HASH_ORDER, STATE = (
    "random", "clock", "io", "blocking", "hash-order", "state",
)

#: exact external dotted name -> effects
_SINK_EXACT: Dict[str, FrozenSet[str]] = {
    "os.urandom": frozenset({RANDOM}),
    "uuid.uuid4": frozenset({RANDOM}),
    "uuid.uuid1": frozenset({RANDOM, CLOCK}),
    "time.time": frozenset({CLOCK}),
    "time.time_ns": frozenset({CLOCK}),
    "time.monotonic": frozenset({CLOCK}),
    "time.monotonic_ns": frozenset({CLOCK}),
    "time.perf_counter": frozenset({CLOCK}),
    "time.perf_counter_ns": frozenset({CLOCK}),
    "time.process_time": frozenset({CLOCK}),
    "time.process_time_ns": frozenset({CLOCK}),
    "datetime.datetime.now": frozenset({CLOCK}),
    "datetime.datetime.utcnow": frozenset({CLOCK}),
    "datetime.datetime.today": frozenset({CLOCK}),
    "datetime.date.today": frozenset({CLOCK}),
    "time.sleep": frozenset({BLOCKING}),
    "builtins.open": frozenset({IO}),
    "builtins.input": frozenset({IO, BLOCKING}),
    "sqlite3.connect": frozenset({IO}),
    "os.makedirs": frozenset({IO}),
    "os.mkdir": frozenset({IO}),
    "os.remove": frozenset({IO}),
    "os.unlink": frozenset({IO}),
    "os.rename": frozenset({IO}),
    "os.replace": frozenset({IO}),
    "os.rmdir": frozenset({IO}),
    "os.listdir": frozenset({IO}),
    "os.scandir": frozenset({IO}),
    "os.stat": frozenset({IO}),
    "os.fsync": frozenset({IO}),
    "concurrent.futures.ThreadPoolExecutor.shutdown": frozenset({BLOCKING}),
    "concurrent.futures.ProcessPoolExecutor.shutdown": frozenset({BLOCKING}),
    "concurrent.futures.Future.result": frozenset({BLOCKING}),
}

#: dotted-prefix -> effects (matched on ``name == p or name.startswith(p + '.')``)
_SINK_PREFIX: Dict[str, FrozenSet[str]] = {
    "socket": frozenset({IO}),
    "shutil": frozenset({IO}),
    "subprocess": frozenset({IO, BLOCKING}),
    "secrets": frozenset({RANDOM}),
    "sqlite3.Connection": frozenset({IO}),
    "sqlite3.Cursor": frozenset({IO}),
    "pathlib.Path": frozenset({IO}),
    "http.client": frozenset({IO}),
    "urllib.request": frozenset({IO}),
}

#: ``pathlib.Path`` methods that are pure path algebra, not filesystem I/O.
_PATH_PURE = frozenset({
    "joinpath", "with_suffix", "with_name", "with_stem", "as_posix", "as_uri",
    "is_absolute", "relative_to", "name", "stem", "suffix", "parent", "parts",
})

#: ``random`` module attributes that do NOT hit the global unseeded RNG.
_RANDOM_EXEMPT = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: attribute names that dispatch a callable reference onto an executor.
_EXECUTOR_DISPATCH = frozenset({"run_in_executor", "to_thread"})

#: attribute names that create asyncio tasks.
_TASK_FACTORIES = frozenset({"create_task", "ensure_future"})


def sink_effects(dotted: str) -> FrozenSet[str]:
    """Effects of one external callee, or the empty set."""
    if dotted.startswith("random."):
        leaf = dotted.split(".", 1)[1]
        if "." not in leaf and leaf not in _RANDOM_EXEMPT:
            return frozenset({RANDOM})
        return frozenset()
    exact = _SINK_EXACT.get(dotted)
    if exact is not None:
        return exact
    for prefix, effects in _SINK_PREFIX.items():
        if dotted == prefix or dotted.startswith(prefix + "."):
            if prefix == "pathlib.Path":
                leaf = dotted.rsplit(".", 1)[-1]
                if leaf in _PATH_PURE:
                    return frozenset()
            return effects
    return frozenset()


# ----------------------------------------------------------------------
# configuration / findings / report
# ----------------------------------------------------------------------

@dataclass
class FlowConfig:
    """What the analyzer checks and where the contracts apply."""

    #: top-level packages whose functions must be clock-free when
    #: reachable from a plan root.
    contract_packages: Tuple[str, ...] = ("core", "graphs")
    #: entry points whose closure the plan-clock contract covers
    #: (resolved through re-export chains).
    plan_roots: Tuple[str, ...] = ("pipeline.planner.plan",)
    #: decorator name that registers a solver contract.
    solver_decorator: str = "register_solver"


@dataclass(frozen=True, order=True)
class FlowFinding:
    """One analyzer finding, ordered for stable reporting."""

    rule: str
    path: str
    line: int
    col: int
    function: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: [{self.rule}] "
            f"{self.function}: {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
        }


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, matched by (rule, function)."""

    rule: str
    function: str
    reason: str


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing reason, ...)."""


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file; every entry must carry a written reason."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("entries"), list):
        raise BaselineError(f"{path}: expected an object with an 'entries' list")
    entries: List[BaselineEntry] = []
    for i, raw in enumerate(payload["entries"]):
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: entry {i} is not an object")
        rule = raw.get("rule")
        function = raw.get("function")
        reason = raw.get("reason")
        if not isinstance(rule, str) or rule not in FLOW_RULES:
            raise BaselineError(f"{path}: entry {i}: unknown rule {rule!r}")
        if not isinstance(function, str) or not function:
            raise BaselineError(f"{path}: entry {i}: missing 'function'")
        if not isinstance(reason, str) or not reason.strip():
            raise BaselineError(
                f"{path}: entry {i}: every baseline entry needs a written 'reason'"
            )
        entries.append(BaselineEntry(rule=rule, function=function, reason=reason))
    return entries


@dataclass
class FlowReport:
    """Outcome of one analyzer run; see :meth:`canonical_json`."""

    package: str
    files: int
    functions: int
    classification_counts: Dict[str, int] = field(default_factory=dict)
    solvers: List[Dict[str, object]] = field(default_factory=list)
    plan_roots: List[Dict[str, object]] = field(default_factory=list)
    findings: List[FlowFinding] = field(default_factory=list)
    suppressed: List[FlowFinding] = field(default_factory=list)
    baselined: List[Dict[str, str]] = field(default_factory=list)
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    #: function qualname -> sorted effect closure (API only, not in JSON).
    effects: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    classifications: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "ok": self.ok,
            "package": self.package,
            "files": self.files,
            "functions": self.functions,
            "classification_counts": dict(sorted(self.classification_counts.items())),
            "contracts": {
                "solvers": self.solvers,
                "plan_roots": self.plan_roots,
            },
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
            "baselined": sorted(
                self.baselined, key=lambda e: (e["rule"], e["function"])
            ),
            "stale_baseline": sorted(
                self.stale_baseline, key=lambda e: (e["rule"], e["function"])
            ),
        }

    def canonical_json(self) -> str:
        """Byte-deterministic serialization (the CI artifact format)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        lines = [f.render() for f in sorted(self.findings)]
        for entry in self.stale_baseline:
            lines.append(
                f"stale baseline entry: [{entry['rule']}] {entry['function']} "
                "(no matching finding; remove it)"
            )
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined, {self.functions} function(s) "
            f"in {self.files} file(s)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# effect inference
# ----------------------------------------------------------------------

def _intrinsic_effects(
    graph: CallGraph,
    hash_order_fns: Set[str],
) -> Dict[str, Set[str]]:
    """Per-function effects before propagation."""
    intrinsic: Dict[str, Set[str]] = {q: set() for q in graph.functions}
    for qualname in hash_order_fns:
        if qualname in intrinsic:
            intrinsic[qualname].add(HASH_ORDER)
    for qualname, info in graph.functions.items():
        effects = intrinsic[qualname]
        # state: non-local mutation visible to callers.
        for node in _own_nodes(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        effects.add(STATE)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                effects.add(STATE)
        # external sinks at call sites.
        for site in graph.calls.get(qualname, ()):
            if site.callee is not None and site.external:
                effects |= sink_effects(site.callee)
    return intrinsic


def _propagate(
    graph: CallGraph, intrinsic: Mapping[str, Set[str]]
) -> Dict[str, FrozenSet[str]]:
    """Transitive closure of effects over project call edges."""
    effects: Dict[str, Set[str]] = {q: set(v) for q, v in intrinsic.items()}
    # Pre-resolve each function's project callees (with override joins).
    callees: Dict[str, Tuple[str, ...]] = {}
    for qualname in graph.functions:
        targets: List[str] = []
        for site in graph.calls.get(qualname, ()):
            if site.callee is None or site.external:
                continue
            if site.callee in graph.classes:
                init = graph.resolve_method(site.callee, "__init__")
                if init is not None:
                    targets.append(init)
                continue
            for impl in graph.implementations(site.callee):
                if impl in effects:
                    targets.append(impl)
        callees[qualname] = tuple(dict.fromkeys(targets))
    changed = True
    while changed:
        changed = False
        for qualname in graph.functions:
            merged = effects[qualname]
            before = len(merged)
            for callee in callees[qualname]:
                merged |= effects[callee]
            if len(merged) != before:
                changed = True
    return {q: frozenset(v) for q, v in effects.items()}


def classify(effects: FrozenSet[str]) -> str:
    """Collapse an effect set to the report's five-way label."""
    if RANDOM in effects or HASH_ORDER in effects:
        return "nondeterministic"
    if CLOCK in effects:
        return "clock"
    if IO in effects or BLOCKING in effects:
        return "io"
    if STATE in effects:
        return "deterministic-stateful"
    return "pure"


def _blame_chain(
    graph: CallGraph,
    intrinsic: Mapping[str, Set[str]],
    effects: Mapping[str, FrozenSet[str]],
    start: str,
    wanted: Set[str],
) -> List[str]:
    """A deterministic call chain from ``start`` to an intrinsic carrier.

    The chain ends with the external sink itself when one exists
    (``... -> solvers.order -> random.shuffle``), so the finding names
    the offending call, not just the function containing it.
    """
    chain = [start]
    current = start
    seen = {start}
    for _ in range(len(graph.functions)):
        if intrinsic.get(current, set()) & wanted:
            for callee in sorted(
                {
                    site.callee
                    for site in graph.calls.get(current, ())
                    if site.external and site.callee is not None
                }
            ):
                if sink_effects(callee) & wanted:
                    chain.append(callee)
                    break
            return chain
        next_fn: Optional[str] = None
        sites = sorted(
            {
                impl
                for site in graph.calls.get(current, ())
                if site.callee is not None and not site.external
                for impl in (
                    graph.implementations(site.callee)
                    if site.callee not in graph.classes
                    else ([graph.resolve_method(site.callee, "__init__")] or [])
                )
                if impl is not None
            }
        )
        for callee in sites:
            if callee not in seen and effects.get(callee, frozenset()) & wanted:
                next_fn = callee
                break
        if next_fn is None:
            return chain
        chain.append(next_fn)
        seen.add(next_fn)
        current = next_fn
    return chain


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------

def _own_nodes(fn_node: ast.AST):
    """Nodes of a function body, excluding nested defs and lambdas."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _decorated_solver(
    info: FunctionInfo, decorator_name: str
) -> Optional[Tuple[str, bool]]:
    """(solver name, randomized) when ``info`` registers a solver."""
    for deco in info.decorators:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name != decorator_name:
            continue
        solver_name = info.name
        if deco.args and isinstance(deco.args[0], ast.Constant) and isinstance(
            deco.args[0].value, str
        ):
            solver_name = deco.args[0].value
        randomized = False
        for kw in deco.keywords:
            if kw.arg == "randomized" and isinstance(kw.value, ast.Constant):
                randomized = bool(kw.value.value)
        return solver_name, randomized
    return None


def _reachable(graph: CallGraph, roots: Sequence[str]) -> Set[str]:
    """Project functions reachable from ``roots`` over call edges."""
    seen: Set[str] = set()
    stack = [r for r in roots if r in graph.functions]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for site in graph.calls.get(current, ()):
            if site.callee is None or site.external:
                continue
            if site.callee in graph.classes:
                init = graph.resolve_method(site.callee, "__init__")
                if init is not None and init not in seen:
                    stack.append(init)
                continue
            for impl in graph.implementations(site.callee):
                if impl in graph.functions and impl not in seen:
                    stack.append(impl)
    return seen


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------

class _Analyzer:
    def __init__(self, root: Path, config: FlowConfig):
        self.root = root.resolve()
        self.config = config
        self.graph = build_call_graph(self.root)
        self.findings: List[FlowFinding] = []
        #: rel path -> {line -> suppressed rule names}
        self._suppressions: Dict[str, Dict[int, Set[str]]] = {}
        #: rel path -> sorted (start, end, qualname) spans, innermost wins.
        self._spans: Dict[str, List[Tuple[int, int, str]]] = {}
        self._trees: List[Tuple[Path, str, ast.Module]] = []
        for path in iter_python_files(self.root):
            rel = path.relative_to(self.root).as_posix()
            try:
                tree = parse_file(path)
            except SyntaxError:
                continue
            self._trees.append((path, rel, tree))
            self._suppressions[rel] = parse_suppressions(path.read_text())
        for info in self.graph.functions.values():
            end = getattr(info.node, "end_lineno", info.lineno) or info.lineno
            self._spans.setdefault(info.rel, []).append(
                (info.lineno, end, info.qualname)
            )
        for spans in self._spans.values():
            spans.sort()
        self.intrinsic = _intrinsic_effects(self.graph, self._hash_order_functions())
        self.effects = _propagate(self.graph, self.intrinsic)

    # -- attribution ---------------------------------------------------
    def _function_at(self, rel: str, line: int) -> Optional[str]:
        best: Optional[Tuple[int, str]] = None
        for start, end, qualname in self._spans.get(rel, ()):
            if start <= line <= end:
                size = end - start
                if best is None or size <= best[0]:
                    best = (size, qualname)
        return best[1] if best else None

    def _hash_order_functions(self) -> Set[str]:
        symbols = collect_symbols([(str(p), t) for p, _r, t in self._trees])
        carriers: Set[str] = set()
        for path, rel, tree in self._trees:
            for finding in order_sensitive_findings(path, tree, symbols):
                qualname = self._function_at(rel, finding.line)
                if qualname is not None:
                    carriers.add(qualname)
        return carriers

    # -- finding emission ----------------------------------------------
    def _emit(
        self, rule: str, info: FunctionInfo, message: str,
        line: Optional[int] = None, col: Optional[int] = None,
    ) -> None:
        self.findings.append(
            FlowFinding(
                rule=rule,
                path=info.rel,
                line=line if line is not None else info.lineno,
                col=col if col is not None else info.col,
                function=info.qualname,
                message=message,
            )
        )

    def _chain_text(self, start: str, wanted: Set[str]) -> str:
        chain = _blame_chain(
            self.graph, self.intrinsic, self.effects, start, wanted
        )
        return " -> ".join(chain)

    # -- contracts -----------------------------------------------------
    def check_solver_contracts(self) -> List[Dict[str, object]]:
        solvers: List[Dict[str, object]] = []
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            contract = _decorated_solver(info, self.config.solver_decorator)
            if contract is None:
                continue
            solver_name, randomized = contract
            closure = self.effects.get(qualname, frozenset())
            status = "ok"
            if not randomized and (RANDOM in closure or HASH_ORDER in closure):
                status = "violated"
                wanted = {RANDOM, HASH_ORDER}
                self._emit(
                    "flow-solver-nondet", info,
                    f"solver '{solver_name}' is registered randomized=False but "
                    f"reaches nondeterminism: {self._chain_text(qualname, wanted)}",
                )
            if CLOCK in closure:
                status = "violated"
                self._emit(
                    "flow-solver-clock", info,
                    f"solver '{solver_name}' reaches a clock read: "
                    f"{self._chain_text(qualname, {CLOCK})}",
                )
            solvers.append(
                {
                    "solver": solver_name,
                    "function": qualname,
                    "randomized": randomized,
                    "status": status,
                }
            )
        return solvers

    def check_plan_clock(self) -> List[Dict[str, object]]:
        summaries: List[Dict[str, object]] = []
        for raw_root in self.config.plan_roots:
            resolved = self.graph.resolve_target(raw_root)
            if resolved not in self.graph.functions:
                summaries.append(
                    {"root": raw_root, "checked": 0, "violations": 0,
                     "status": "unresolved"}
                )
                continue
            reachable = _reachable(self.graph, [resolved])
            checked = 0
            violations = 0
            for qualname in sorted(reachable):
                info = self.graph.functions[qualname]
                package = info.module.split(".", 1)[0] if info.module else ""
                if package not in self.config.contract_packages:
                    continue
                checked += 1
                if CLOCK in self.intrinsic.get(qualname, set()):
                    violations += 1
                    self._emit(
                        "flow-plan-clock", info,
                        f"reads the clock and is reachable from {raw_root}; "
                        "take timestamps at the boundary and pass them in",
                    )
            summaries.append(
                {"root": raw_root, "checked": checked, "violations": violations,
                 "status": "violated" if violations else "ok"}
            )
        return summaries

    # -- async rules ---------------------------------------------------
    def check_async_blocking(self) -> None:
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            if not info.is_async:
                continue
            for site in sorted(
                self.graph.calls.get(qualname, ()),
                key=lambda s: (s.lineno, s.col),
            ):
                if site.awaited or site.callee is None:
                    continue
                if site.external:
                    effects = sink_effects(site.callee)
                    blame = site.callee
                else:
                    callee_info = self.graph.functions.get(site.callee)
                    if callee_info is None or callee_info.is_async:
                        continue  # coroutine creation: flow-async-unawaited's job
                    effects = frozenset().union(
                        *(
                            self.effects.get(impl, frozenset())
                            for impl in self.graph.implementations(site.callee)
                        )
                    )
                    blame = self._chain_text(site.callee, {IO, BLOCKING})
                if effects & {IO, BLOCKING}:
                    self._emit(
                        "flow-async-blocking", info,
                        f"blocking call on the event loop: {blame}; offload via "
                        "run_in_executor/asyncio.to_thread or await an async API",
                        line=site.lineno, col=site.col,
                    )

    def check_async_unawaited(self) -> None:
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            for node in _own_nodes(info.node):
                if not isinstance(node, ast.Expr) or not isinstance(
                    node.value, ast.Call
                ):
                    continue
                site = self._site_for(qualname, node.value)
                if site is None or site.callee is None or site.external:
                    continue
                callee_info = self.graph.functions.get(site.callee)
                if callee_info is None or not callee_info.is_async:
                    continue
                if site.awaited:
                    continue
                self._emit(
                    "flow-async-unawaited", info,
                    f"coroutine {site.callee}(...) is created but never awaited; "
                    "its body will not run",
                    line=site.lineno, col=site.col,
                )

    def check_async_orphan_tasks(self) -> None:
        for _path, rel, tree in self._trees:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                attr = (
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else None
                )
                if attr not in _TASK_FACTORIES:
                    continue
                parent = parents.get(node)
                orphaned = isinstance(parent, ast.Expr) or isinstance(
                    parent, ast.Lambda
                )
                if isinstance(parent, ast.Await):
                    orphaned = False
                if not orphaned:
                    continue
                qualname = self._function_at(rel, node.lineno)
                if qualname is None:
                    continue
                info = self.graph.functions[qualname]
                self._emit(
                    "flow-async-orphan-task", info,
                    f"{attr}(...) result is discarded; the loop keeps only a "
                    "weak reference, so the task can be garbage-collected — "
                    "retain the handle on an attribute or collection",
                    line=node.lineno, col=node.col_offset,
                )

    def check_async_shared_writes(self) -> None:
        for class_qual in sorted(self.graph.classes):
            cls = self.graph.classes[class_qual]
            thread_methods = self._thread_dispatched_methods(class_qual)
            if not thread_methods:
                continue
            thread_touched: Set[str] = set()
            for method_qual in thread_methods:
                method = self.graph.functions.get(method_qual)
                if method is None:
                    continue
                for node in _own_nodes(method.node):
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    ):
                        thread_touched.add(node.attr)
            if not thread_touched:
                continue
            for method_name in sorted(cls.methods):
                method_qual = cls.methods[method_name]
                info = self.graph.functions.get(method_qual)
                if info is None or not info.is_async:
                    continue
                for attr, node in self._unlocked_self_writes(info):
                    if attr in thread_touched and method_qual not in thread_methods:
                        self._emit(
                            "flow-async-shared-write", info,
                            f"writes self.{attr} outside an asyncio.Lock while "
                            f"the attribute is also touched by a thread-pool "
                            f"method of {class_qual}",
                            line=node.lineno, col=node.col_offset,
                        )

    def _thread_dispatched_methods(self, class_qual: str) -> Set[str]:
        """Methods of a class that get handed to executor threads."""
        cls = self.graph.classes[class_qual]
        dispatched: Set[str] = set()
        for method_qual in cls.methods.values():
            for site in self.graph.calls.get(method_qual, ()):
                if site.node is None or site.attr not in (
                    _EXECUTOR_DISPATCH | {"submit"}
                ):
                    continue
                if site.attr == "submit" and not (
                    site.callee is not None
                    and site.callee.startswith("concurrent.futures.")
                ):
                    continue
                arg_index = 1 if site.attr == "run_in_executor" else 0
                if len(site.node.args) <= arg_index:
                    continue
                target = site.node.args[arg_index]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    resolved = self.graph.resolve_method(class_qual, target.attr)
                    if resolved is not None:
                        dispatched.add(resolved)
        return dispatched

    def _unlocked_self_writes(self, info: FunctionInfo):
        """(attr, node) for ``self.attr`` stores outside any ``async with``."""
        protected: Set[int] = set()
        for node in _own_nodes(info.node):
            if isinstance(node, ast.AsyncWith):
                for inner in ast.walk(node):
                    protected.add(id(inner))
        for node in _own_nodes(info.node):
            if id(node) in protected:
                continue
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    yield base.attr, node

    # -- pool boundary -------------------------------------------------
    def check_pool_boundary(self) -> None:
        pool_calls = {
            "concurrent.futures.ProcessPoolExecutor.submit",
            "concurrent.futures.ProcessPoolExecutor.map",
        }
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            for site in sorted(
                self.graph.calls.get(qualname, ()),
                key=lambda s: (s.lineno, s.col),
            ):
                if site.callee not in pool_calls or site.node is None:
                    continue
                if not site.node.args:
                    continue
                target = site.node.args[0]
                problem: Optional[str] = None
                if isinstance(target, ast.Lambda):
                    problem = "a lambda is not picklable under spawn"
                elif isinstance(target, ast.Attribute):
                    problem = (
                        "a bound method drags its instance (and any shared "
                        "mutable state) across the process boundary"
                    )
                elif isinstance(target, ast.Name):
                    resolved = self._resolve_reference(qualname, target.id)
                    if resolved is not None:
                        ref = self.graph.functions.get(resolved)
                        if ref is not None and ref.nested:
                            problem = (
                                f"nested function {resolved} is not picklable "
                                "under spawn; hoist it to module level"
                            )
                if problem is not None:
                    self._emit(
                        "flow-pool-boundary", info,
                        f"{site.attr}() across the ProcessPool boundary: {problem}",
                        line=site.lineno, col=site.col,
                    )

    def _resolve_reference(self, caller: str, name: str) -> Optional[str]:
        """Resolve a bare-name callable *reference* (not a call)."""
        info = self.graph.functions[caller]
        candidates = [f"{caller}.{name}"]
        if info.module:
            candidates.append(f"{info.module}.{name}")
        else:
            candidates.append(name)
        for candidate in candidates:
            if candidate in self.graph.functions:
                return candidate
        imports = self.graph.module_imports.get(info.module, {})
        if name in imports:
            resolved = self.graph.resolve_target(imports[name])
            if resolved in self.graph.functions:
                return resolved
        return None

    def _site_for(self, caller: str, node: ast.Call) -> Optional[CallSite]:
        for site in self.graph.calls.get(caller, ()):
            if site.node is node:
                return site
        return None

    # -- driver --------------------------------------------------------
    def run(self, baseline: Sequence[BaselineEntry]) -> FlowReport:
        solvers = self.check_solver_contracts()
        plan_roots = self.check_plan_clock()
        self.check_async_blocking()
        self.check_async_unawaited()
        self.check_async_orphan_tasks()
        self.check_async_shared_writes()
        self.check_pool_boundary()

        active: List[FlowFinding] = []
        suppressed: List[FlowFinding] = []
        for finding in self.findings:
            rules = self._suppressions.get(finding.path, {}).get(finding.line, ())
            if finding.rule in rules:
                suppressed.append(finding)
            else:
                active.append(finding)

        matched: List[Dict[str, str]] = []
        remaining: List[FlowFinding] = []
        by_key = {(e.rule, e.function): e for e in baseline}
        used: Set[Tuple[str, str]] = set()
        for finding in active:
            key = (finding.rule, finding.function)
            entry = by_key.get(key)
            if entry is not None:
                used.add(key)
                matched.append(
                    {"rule": entry.rule, "function": entry.function,
                     "reason": entry.reason}
                )
            else:
                remaining.append(finding)
        stale = [
            {"rule": e.rule, "function": e.function, "reason": e.reason}
            for e in baseline
            if (e.rule, e.function) not in used
        ]

        classifications = {
            q: classify(self.effects[q]) for q in sorted(self.graph.functions)
        }
        counts: Dict[str, int] = {}
        for label in classifications.values():
            counts[label] = counts.get(label, 0) + 1
        return FlowReport(
            package=self.graph.package,
            files=len(self.graph.modules),
            functions=len(self.graph.functions),
            classification_counts=counts,
            solvers=solvers,
            plan_roots=plan_roots,
            findings=sorted(remaining),
            suppressed=sorted(suppressed),
            baselined=matched,
            stale_baseline=stale,
            effects={q: tuple(sorted(v)) for q, v in sorted(self.effects.items())},
            classifications=classifications,
        )


def analyze_tree(
    root: Optional[Path] = None,
    config: Optional[FlowConfig] = None,
    baseline_path: Optional[Path] = None,
) -> FlowReport:
    """Run the flow analyzer over a package tree.

    ``root`` defaults to the installed ``repro`` package; in that case
    the shipped baseline (``flow_baseline.json``) applies unless
    ``baseline_path`` overrides it.  For explicit roots no baseline is
    loaded by default — synthetic test trees start clean.
    """
    resolved_root = (root or default_root()).resolve()
    if baseline_path is None and root is None and DEFAULT_BASELINE_PATH.exists():
        baseline_path = DEFAULT_BASELINE_PATH
    baseline: List[BaselineEntry] = []
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
    analyzer = _Analyzer(resolved_root, config or FlowConfig())
    return analyzer.run(baseline)
