"""AST infrastructure shared by the determinism lints.

The linter (:mod:`repro.checks.lints`) needs three capabilities that
plain ``ast.walk`` does not provide:

* **suppression parsing** — the ``# repro: allow-<rule>`` inline syntax
  that downgrades a finding into an acknowledged exception;
* **set-typedness inference** — a conservative, flow-insensitive
  analysis that decides whether an expression evaluates to a raw
  ``set``/``frozenset`` (whose iteration order depends on
  ``PYTHONHASHSEED`` for str-keyed contents);
* **a cross-file symbol table** — return annotations are harvested from
  *every* file under the linted root first, so ``graph.neighbors(v)``
  is known to be set-typed at a call site in a different module.

The inference is deliberately heuristic: it trades soundness for a
near-zero false-positive rate on this codebase, and every residual
false positive is suppressible with a one-line justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Names that denote set types in annotations (builtins and typing).
SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

#: Method names that (on a set receiver) return a new set.  Treated as
#: set-returning regardless of receiver type — the collision risk with
#: non-set APIs is negligible in practice and suppressible otherwise.
SET_METHOD_NAMES = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Tuple type names recognized when unpacking annotated returns.
_TUPLE_TYPE_NAMES = frozenset({"tuple", "Tuple"})

_SUPPRESS_MARKER = re.compile(r"#\s*repro:\s*(.*)$")
_SUPPRESS_RULE = re.compile(r"allow-([a-z][a-z0-9-]*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One linter finding, ordered for stable reporting."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number (1-based) to the rule names suppressed there.

    Grammar: ``# repro: allow-<rule>[, allow-<rule> ...]``.  A trailing
    comment suppresses its own line; a standalone comment line (nothing
    but the comment) also suppresses the following line, for statements
    too long to carry a trailing comment.
    """
    suppressions: Dict[int, Set[str]] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_MARKER.search(raw)
        if not match:
            continue
        rules = set(_SUPPRESS_RULE.findall(match.group(1)))
        if not rules:
            continue
        suppressions.setdefault(lineno, set()).update(rules)
        if raw.split("#", 1)[0].strip() == "":  # standalone comment line
            suppressions.setdefault(lineno + 1, set()).update(rules)
    return suppressions


# ----------------------------------------------------------------------
# annotation analysis
# ----------------------------------------------------------------------

def _annotation_ast(node: Optional[ast.expr]) -> Optional[ast.expr]:
    """Resolve string ("forward reference") annotations to their AST."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return None
        return parsed.body
    return node


def annotation_is_set(node: Optional[ast.expr]) -> bool:
    """True when the annotation denotes a set type (``Set[...]`` etc.)."""
    node = _annotation_ast(node)
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in SET_TYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in SET_TYPE_NAMES
    if isinstance(node, ast.Subscript):
        return annotation_is_set(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: Set[int] | None.
        return annotation_is_set(node.left) or annotation_is_set(node.right)
    return False


def annotation_tuple_mask(node: Optional[ast.expr]) -> Optional[Tuple[bool, ...]]:
    """For ``Tuple[A, B, ...]`` annotations, per-element set-typedness.

    Returns None when the annotation is not a fixed-arity tuple.
    """
    node = _annotation_ast(node)
    if not isinstance(node, ast.Subscript):
        return None
    base = node.value
    base_name = (
        base.id if isinstance(base, ast.Name)
        else base.attr if isinstance(base, ast.Attribute)
        else None
    )
    if base_name not in _TUPLE_TYPE_NAMES:
        return None
    elts = node.slice.elts if isinstance(node.slice, ast.Tuple) else None
    if elts is None:
        return None
    if any(isinstance(e, ast.Constant) and e.value is Ellipsis for e in elts):
        return None
    return tuple(annotation_is_set(e) for e in elts)


# ----------------------------------------------------------------------
# cross-file symbol table
# ----------------------------------------------------------------------

@dataclass
class SymbolTable:
    """Names whose call/attribute use is known set-typed.

    Matching is by *name only* (functions and methods alike): precise
    enough for a lint, and wrong matches are suppressible.
    """

    set_returning: Set[str] = field(default_factory=set)
    tuple_returning: Dict[str, Tuple[bool, ...]] = field(default_factory=dict)
    set_attributes: Set[str] = field(default_factory=set)


def collect_symbols(trees: Sequence[Tuple[str, ast.Module]]) -> SymbolTable:
    """Pass 1: harvest set-returning callables and set-typed attributes.

    A name annotated set-typed in one place but non-set elsewhere (e.g.
    an ``nodes: Set[Node]`` dataclass field vs. a ``nodes`` property
    returning ``List[Node]``) is *ambiguous*; ambiguous names are
    dropped entirely — a missed finding beats a false positive here.
    """
    table = SymbolTable()
    nonset_names: Set[str] = set()
    for _path, tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if annotation_is_set(node.returns):
                    table.set_returning.add(node.name)
                elif node.returns is not None:
                    nonset_names.add(node.name)
                mask = annotation_tuple_mask(node.returns)
                if mask is not None and any(mask):
                    table.tuple_returning[node.name] = mask
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                name = (
                    target.attr if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name)
                    else None
                )
                if name is None:
                    continue
                if annotation_is_set(node.annotation):
                    table.set_attributes.add(name)
                else:
                    nonset_names.add(name)
    table.set_returning -= nonset_names
    table.set_attributes -= nonset_names
    return table


# ----------------------------------------------------------------------
# set-typedness inference
# ----------------------------------------------------------------------

class SetTypeInference:
    """Flow-insensitive set-typedness for one lexical scope.

    ``known`` holds local names bound to set-typed values; attribute
    reads consult the cross-file :class:`SymbolTable`.
    """

    def __init__(self, symbols: SymbolTable, known: Optional[Set[str]] = None):
        self.symbols = symbols
        self.known: Set[str] = set(known or ())

    def child(self) -> "SetTypeInference":
        """A nested scope seeded with this scope's names (closure reads)."""
        return SetTypeInference(self.symbols, set(self.known))

    # -- scope seeding -------------------------------------------------
    def seed_from_args(self, args: ast.arguments) -> None:
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            if annotation_is_set(arg.annotation):
                self.known.add(arg.arg)

    def seed_from_body(self, body: Sequence[ast.stmt]) -> None:
        """Fixpoint over assignments (3 rounds cover chained aliases)."""
        statements = list(_iter_scope_statements(body))
        for _ in range(3):
            before = len(self.known)
            for stmt in statements:
                self._seed_statement(stmt)
            if len(self.known) == before:
                break

    def _seed_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._seed_target(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if annotation_is_set(stmt.annotation):
                self.known.add(stmt.target.id)
            elif stmt.value is not None and self.is_set(stmt.value):
                self.known.add(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if self.is_set(stmt.value) and isinstance(stmt.op, (ast.BitOr, ast.BitAnd, ast.BitXor)):
                self.known.add(stmt.target.id)

    def _seed_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if self.is_set(value):
                self.known.add(target.id)
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Call):
            mask = self._call_tuple_mask(value)
            if mask is not None and len(mask) == len(target.elts):
                for element, is_set in zip(target.elts, mask):
                    if is_set and isinstance(element, ast.Name):
                        self.known.add(element.id)

    def _call_tuple_mask(self, call: ast.Call) -> Optional[Tuple[bool, ...]]:
        name = _callable_name(call.func)
        if name is None:
            return None
        return self.symbols.tuple_returning.get(name)

    # -- the predicate -------------------------------------------------
    def is_set(self, node: ast.expr) -> bool:
        """Conservatively: does ``node`` evaluate to a raw set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.known
        if isinstance(node, ast.Attribute):
            return node.attr in self.symbols.set_attributes
        if isinstance(node, ast.Call):
            name = _callable_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if name in SET_METHOD_NAMES and isinstance(node.func, ast.Attribute):
                return True
            if name is not None and name in self.symbols.set_returning:
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) or self.is_set(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self.is_set(node.value)
        return False


def _callable_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _iter_scope_statements(body: Sequence[ast.stmt]):
    """All statements of a scope, not descending into nested defs."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.excepthandler):
                for grand in ast.iter_child_nodes(child):
                    if isinstance(grand, ast.stmt):
                        stack.append(grand)


def parse_file(path: Path) -> ast.Module:
    """Parse a python file to an AST (syntax errors propagate)."""
    return ast.parse(path.read_text(), filename=str(path))


def iter_python_files(root: Path) -> List[Path]:
    """All ``*.py`` files under ``root``, sorted for stable output."""
    return sorted(p for p in root.rglob("*.py") if p.is_file())
