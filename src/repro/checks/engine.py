"""Differential engine-equivalence harness (object vs array backend).

The array backend (:mod:`repro.graphs.array_backend` and the compact
kernels registered in :mod:`repro.pipeline.registry`) claims to be
**byte-identical** to the reference object engine — not "equally
valid", the *same bytes*: same rounds in the same order, same method
labels, same canonical fingerprints, same lower-bound certificates.
That claim is what lets the plan cache, the schedule fingerprints, and
the checkpoint/resume contract stay backend-agnostic.

This module proves the claim differentially instead of sampling it:
every instance in the generator corpus (all families: even-capacity,
bipartite, clique, hotspot, regular, mixed multi-component) is planned
twice — ``backend="object"`` and ``backend="array"`` — under multiple
seeds, and the harness requires

* identical round lists (compared element by element, order included),
* identical method labels,
* identical SHA-256 digests of the canonical schedule JSON,
* identical verified lower bounds and certificate JSON
  (:mod:`repro.checks.certify` re-verifies both sides independently).

Wired into ``repro-migrate check --engine`` and the CI
``engine-bench-smoke`` job; the cross-``PYTHONHASHSEED`` battery
(:mod:`repro.checks.hashseed`) additionally runs the comparison in
fresh interpreters under different hash seeds.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.checks.certify import certificate_to_json
from repro.core.problem import MigrationInstance
from repro.pipeline.planner import PlanResult, plan
from repro.workloads.generators import (
    bipartite_instance,
    clique_instance,
    hotspot_instance,
    multi_component_instance,
    random_instance,
    regular_instance,
)


@dataclass(frozen=True)
class EngineCase:
    """One (instance, method, seed) comparison between the backends."""

    name: str
    ok: bool
    rounds: int = 0
    digest: str = ""
    detail: str = ""


@dataclass(frozen=True)
class EngineReport:
    cases: Tuple[EngineCase, ...]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def render(self) -> str:
        lines = []
        for case in self.cases:
            status = "ok" if case.ok else "MISMATCH"
            suffix = (
                f" ({case.detail})"
                if case.detail and not case.ok
                else f" rounds={case.rounds} sha256={case.digest[:12]}"
                if case.ok
                else ""
            )
            lines.append(f"  {case.name}: {status}{suffix}")
        return "\n".join(lines)


def schedule_digest(rounds: Sequence[Sequence[int]]) -> str:
    """SHA-256 of the exact JSON form of a schedule's rounds.

    Deliberately *not* order-normalized: the equivalence contract is
    byte-identity, so the digest must see the rounds exactly as the
    engine emitted them, within-round order included.
    """
    blob = json.dumps([list(rnd) for rnd in rounds], separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: The default differential corpus: every generator family, chosen so
#: each registered compact kernel (even_optimal, bipartite_optimal,
#: general) and the object-only fallbacks all get exercised.  Kept
#: small enough to run in the CI smoke job; the factories are
#: deterministic, so the corpus is too.
DEFAULT_CORPUS: Tuple[Tuple[str, str, Callable[[], MigrationInstance]], ...] = (
    (
        "random/mixed-caps",
        "auto",
        lambda: random_instance(14, 80, capacities={1: 0.3, 2: 0.4, 4: 0.3}, seed=11),
    ),
    (
        "random/all-even",
        "auto",
        lambda: random_instance(12, 70, uniform_capacity=2, seed=5),
    ),
    (
        "random/general-forced",
        "general",
        lambda: random_instance(10, 60, capacities={1: 0.5, 3: 0.5}, seed=7),
    ),
    (
        "bipartite/disk-addition",
        "auto",
        lambda: bipartite_instance(6, 4, 50, old_capacity=1, new_capacity=3, seed=3),
    ),
    (
        "clique/figure-2",
        "auto",
        lambda: clique_instance(5, 4, capacity=1),
    ),
    (
        "hotspot/hub-drain",
        "auto",
        lambda: hotspot_instance(12, 2, 60, seed=9),
    ),
    (
        "regular/config-model",
        "auto",
        lambda: regular_instance(16, 6, capacity=2, seed=13),
    ),
    (
        "multi-component/mixed-parity",
        "auto",
        lambda: multi_component_instance(3, disks_per_component=6,
                                         items_per_component=25, seed=17),
    ),
)


def compare_backends(
    name: str,
    instance: MigrationInstance,
    method: str = "auto",
    seed: int = 0,
) -> EngineCase:
    """Plan ``instance`` on both backends and compare everything.

    Both plans run uncached and certified, so the comparison covers
    rounds, method labels, the canonical schedule digest, and the
    independently verified lower bound / certificate JSON.
    """
    obj = plan(instance, method=method, seed=seed, backend="object", certify=True)
    arr = plan(instance, method=method, seed=seed, backend="array", certify=True)
    problems = _diff_results(obj, arr)
    if problems:
        return EngineCase(name=name, ok=False, detail="; ".join(problems))
    return EngineCase(
        name=name,
        ok=True,
        rounds=obj.schedule.num_rounds,
        digest=schedule_digest(obj.schedule.rounds),
    )


def _diff_results(obj: PlanResult, arr: PlanResult) -> List[str]:
    problems: List[str] = []
    o_rounds = obj.schedule.rounds
    a_rounds = arr.schedule.rounds
    if o_rounds != a_rounds:
        problems.append(
            f"rounds differ: object={len(o_rounds)} array={len(a_rounds)}, "
            f"first divergence at {_first_round_divergence(o_rounds, a_rounds)}"
        )
    if obj.schedule.method != arr.schedule.method:
        problems.append(
            f"method labels differ: {obj.schedule.method!r} vs "
            f"{arr.schedule.method!r}"
        )
    o_digest = schedule_digest(obj.schedule.rounds)
    a_digest = schedule_digest(arr.schedule.rounds)
    if o_digest != a_digest:
        problems.append(f"schedule digests differ: {o_digest} vs {a_digest}")
    if obj.lower_bound != arr.lower_bound:
        problems.append(
            f"lower bounds differ: {obj.lower_bound} vs {arr.lower_bound}"
        )
    if obj.certified_optimal != arr.certified_optimal:
        problems.append(
            f"certified_optimal differs: {obj.certified_optimal} vs "
            f"{arr.certified_optimal}"
        )
    o_cert = (
        certificate_to_json(obj.certificate) if obj.certificate is not None else None
    )
    a_cert = (
        certificate_to_json(arr.certificate) if arr.certificate is not None else None
    )
    if o_cert != a_cert:
        problems.append("lower-bound certificates differ")
    if [c.method for c in obj.components] != [c.method for c in arr.components]:
        problems.append("per-component method attribution differs")
    return problems


def _first_round_divergence(
    a: List[List[int]], b: List[List[int]]
) -> str:
    for i in range(min(len(a), len(b))):
        if a[i] != b[i]:
            return f"round {i}"
    return "round count"


# ----------------------------------------------------------------------
# exact-vs-heuristic battery
# ----------------------------------------------------------------------

#: Small-instance corpus for the exact battery — every family again,
#: sized inside the exact solver's caps (≤ 16 items, ≤ 14 disks) so
#: each case has a *provable* optimum to compare the heuristic against.
EXACT_CORPUS: Tuple[Tuple[str, Callable[[], MigrationInstance]], ...] = (
    (
        "random/mixed-caps",
        lambda: random_instance(6, 14, capacities={1: 0.4, 2: 0.4, 3: 0.2}, seed=11),
    ),
    (
        "random/unit-caps",
        lambda: random_instance(7, 15, uniform_capacity=1, seed=5),
    ),
    (
        "random/all-even",
        lambda: random_instance(6, 16, uniform_capacity=2, seed=23),
    ),
    (
        "bipartite/disk-addition",
        lambda: bipartite_instance(4, 3, 14, old_capacity=1, new_capacity=2, seed=3),
    ),
    (
        "clique/figure-2",
        lambda: clique_instance(4, 2, capacity=1),
    ),
    (
        "hotspot/hub-drain",
        lambda: hotspot_instance(7, 2, 15, seed=9),
    ),
    (
        "regular/config-model",
        lambda: regular_instance(8, 4, capacity=2, seed=13),
    ),
)


def compare_exact_vs_heuristic(name: str, instance: MigrationInstance) -> EngineCase:
    """Sandwich the Theorem 5.1 heuristic between proof obligations.

    The exact branch-and-bound must satisfy ``verified LB ≤ exact ≤
    heuristic`` — the left inequality against the independently
    re-verified lower-bound certificate, the right against the general
    solver it uses as incumbent — and its optimality certificate must
    survive :func:`repro.checks.certify.verify_optimality_certificate`.
    The reported digest covers both schedules, so a regression in
    either solver's bytes shows up even when the round counts agree.
    """
    from repro.checks.certify import (
        make_certificate,
        verify_certificate,
        verify_optimality_certificate,
    )
    from repro.core.general import general_schedule
    from repro.exact.search import solve_exact

    res = solve_exact(instance)
    heuristic = general_schedule(instance, seed=0)
    lb = verify_certificate(instance, make_certificate(instance))
    problems: List[str] = []
    if res.value > heuristic.num_rounds:
        problems.append(
            f"exact {res.value} rounds exceeds heuristic {heuristic.num_rounds}"
        )
    if res.value < lb:
        problems.append(f"exact {res.value} rounds below verified LB {lb}")
    try:
        verify_optimality_certificate(
            instance, res.objective, res.schedule, res.certificate
        )
    except Exception as exc:  # CertificationError — report, don't abort the battery
        problems.append(f"optimality certificate rejected: {exc}")
    if problems:
        return EngineCase(name=name, ok=False, detail="; ".join(problems))
    digest = hashlib.sha256(
        (
            schedule_digest(res.schedule.rounds)
            + schedule_digest(heuristic.rounds)
        ).encode("utf-8")
    ).hexdigest()
    return EngineCase(name=name, ok=True, rounds=res.value, digest=digest)


def check_exact_vs_heuristic(
    corpus: Optional[Sequence[Tuple[str, Callable[[], MigrationInstance]]]] = None,
) -> EngineReport:
    """Run the exact-vs-heuristic battery over the small corpus."""
    cases = [
        compare_exact_vs_heuristic(f"exact-vs-heuristic/{name}", factory())
        for name, factory in (corpus or EXACT_CORPUS)
    ]
    return EngineReport(cases=tuple(cases))


def check_engine_equivalence(
    corpus: Optional[
        Sequence[Tuple[str, str, Callable[[], MigrationInstance]]]
    ] = None,
    seeds: Sequence[int] = (0, 1),
) -> EngineReport:
    """Run the full differential battery over the corpus.

    Every corpus entry is compared under every seed (seeds matter for
    the randomized general solver: the two backends must agree on every
    seed's schedule, not just one lucky draw).
    """
    cases: List[EngineCase] = []
    for name, method, factory in corpus or DEFAULT_CORPUS:
        for seed in seeds:
            cases.append(
                compare_backends(
                    f"{name}/seed{seed}", factory(), method=method, seed=seed
                )
            )
    return EngineReport(cases=tuple(cases))
