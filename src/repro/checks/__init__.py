"""repro.checks — independent correctness tooling for the migration stack.

Three pillars, one theme: *don't trust the solver, check it*.

* :mod:`repro.checks.lints` — a determinism linter (custom AST pass)
  that flags hash-order-dependent iteration, unseeded randomness, and
  wall-clock reads in schedule-producing modules.
* :mod:`repro.checks.flow` — a whole-program effect and concurrency
  analyzer over the project call graph (:mod:`repro.checks.callgraph`):
  proves solver-registry determinism contracts transitively, checks
  ``core``/``graphs`` clock-freedom from ``repro.plan(...)``, and flags
  asyncio misuse (blocking calls on the loop, orphaned tasks,
  unawaited coroutines) and ``ProcessPoolExecutor`` boundary hazards.
* :mod:`repro.checks.certify` — an independent schedule verifier and
  machine-checkable LB1/LB2 lower-bound certificates.
* :mod:`repro.checks.hashseed` — a cross-``PYTHONHASHSEED`` subprocess
  harness proving schedules, executor runs, and the flow report itself
  are process-independent.
* :mod:`repro.checks.engine` — a differential harness proving the flat
  CSR array backend byte-identical to the reference object engine
  (rounds, digests, certificates) across the generator corpus, plus
  the exact-vs-heuristic battery sandwiching the Theorem 5.1 solver
  between a verified lower bound and a verified optimum.

All of them are wired into ``repro-migrate check`` and the CI
``static-analysis`` job.
"""

from repro.checks.astwalk import Finding, parse_suppressions
from repro.checks.certify import (
    CertificationError,
    CertificationReport,
    LB1Witness,
    LB2Witness,
    LowerBoundCertificate,
    certificate_from_json,
    certificate_to_json,
    certify,
    make_certificate,
    verify_certificate,
    verify_optimality_certificate,
    verify_schedule,
)
from repro.checks.callgraph import CallGraph, build_call_graph
from repro.checks.engine import (
    EngineCase,
    EngineReport,
    check_engine_equivalence,
    check_exact_vs_heuristic,
    compare_backends,
    compare_exact_vs_heuristic,
)
from repro.checks.flow import (
    FLOW_RULES,
    FlowConfig,
    FlowFinding,
    FlowReport,
    analyze_tree,
    load_baseline,
)
from repro.checks.hashseed import (
    DeterminismError,
    DeterminismReport,
    check_determinism,
)
from repro.checks.lints import RULES, LintConfig, LintReport, lint_tree
from repro.checks.typegate import TypeGateReport, run_type_gate

__all__ = [
    "CallGraph",
    "FLOW_RULES",
    "FlowConfig",
    "FlowFinding",
    "FlowReport",
    "analyze_tree",
    "build_call_graph",
    "load_baseline",
    "CertificationError",
    "CertificationReport",
    "DeterminismError",
    "DeterminismReport",
    "EngineCase",
    "EngineReport",
    "Finding",
    "LB1Witness",
    "LB2Witness",
    "LintConfig",
    "LintReport",
    "LowerBoundCertificate",
    "RULES",
    "TypeGateReport",
    "certificate_from_json",
    "certificate_to_json",
    "certify",
    "check_determinism",
    "check_engine_equivalence",
    "check_exact_vs_heuristic",
    "compare_backends",
    "compare_exact_vs_heuristic",
    "lint_tree",
    "make_certificate",
    "parse_suppressions",
    "run_type_gate",
    "verify_certificate",
    "verify_optimality_certificate",
    "verify_schedule",
]
