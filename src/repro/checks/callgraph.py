"""Project-wide call-graph construction for the flow analyzer.

:mod:`repro.checks.lints` is deliberately *intra*-file: it flags a
nondeterministic pattern only where it syntactically occurs.  The flow
analyzer (:mod:`repro.checks.flow`) needs the complementary view — who
*calls* whom across the whole package — so that an effect introduced in
one module is charged to every function that transitively reaches it.

This module turns a package tree into that graph:

* **module discovery** — every ``*.py`` under the root becomes a module
  named relative to the package (``serve/server.py`` → ``serve.server``);
* **import resolution** — ``import x``, ``import x as y``, and
  ``from x import y as z`` all contribute to a per-module alias table;
  package re-exports (``from repro.pipeline.planner import plan`` in an
  ``__init__.py``) are followed transitively, so ``repro.plan`` resolves
  to its defining function;
* **function and class indexing** — top-level functions, nested
  functions, and methods each get a stable qualified name
  (``serve.server.PlanningServer.start``); classes record their bases,
  methods, and attribute types;
* **class attribution** — a method call ``obj.m(...)`` resolves through
  the receiver's inferred type: parameter annotations, ``self.attr``
  types harvested from ``__init__`` assignments and ``AnnAssign``
  declarations, local ``x = ClassName(...)`` constructor assignments,
  ``with ClassName(...) as x`` items, and return annotations of resolved
  calls.  As a last resort a method name defined by exactly *one*
  project class resolves there (unique-name attribution); ambiguous
  names stay unresolved — a missed edge beats a wrong edge.

Resolution is heuristic in the same spirit as the linter: conservative,
flow-insensitive, and tuned for a near-zero false-edge rate on this
codebase.  External callees (``random.shuffle``, ``sqlite3.connect``,
``concurrent.futures.ThreadPoolExecutor.shutdown``) are normalized to
dotted names so the effect engine can match them against sink tables.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.checks.astwalk import iter_python_files, parse_file

#: Names every python has; unresolved bare names fall back here.
_BUILTIN_NAMES = frozenset(dir(builtins))

#: Subscript heads that wrap a type without changing it for our purposes.
_OPTIONAL_HEADS = frozenset({"Optional"})
_UNION_HEADS = frozenset({"Union"})


@dataclass
class FunctionInfo:
    """One function, method, or nested function in the project."""

    qualname: str
    module: str
    path: str
    rel: str
    name: str
    lineno: int
    col: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    class_qual: Optional[str] = None  # enclosing class qualname, if a method
    nested: bool = False  # defined inside another function
    decorators: List[ast.expr] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One project class: bases, methods, inferred attribute types."""

    qualname: str
    module: str
    name: str
    bases: List[str] = field(default_factory=list)  # resolved qualnames/dotted
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> type


@dataclass(frozen=True)
class CallSite:
    """One resolved (or deliberately unresolved) call expression."""

    caller: str
    callee: Optional[str]  # project qualname or external dotted name
    external: bool  # callee names something outside the project
    attr: Optional[str]  # trailing attribute/name at the call site
    lineno: int
    col: int
    awaited: bool  # the call is directly under an ``await``
    node: ast.Call = field(compare=False, repr=False, default=None)  # type: ignore[assignment]


@dataclass
class CallGraph:
    """The whole-program graph the flow analyzer consumes."""

    package: str
    root: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    calls: Dict[str, List[CallSite]] = field(default_factory=dict)
    module_imports: Dict[str, Dict[str, str]] = field(default_factory=dict)
    modules: Dict[str, str] = field(default_factory=dict)  # module -> rel path
    subclasses: Dict[str, List[str]] = field(default_factory=dict)
    #: method name -> class qualnames defining it (for unique attribution).
    method_owners: Dict[str, List[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # resolution services
    # ------------------------------------------------------------------
    def resolve_target(self, target: str, _seen: Optional[Set[str]] = None) -> str:
        """Follow import/re-export chains until a definition or external.

        Returns a project function/class qualname when the chain lands
        on one, otherwise the (dotted) name unchanged — callers decide
        whether an unresolved name is an external sink or noise.
        """
        seen = _seen if _seen is not None else set()
        if target in seen:
            return target
        seen.add(target)
        if target in self.functions or target in self.classes:
            return target
        # Longest module prefix whose alias table knows the next leaf.
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            leaf = parts[cut]
            table = self.module_imports.get(mod)
            if table is not None and leaf in table:
                resolved = self.resolve_target(table[leaf], seen)
                rest = parts[cut + 1:]
                if rest:
                    return self.resolve_target(
                        resolved + "." + ".".join(rest), seen
                    )
                return resolved
        return target

    def resolve_method(self, class_qual: str, method: str) -> Optional[str]:
        """Look ``method`` up on ``class_qual`` and its project bases."""
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def implementations(self, fn_qualname: str) -> Tuple[str, ...]:
        """All project overrides of a method, including the method itself.

        Calling ``Base.m`` through a ``Base``-typed receiver may execute
        any subclass override, so effects join over all of them.  For a
        plain function this is just ``(fn,)``.
        """
        info = self.functions.get(fn_qualname)
        if info is None or info.class_qual is None:
            return (fn_qualname,)
        found = [fn_qualname]
        stack = list(self.subclasses.get(info.class_qual, ()))
        seen: Set[str] = set()
        while stack:
            sub = stack.pop(0)
            if sub in seen:
                continue
            seen.add(sub)
            sub_info = self.classes.get(sub)
            if sub_info is not None and info.name in sub_info.methods:
                found.append(sub_info.methods[info.name])
            stack.extend(self.subclasses.get(sub, ()))
        return tuple(dict.fromkeys(found))


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

def module_name_for(rel: Path) -> str:
    """``serve/server.py`` → ``serve.server``; ``__init__.py`` → package."""
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string when the chain is Names all the way down."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ModuleCollector(ast.NodeVisitor):
    """Pass 1 over one module: imports, functions, classes, attr types."""

    def __init__(self, graph: CallGraph, module: str, path: Path, rel: str):
        self.graph = graph
        self.module = module
        self.path = path
        self.rel = rel
        self.imports: Dict[str, str] = {}
        #: (class qualname stack, function nesting depth) while walking.
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[str] = []
        #: attr -> type candidates (conflicts drop the attr).
        self._attr_conflicts: Set[Tuple[str, str]] = set()

    # -- naming --------------------------------------------------------
    def _qual(self, name: str) -> str:
        parts = []
        if self.module:
            parts.append(self.module)
        if self._class_stack:
            parts.append(
                self._class_stack[-1].qualname[len(self.module) + 1 if self.module else 0:]
            )
        parts.extend(n.rsplit(".", 1)[-1] for n in self._func_stack)
        parts.append(name)
        return ".".join(parts)

    def _internalize(self, dotted: str) -> str:
        package = self.graph.package
        if dotted == package:
            return ""
        if dotted.startswith(package + "."):
            return dotted[len(package) + 1:]
        return dotted

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.imports[local] = self._internalize(target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # Relative import: resolve against this module's package.
            base_parts = self.module.split(".") if self.module else []
            # A package's (__init__.py) level-1 base is the package
            # itself; a plain module's level-1 base is its containing
            # package, so the module's own leaf must be stripped too.
            is_package = Path(self.rel).name == "__init__.py"
            strip = node.level - 1 if is_package else node.level
            keep = len(base_parts) - strip
            prefix = ".".join(base_parts[:keep]) if keep > 0 else ""
            stem = (prefix + "." if prefix and node.module else prefix) + (node.module or "")
        else:
            stem = self._internalize(node.module or "")
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            target = (stem + "." if stem else "") + alias.name
            self.imports[local] = target

    # -- definitions ---------------------------------------------------
    def _register_function(
        self, node: ast.AST, name: str, is_async: bool
    ) -> None:
        qualname = self._qual(name)
        info = FunctionInfo(
            qualname=qualname,
            module=self.module,
            path=str(self.path),
            rel=self.rel,
            name=name,
            lineno=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            node=node,
            is_async=is_async,
            class_qual=self._class_stack[-1].qualname if self._class_stack else None,
            nested=bool(self._func_stack),
            decorators=list(getattr(node, "decorator_list", [])),
        )
        self.graph.functions[qualname] = info
        if self._class_stack and not self._func_stack:
            self._class_stack[-1].methods[name] = qualname

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._register_function(node, node.name, is_async=False)
        self._walk_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._register_function(node, node.name, is_async=True)
        self._walk_function(node)

    def _walk_function(self, node: ast.AST) -> None:
        self._func_stack.append(getattr(node, "name", "<fn>"))
        # Methods' class context must not leak into nested defs' method
        # registration; only the function stack grows here.
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._func_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qual(node.name)
        info = ClassInfo(qualname=qualname, module=self.module, name=node.name)
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is not None:
                info.bases.append(dotted)  # resolved globally in pass 2
        self.graph.classes[qualname] = info
        self._class_stack.append(info)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._class_stack.pop()

    # -- attribute types -----------------------------------------------
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_attr_annotation(node.target, node.annotation)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._class_stack:
            type_name = self._value_type_name(node.value)
            if type_name is not None:
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._record_attr_type(target.attr, type_name)
        self.generic_visit(node)

    def _record_attr_annotation(self, target: ast.expr, annotation: ast.expr) -> None:
        if not self._class_stack:
            return
        name: Optional[str] = None
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            name = target.attr
        elif isinstance(target, ast.Name) and not self._func_stack:
            name = target.id  # class-body annotation
        if name is None:
            return
        type_name = self.annotation_type(annotation)
        if type_name is not None:
            self._record_attr_type(name, type_name)

    def _record_attr_type(self, attr: str, type_name: str) -> None:
        info = self._class_stack[-1]
        existing = info.attr_types.get(attr)
        if existing is not None and existing != type_name:
            self._attr_conflicts.add((info.qualname, attr))
            info.attr_types.pop(attr, None)
        elif (info.qualname, attr) not in self._attr_conflicts:
            info.attr_types[attr] = type_name

    def _value_type_name(self, value: ast.expr) -> Optional[str]:
        """Type of ``ClassName(...)`` constructor expressions."""
        if not isinstance(value, ast.Call):
            return None
        dotted = _dotted_name(value.func)
        if dotted is None:
            return None
        return self._resolve_type_name(dotted)

    def annotation_type(self, node: Optional[ast.expr]) -> Optional[str]:
        """The (single) concrete type an annotation denotes, if any."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _dotted_name(node)
            return self._resolve_type_name(dotted) if dotted else None
        if isinstance(node, ast.Subscript):
            head = _dotted_name(node.value)
            head_leaf = head.rsplit(".", 1)[-1] if head else None
            if head_leaf in _OPTIONAL_HEADS:
                return self.annotation_type(node.slice)
            if head_leaf in _UNION_HEADS and isinstance(node.slice, ast.Tuple):
                return self._single_type(node.slice.elts)
            return None  # containers: not a receiver type we track
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._single_type([node.left, node.right])
        return None

    def _single_type(self, elts: Sequence[ast.expr]) -> Optional[str]:
        candidates = set()
        for elt in elts:
            if isinstance(elt, ast.Constant) and elt.value is None:
                continue
            resolved = self.annotation_type(elt)
            if resolved is None:
                return None
            candidates.add(resolved)
        return candidates.pop() if len(candidates) == 1 else None

    def _resolve_type_name(self, dotted: str) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is not None:
            dotted = target + ("." + rest if rest else "")
        elif self.module and not rest:
            # A bare name may be a class in this module.
            local = (self.module + "." if self.module else "") + dotted
            if local in self.graph.classes:
                return local
        return dotted or None


class _CallCollector:
    """Pass 3 over one function: resolve every call expression."""

    #: with-as / assignment inference rounds (chained aliases).
    _ENV_ROUNDS = 2

    def __init__(self, graph: CallGraph, fn: FunctionInfo, imports: Dict[str, str]):
        self.graph = graph
        self.fn = fn
        self.imports = imports
        self.env: Dict[str, str] = {}  # local name -> type qualname
        self._build_env()

    # -- local type environment ----------------------------------------
    def _build_env(self) -> None:
        node = self.fn.node
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                type_name = self._annotation_type(arg.annotation)
                if type_name is not None:
                    self.env[arg.arg] = type_name
        body = getattr(node, "body", [])
        for _ in range(self._ENV_ROUNDS):
            for stmt in _iter_own_statements(body):
                self._seed_statement(stmt)

    def _seed_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                type_name = self._expr_type(stmt.value)
                if type_name is not None:
                    self.env[target.id] = type_name
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            type_name = self._annotation_type(stmt.annotation)
            if type_name is not None:
                self.env[stmt.target.id] = type_name
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    type_name = self._expr_type(item.context_expr)
                    if type_name is not None:
                        self.env[item.optional_vars.id] = type_name

    def _annotation_type(self, annotation: Optional[ast.expr]) -> Optional[str]:
        if annotation is None:
            return None
        collector = _ModuleCollector(
            self.graph, self.fn.module, Path(self.fn.path), self.fn.rel
        )
        collector.imports = self.imports
        return collector.annotation_type(annotation)

    def _expr_type(self, value: ast.expr) -> Optional[str]:
        """Best-effort type of an expression (constructor/typed source)."""
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(value, ast.Call):
            callee = self._resolve(value.func)
            if callee is not None:
                if callee in self.graph.classes:
                    return callee
                info = self.graph.functions.get(callee)
                if info is not None:
                    returns = getattr(info.node, "returns", None)
                    collector = _ModuleCollector(
                        self.graph, info.module, Path(info.path), info.rel
                    )
                    collector.imports = self.graph.module_imports.get(
                        info.module, {}
                    )
                    return collector.annotation_type(returns)
                # External constructor: ProcessPoolExecutor(), Path(), ...
                # The CapWord convention is the only signal available, but
                # it is what lets pool/receiver methods resolve to their
                # dotted sink names.
                leaf = callee.rsplit(".", 1)[-1]
                if leaf[:1].isupper():
                    return callee
            return None
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return self._self_attr_type(value.attr)
        if isinstance(value, ast.Name):
            return self.env.get(value.id)
        return None

    def _self_attr_type(self, attr: str) -> Optional[str]:
        qual = self.fn.class_qual
        stack = [qual] if qual else []
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            info = self.graph.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(info.bases)
        return None

    # -- call resolution -----------------------------------------------
    def collect(self) -> List[CallSite]:
        sites: List[CallSite] = []
        awaited_calls = {
            id(n.value)
            for n in ast.walk(self.fn.node)
            if isinstance(n, ast.Await) and isinstance(n.value, ast.Call)
        }
        for node in _walk_own_nodes(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve(node.func)
            attr = None
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
            elif isinstance(node.func, ast.Name):
                attr = node.func.id
            sites.append(
                CallSite(
                    caller=self.fn.qualname,
                    callee=callee,
                    external=(
                        callee is not None
                        and callee not in self.graph.functions
                        and callee not in self.graph.classes
                    ),
                    attr=attr,
                    lineno=node.lineno,
                    col=node.col_offset,
                    awaited=id(node) in awaited_calls,
                    node=node,
                )
            )
        return sites

    def _resolve(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func)
        return None

    def _resolve_name(self, name: str) -> Optional[str]:
        # Lexical scoping: own nested defs, then enclosing *function*
        # scopes (closures), then module level.  Class scopes are
        # deliberately skipped — a bare name inside a method never
        # resolves to a sibling method in Python.
        candidates = [f"{self.fn.qualname}.{name}"]
        prefix = self.fn.qualname
        while "." in prefix:
            prefix = prefix.rsplit(".", 1)[0]
            if prefix in self.graph.functions:
                candidates.append(f"{prefix}.{name}")
            else:
                break
        candidates.append(f"{self.fn.module}.{name}" if self.fn.module else name)
        for candidate in candidates:
            if candidate in self.graph.functions or candidate in self.graph.classes:
                return candidate
        target = self.imports.get(name)
        if target is not None:
            return self.graph.resolve_target(target)
        if name in _BUILTIN_NAMES:
            return f"builtins.{name}"
        return None

    def _resolve_attribute(self, func: ast.Attribute) -> Optional[str]:
        method = func.attr
        base = func.value
        # self.m(...) / self.attr.m(...)
        if isinstance(base, ast.Name) and base.id == "self" and self.fn.class_qual:
            resolved = self.graph.resolve_method(self.fn.class_qual, method)
            if resolved is not None:
                return resolved
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            receiver = self._self_attr_type(base.attr)
            if receiver is not None:
                return self._method_on(receiver, method)
        # module.attr(...) or package.sub.attr(...)
        dotted = _dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if head == "self" and self.fn.class_qual:
                receiver = self._self_attr_type(rest.split(".")[0])
                if receiver is not None and rest.count(".") == 1:
                    return self._method_on(receiver, method)
            target = self.imports.get(head)
            if target is not None:
                resolved = self.graph.resolve_target(
                    (target + "." + rest) if rest else target
                )
                return resolved
        # typed local receiver
        if isinstance(base, ast.Name) and base.id in self.env:
            return self._method_on(self.env[base.id], method)
        # return-typed call receiver: self._connection().execute(...)
        if isinstance(base, ast.Call):
            receiver = self._expr_type(base)
            if receiver is not None:
                return self._method_on(receiver, method)
        # unique project-wide method name
        owners = self.graph.method_owners.get(method, [])
        if len(owners) == 1:
            return self.graph.classes[owners[0]].methods[method]
        return None

    def _method_on(self, receiver: str, method: str) -> Optional[str]:
        if receiver not in self.graph.classes:
            # An unqualified type name recorded during pass 1 may be a
            # class of the same module, or resolve through imports.
            local = (
                f"{self.fn.module}.{receiver}" if self.fn.module else receiver
            )
            if local in self.graph.classes:
                receiver = local
            else:
                receiver = self.graph.resolve_target(receiver)
        if receiver in self.graph.classes:
            return self.graph.resolve_method(receiver, method)
        return f"{receiver}.{method}"  # external type: dotted sink name


def _iter_own_statements(body: Sequence[ast.stmt]):
    """Statements of a scope, not descending into nested defs/classes."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.excepthandler):
                for grand in ast.iter_child_nodes(child):
                    if isinstance(grand, ast.stmt):
                        stack.append(grand)


def _walk_own_nodes(fn_node: ast.AST):
    """Every node belonging to a function, excluding nested defs/lambdas.

    Calls inside a nested ``def`` or ``lambda`` execute on *that*
    function's behalf (possibly much later), so they must not be
    attributed to the enclosing function's effect set.
    """
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def build_call_graph(root: Path) -> CallGraph:
    """Construct the project call graph for the package rooted at ``root``.

    ``root`` is the package directory itself (its name becomes the
    package name imports are internalized against), e.g. ``src/repro``.
    """
    root = root.resolve()
    graph = CallGraph(package=root.name, root=str(root))
    files = iter_python_files(root)
    collectors: List[Tuple[str, _ModuleCollector, ast.Module]] = []
    for path in files:
        rel = path.relative_to(root)
        module = module_name_for(rel)
        try:
            tree = parse_file(path)
        except SyntaxError:
            continue  # the linter reports syntax errors; skip here
        graph.modules[module] = rel.as_posix()
        collector = _ModuleCollector(graph, module, path, rel.as_posix())
        collector.visit(tree)
        graph.module_imports[module] = collector.imports
        collectors.append((module, collector, tree))

    # Pass 2: resolve class bases globally, build subclass + owner maps.
    for info in graph.classes.values():
        resolved_bases: List[str] = []
        imports = graph.module_imports.get(info.module, {})
        for base in info.bases:
            head, _, rest = base.partition(".")
            target = imports.get(head)
            dotted = (target + ("." + rest if rest else "")) if target else base
            local = (info.module + "." if info.module else "") + base
            if local in graph.classes:
                resolved = local
            else:
                resolved = graph.resolve_target(dotted)
            resolved_bases.append(resolved)
            if resolved in graph.classes:
                graph.subclasses.setdefault(resolved, []).append(info.qualname)
        info.bases = resolved_bases
    for qual, info in graph.classes.items():
        for method in info.methods:
            graph.method_owners.setdefault(method, []).append(qual)

    # Pass 3: resolve call sites per function.
    for fn in graph.functions.values():
        imports = graph.module_imports.get(fn.module, {})
        graph.calls[fn.qualname] = _CallCollector(graph, fn, imports).collect()
    return graph
