"""Independent schedule certification and lower-bound certificates.

The solvers in :mod:`repro.core` validate their own output — but a
validator that shares code (or authors' blind spots) with the solver is
a weak witness.  This module re-derives every claim from the instance
alone, the way Turner's bounded edge-coloring validator and Zerola's
constraint-programming movers cross-check their planners:

* :func:`verify_schedule` re-checks **edge conservation** (every item
  migrated exactly once, no phantom items) and every **per-node
  transfer constraint** ``c_v``, recounting loads from raw endpoint
  scans — no code shared with :meth:`MigrationSchedule.validate`.
* :class:`LowerBoundCertificate` makes ``LB = max(Δ', Γ')`` (Section
  III) *checkable*: a witness node proves ``LB1 = ⌈d_v/c_v⌉`` and a
  witness subset ``S`` proves ``LB2 = ⌈|E(S)|/⌊Σ_{v∈S} c_v/2⌋⌉``.
  :func:`verify_certificate` recomputes both from first principles, so
  tampering with a witness is detected, not trusted.
* :func:`certify` combines the two: a schedule whose verified round
  count equals a verified lower bound is **certifiably optimal**
  (e.g. Theorem 4.1's even-capacity ``Δ'``-round schedules).

Certificates round-trip through JSON (:func:`certificate_to_json` /
:func:`certificate_from_json`) so they can ride alongside checkpoints
and CI artifacts; nodes are serialized by ``repr`` and resolved back
against the instance on load.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.lower_bounds import (
    EXACT_LB2_NODE_LIMIT,  # noqa: F401  (re-exported: the public name lives here too)
    lb1_witness,
    lb2_exact_witness,
    lb2_witness,
)
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.multigraph import EdgeId, Node

CERTIFICATE_SCHEMA_VERSION = 1

Rounds = Sequence[Sequence[EdgeId]]


class CertificationError(Exception):
    """A schedule or certificate failed independent verification."""


@dataclass(frozen=True)
class LB1Witness:
    """A node whose constrained degree proves ``LB1``."""

    node: Node
    degree: int
    capacity: int
    bound: int


@dataclass(frozen=True)
class LB2Witness:
    """A subset ``S`` whose edge density proves ``LB2`` (Lemma 3.1)."""

    nodes: Tuple[Node, ...]
    internal_edges: int
    capacity_sum: int
    bound: int


@dataclass(frozen=True)
class LowerBoundCertificate:
    """``max(Δ', Γ')`` with self-contained proofs of both terms."""

    bound: int
    lb1: Optional[LB1Witness]
    lb2: Optional[LB2Witness]
    exact: bool  # True when the LB2 witness came from exhaustive search


@dataclass(frozen=True)
class CertificationReport:
    """Outcome of certifying one schedule against one instance."""

    rounds: int
    lower_bound: int
    certified_optimal: bool
    method: str

    @property
    def gap(self) -> int:
        return self.rounds - self.lower_bound


# ----------------------------------------------------------------------
# schedule verification (independent of repro.core.schedule.validate)
# ----------------------------------------------------------------------

def verify_schedule(instance: MigrationInstance, rounds: Rounds) -> int:
    """Re-validate a schedule from first principles; return its length.

    Checks, with no solver code reused:

    * every transfer-graph edge appears in exactly one round
      (conservation: each item migrates once, no item is dropped);
    * no unknown edge id appears;
    * in every round, every disk is an endpoint of at most ``c_v``
      scheduled transfers.

    Returns the number of non-empty rounds.

    Raises:
        CertificationError: on the first violation found.
    """
    occurrences: Dict[EdgeId, int] = {}
    for rnd in rounds:
        for eid in rnd:
            occurrences[eid] = occurrences.get(eid, 0) + 1

    known = set(instance.graph.edge_ids())
    unknown = sorted(eid for eid in occurrences if eid not in known)
    if unknown:
        raise CertificationError(f"unknown edge ids scheduled: {unknown[:5]}")
    duplicated = sorted(eid for eid, n in occurrences.items() if n > 1)
    if duplicated:
        raise CertificationError(
            f"edges scheduled more than once: {duplicated[:5]}"
        )
    missing = sorted(eid for eid in known if eid not in occurrences)
    if missing:
        raise CertificationError(
            f"{len(missing)} edges never scheduled, e.g. {missing[:5]}"
        )

    nonempty = 0
    for index, rnd in enumerate(rounds):
        if len(rnd) == 0:
            continue
        nonempty += 1
        load: Dict[Node, int] = {}
        for eid in rnd:
            u, v = instance.graph.endpoints(eid)
            load[u] = load.get(u, 0) + 1
            load[v] = load.get(v, 0) + 1 if u != v else load[u] + 1
        for v, used in load.items():
            if used > instance.capacity(v):
                raise CertificationError(
                    f"round {index}: disk {v!r} performs {used} transfers "
                    f"but c_v = {instance.capacity(v)}"
                )
    return nonempty


# ----------------------------------------------------------------------
# certificate construction (solver side) and verification (checker side)
# ----------------------------------------------------------------------

def make_certificate(
    instance: MigrationInstance, exact_small: bool = True
) -> LowerBoundCertificate:
    """Build a lower-bound certificate with the best witnesses we know.

    The witnesses come from :mod:`repro.core.lower_bounds`; their
    *validity* never depends on that module being right, because
    :func:`verify_certificate` recomputes everything from the instance.
    """
    node, delta = lb1_witness(instance)
    lb1_part: Optional[LB1Witness] = None
    if node is not None and delta > 0:
        lb1_part = LB1Witness(
            node=node,
            degree=_independent_degree(instance, node),
            capacity=instance.capacity(node),
            bound=delta,
        )

    exact = exact_small and instance.graph.num_nodes <= EXACT_LB2_NODE_LIMIT
    if exact:
        subset, gamma = lb2_exact_witness(instance, max_nodes=EXACT_LB2_NODE_LIMIT)
    else:
        subset, gamma = lb2_witness(instance)
    lb2_part: Optional[LB2Witness] = None
    if subset and gamma > 0:
        ordered = sorted(subset, key=repr)
        internal, cap_sum = _subset_stats(instance, ordered)
        lb2_part = LB2Witness(
            nodes=tuple(ordered),
            internal_edges=internal,
            capacity_sum=cap_sum,
            bound=gamma,
        )

    bound = max(
        lb1_part.bound if lb1_part else 0,
        lb2_part.bound if lb2_part else 0,
    )
    return LowerBoundCertificate(bound=bound, lb1=lb1_part, lb2=lb2_part, exact=exact)


def verify_certificate(
    instance: MigrationInstance, certificate: LowerBoundCertificate
) -> int:
    """Check every claim in the certificate; return the verified bound.

    Raises:
        CertificationError: if any witness fails to re-derive, or the
            stated bound disagrees with its witnesses.
    """
    witnessed = 0
    if certificate.lb1 is not None:
        witnessed = max(witnessed, _verify_lb1(instance, certificate.lb1))
    if certificate.lb2 is not None:
        witnessed = max(witnessed, _verify_lb2(instance, certificate.lb2))
    if certificate.bound > witnessed:
        raise CertificationError(
            f"certificate claims bound {certificate.bound} but witnesses "
            f"only prove {witnessed}"
        )
    return certificate.bound


def _verify_lb1(instance: MigrationInstance, witness: LB1Witness) -> int:
    if not instance.graph.has_node(witness.node):
        raise CertificationError(f"LB1 witness node {witness.node!r} not in instance")
    degree = _independent_degree(instance, witness.node)
    capacity = instance.capacity(witness.node)
    if degree != witness.degree:
        raise CertificationError(
            f"LB1 witness degree mismatch at {witness.node!r}: "
            f"claimed {witness.degree}, actual {degree}"
        )
    if capacity != witness.capacity:
        raise CertificationError(
            f"LB1 witness capacity mismatch at {witness.node!r}: "
            f"claimed {witness.capacity}, actual {capacity}"
        )
    bound = math.ceil(degree / capacity)
    if bound != witness.bound:
        raise CertificationError(
            f"LB1 witness bound mismatch: ceil({degree}/{capacity}) = {bound}, "
            f"claimed {witness.bound}"
        )
    return bound


def _verify_lb2(instance: MigrationInstance, witness: LB2Witness) -> int:
    nodes = list(witness.nodes)
    if len(set(map(repr, nodes))) != len(nodes):
        raise CertificationError("LB2 witness subset contains duplicate nodes")
    for v in nodes:
        if not instance.graph.has_node(v):
            raise CertificationError(f"LB2 witness node {v!r} not in instance")
    internal, cap_sum = _subset_stats(instance, nodes)
    if internal != witness.internal_edges:
        raise CertificationError(
            f"LB2 witness |E(S)| mismatch: claimed {witness.internal_edges}, "
            f"actual {internal}"
        )
    if cap_sum != witness.capacity_sum:
        raise CertificationError(
            f"LB2 witness capacity sum mismatch: claimed {witness.capacity_sum}, "
            f"actual {cap_sum}"
        )
    half = cap_sum // 2
    if half == 0:
        raise CertificationError(
            "LB2 witness subset has capacity sum < 2; no bound derivable"
        )
    bound = math.ceil(internal / half)
    if bound != witness.bound:
        raise CertificationError(
            f"LB2 witness bound mismatch: ceil({internal}/{half}) = {bound}, "
            f"claimed {witness.bound}"
        )
    return bound


def _independent_degree(instance: MigrationInstance, node: Node) -> int:
    """Degree by raw edge scan — no reliance on cached degree tables."""
    degree = 0
    for _eid, u, v in instance.graph.edges():
        if u == node:
            degree += 1
        if v == node:
            degree += 1
    return degree


def _subset_stats(
    instance: MigrationInstance, nodes: Sequence[Node]
) -> Tuple[int, int]:
    """``(|E(S)|, Σ_{v∈S} c_v)`` by raw edge scan."""
    member = set(nodes)
    internal = sum(
        1 for _eid, u, v in instance.graph.edges() if u in member and v in member
    )
    cap_sum = sum(instance.capacity(v) for v in nodes)
    return internal, cap_sum


# ----------------------------------------------------------------------
# the one-call entry point
# ----------------------------------------------------------------------

def certify(
    instance: MigrationInstance,
    schedule: Union[MigrationSchedule, Rounds],
    certificate: Optional[LowerBoundCertificate] = None,
) -> CertificationReport:
    """Independently certify a schedule and a lower-bound claim.

    Args:
        instance: the migration instance.
        schedule: a :class:`MigrationSchedule` or a raw rounds list.
        certificate: optional pre-built certificate (e.g. loaded from
            JSON); built fresh from the instance when omitted.

    Returns:
        A report whose ``certified_optimal`` is True iff the verified
        round count equals the verified lower bound.

    Raises:
        CertificationError: if the schedule or certificate is invalid.
    """
    if isinstance(schedule, MigrationSchedule):
        rounds: Rounds = schedule.rounds
        method = schedule.method
    else:
        rounds = schedule
        method = "unknown"
    num_rounds = verify_schedule(instance, rounds)
    certificate = certificate if certificate is not None else make_certificate(instance)
    bound = verify_certificate(instance, certificate)
    return CertificationReport(
        rounds=num_rounds,
        lower_bound=bound,
        certified_optimal=num_rounds == bound,
        method=method,
    )


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------

def certificate_to_json(certificate: LowerBoundCertificate) -> Dict[str, Any]:
    """Serialize to a JSON-compatible dict (nodes by ``repr``)."""
    payload: Dict[str, Any] = {
        "schema_version": CERTIFICATE_SCHEMA_VERSION,
        "bound": certificate.bound,
        "exact": certificate.exact,
        "lb1": None,
        "lb2": None,
    }
    if certificate.lb1 is not None:
        payload["lb1"] = {
            "node": repr(certificate.lb1.node),
            "degree": certificate.lb1.degree,
            "capacity": certificate.lb1.capacity,
            "bound": certificate.lb1.bound,
        }
    if certificate.lb2 is not None:
        payload["lb2"] = {
            "nodes": [repr(v) for v in certificate.lb2.nodes],
            "internal_edges": certificate.lb2.internal_edges,
            "capacity_sum": certificate.lb2.capacity_sum,
            "bound": certificate.lb2.bound,
        }
    return payload


def certificate_from_json(
    data: Mapping[str, Any], instance: MigrationInstance
) -> LowerBoundCertificate:
    """Rebuild a certificate, resolving ``repr`` strings to real nodes.

    Raises:
        CertificationError: on schema mismatch, unknown node reprs, or
            ambiguous reprs (two instance nodes sharing one repr).
    """
    version = data.get("schema_version")
    if version != CERTIFICATE_SCHEMA_VERSION:
        raise CertificationError(
            f"certificate schema {version!r}; this build reads "
            f"{CERTIFICATE_SCHEMA_VERSION}"
        )
    by_repr: Dict[str, List[Node]] = {}
    for v in instance.graph.nodes:
        by_repr.setdefault(repr(v), []).append(v)

    def resolve(text: str) -> Node:
        candidates = by_repr.get(text, [])
        if not candidates:
            raise CertificationError(f"certificate references unknown node {text}")
        if len(candidates) > 1:
            raise CertificationError(f"node repr {text} is ambiguous in this instance")
        return candidates[0]

    lb1_part: Optional[LB1Witness] = None
    raw1 = data.get("lb1")
    if raw1 is not None:
        lb1_part = LB1Witness(
            node=resolve(raw1["node"]),
            degree=int(raw1["degree"]),
            capacity=int(raw1["capacity"]),
            bound=int(raw1["bound"]),
        )
    lb2_part: Optional[LB2Witness] = None
    raw2 = data.get("lb2")
    if raw2 is not None:
        lb2_part = LB2Witness(
            nodes=tuple(resolve(text) for text in raw2["nodes"]),
            internal_edges=int(raw2["internal_edges"]),
            capacity_sum=int(raw2["capacity_sum"]),
            bound=int(raw2["bound"]),
        )
    return LowerBoundCertificate(
        bound=int(data["bound"]),
        lb1=lb1_part,
        lb2=lb2_part,
        exact=bool(data.get("exact", False)),
    )


# ----------------------------------------------------------------------
# optimality certificates (repro.exact)
# ----------------------------------------------------------------------

def verify_optimality_certificate(
    instance: MigrationInstance,
    objective: Any,
    schedule: MigrationSchedule,
    certificate: Any,
) -> int:
    """Verify a :class:`repro.exact.OptimalityCertificate`; return its value.

    The lower-bound certificates above prove a schedule is *good*; an
    optimality certificate proves it is *best*.  This is the checks-side
    entry point: it re-establishes every claim via
    :func:`repro.exact.verify_optimality` (digest bindings, feasibility,
    value, and the proof — recomputed bound or deterministic replay) and
    translates rejection into the certification stack's usual
    :class:`CertificationError`.

    Raises:
        CertificationError: if any part of the certificate fails to
            re-derive from the instance, objective and schedule.
    """
    from repro.exact.search import verify_optimality

    try:
        verify_optimality(instance, objective, schedule, certificate)
    except ValueError as exc:
        raise CertificationError(f"optimality certificate rejected: {exc}") from exc
    return int(certificate.value)


# ----------------------------------------------------------------------
# patch certificates (incremental replanning)
# ----------------------------------------------------------------------

PATCH_CERTIFICATE_SCHEMA_VERSION = 1


def rounds_digest(rounds: Rounds) -> str:
    """SHA-256 of the exact JSON form of a schedule's rounds.

    Same algorithm as :func:`repro.checks.engine.schedule_digest`
    (re-implemented here because the engine harness imports this
    module): deliberately *not* order-normalized — byte-identity is
    the contract, so the digest must see the rounds exactly as
    emitted.
    """
    blob = json.dumps([list(rnd) for rnd in rounds], separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def delta_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 of a delta's canonical payload.

    ``payload`` is :meth:`repro.core.delta.InstanceDelta.canonical_payload`;
    keys are sorted but list order is preserved — the order of a
    delta's edits is part of its identity.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PatchCertificate:
    """Binds one incremental replan to its inputs and its output.

    A lower-bound certificate proves a patched schedule is *good*; the
    patch certificate proves it is *the* schedule this (prior, delta)
    pair produced: SHA-256 digests of the prior rounds, the canonical
    delta payload and the result rounds, plus the per-component
    disposition record (``reused`` / ``patched`` / ``resolved`` keyed
    by component fingerprint).  Any replay of the same replan must
    reproduce it bit for bit; any tampering with prior, delta or
    result breaks verification.
    """

    prior_digest: str
    delta_digest: str
    result_digest: str
    #: ``(component fingerprint or "", disposition)`` per component,
    #: in canonical component order.
    dispositions: Tuple[Tuple[str, str], ...]


def make_patch_certificate(
    prior_rounds: Rounds,
    delta_payload: Mapping[str, Any],
    result_rounds: Rounds,
    dispositions: Sequence[Tuple[str, str]],
) -> PatchCertificate:
    """Certificate for one ``plan_delta`` outcome (see the class doc)."""
    return PatchCertificate(
        prior_digest=rounds_digest(prior_rounds),
        delta_digest=delta_digest(delta_payload),
        result_digest=rounds_digest(result_rounds),
        dispositions=tuple((fp, disp) for fp, disp in dispositions),
    )


def verify_patch_certificate(
    certificate: PatchCertificate,
    prior_rounds: Rounds,
    delta_payload: Mapping[str, Any],
    result_rounds: Rounds,
) -> None:
    """Re-derive every digest and compare.

    Raises:
        CertificationError: on the first digest mismatch or an unknown
            disposition label.
    """
    checks = (
        ("prior", certificate.prior_digest, rounds_digest(prior_rounds)),
        ("delta", certificate.delta_digest, delta_digest(delta_payload)),
        ("result", certificate.result_digest, rounds_digest(result_rounds)),
    )
    for part, claimed, actual in checks:
        if claimed != actual:
            raise CertificationError(
                f"patch certificate {part} digest mismatch: "
                f"claimed {claimed[:12]}…, actual {actual[:12]}…"
            )
    for fp, disp in certificate.dispositions:
        if disp not in ("reused", "patched", "resolved"):
            raise CertificationError(
                f"unknown disposition {disp!r} for component {fp[:12]}…"
            )


def patch_certificate_to_json(certificate: PatchCertificate) -> Dict[str, Any]:
    """Serialize to a JSON-compatible dict."""
    return {
        "schema_version": PATCH_CERTIFICATE_SCHEMA_VERSION,
        "prior_digest": certificate.prior_digest,
        "delta_digest": certificate.delta_digest,
        "result_digest": certificate.result_digest,
        "dispositions": [[fp, disp] for fp, disp in certificate.dispositions],
    }


def patch_certificate_from_json(data: Mapping[str, Any]) -> PatchCertificate:
    """Rebuild a patch certificate from its JSON form.

    Raises:
        CertificationError: on schema mismatch.
    """
    version = data.get("schema_version")
    if version != PATCH_CERTIFICATE_SCHEMA_VERSION:
        raise CertificationError(
            f"patch certificate schema {version!r}; this build reads "
            f"{PATCH_CERTIFICATE_SCHEMA_VERSION}"
        )
    return PatchCertificate(
        prior_digest=str(data["prior_digest"]),
        delta_digest=str(data["delta_digest"]),
        result_digest=str(data["result_digest"]),
        dispositions=tuple(
            (str(fp), str(disp)) for fp, disp in data.get("dispositions", [])
        ),
    )
