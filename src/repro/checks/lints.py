"""The determinism linter: rule definitions and the scanning driver.

Schedules must be reproducible byte-for-byte from a seed alone — the
checkpoint/resume guarantee of :mod:`repro.runtime` and the certified
claims of :mod:`repro.checks.certify` both collapse without it.  PR 1
shipped (and had to hot-fix) a ``PYTHONHASHSEED`` nondeterminism bug in
the bipartite colorer; this linter catches that whole class statically.

Rules
-----

``set-iter``
    Iterating a raw ``set``/``frozenset`` in an order-sensitive
    position (``for`` statement, list/dict/generator comprehension).
    Set iteration order depends on insertion history and — for strings
    and most objects — on ``PYTHONHASHSEED``.  Fix: iterate
    ``sorted(s)`` (with a ``key=`` for heterogeneous elements), or
    restructure around an insertion-ordered ``dict``/``list``.

``set-order``
    Materializing a set into an ordered container — ``list(s)``,
    ``tuple(s)``, ``enumerate(s)``, ``reversed(s)``, ``"".join(s)`` —
    without ``sorted``.  This is the ``dict``/``set`` → ``list``
    conversion the resume bug rode in on.  Fix: ``sorted(s)``.

``unseeded-random``
    Module-level ``random.*`` calls (``random.shuffle`` etc.) draw from
    the process-global, unseeded RNG.  Fix: thread a
    ``random.Random(seed)`` instance through the call chain.

``wall-clock``
    ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` inside a
    deterministic module makes output depend on when it ran.  Fix: take
    timestamps at the boundary and pass them in.

Order-insensitive consumers (``sorted``, ``sum``, ``min``, ``max``,
``any``, ``all``, ``len``, ``set``, ``frozenset``, ``Counter``) are
exempt — feeding a set into them is deterministic.  Set comprehensions
over sets are likewise exempt (unordered in, unordered out).  The
exemption also holds through an intermediate variable: when a name is
bound exactly once to the materialized value and *every* use of it is a
direct argument to an order-insensitive consumer, the hash order never
escapes (``items = [f(x) for x in s]; return sorted(items)``).

``set-iter``, ``set-order`` and ``wall-clock`` apply only to the
schedule-producing packages (``core/``, ``graphs/``, ``runtime/`` by
default); ``unseeded-random`` applies everywhere — stochastic modules
(workloads, fault injection) must still draw from seeded generators.

Suppression: append ``# repro: allow-<rule>`` (comma-separate several
rules) with a one-line justification, either trailing the offending
line or on a standalone comment line directly above it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.checks.astwalk import (
    Finding,
    SetTypeInference,
    SymbolTable,
    collect_symbols,
    iter_python_files,
    parse_file,
    parse_suppressions,
)

#: rule name -> one-line description (the full catalog lives in
#: docs/checks.md and the module docstring above).
RULES: Dict[str, str] = {
    "set-iter": "iteration over a raw set/frozenset in an order-sensitive position",
    "set-order": "set materialized into an ordered container without sorted()",
    "unseeded-random": "module-level random.* call (process-global, unseeded RNG)",
    "wall-clock": "wall-clock read (time.time/datetime.now) in a deterministic module",
}

#: Callables for which consuming a set argument is order-insensitive.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset", "Counter"}
)

#: Callables that impose an order on their (set) argument.
_ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate", "reversed"})

_RANDOM_FACTORIES = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
_TIME_READS = frozenset({"time", "time_ns"})
_DATETIME_READS = frozenset({"now", "utcnow", "today"})


@dataclass
class LintConfig:
    """What to lint and where the determinism contract applies."""

    deterministic_packages: Tuple[str, ...] = (
        "core", "exact", "graphs", "runtime", "pipeline", "obs", "serve",
        "sim", "workloads",
    )
    select: Optional[Set[str]] = None  # None = all rules

    def enabled(self, rule: str) -> bool:
        return self.select is None or rule in self.select


@dataclass
class LintReport:
    """Outcome of one linter run over a tree."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [f.render() for f in sorted(self.findings)]
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.suppressed)} suppressed, "
            f"{self.files_scanned} file(s) scanned"
        )
        return "\n".join(lines)


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_tree(root: Optional[Path] = None, config: Optional[LintConfig] = None) -> LintReport:
    """Lint every python file under ``root`` (default: the repro package).

    Pass 1 collects set-returning annotations across all files; pass 2
    applies the rules per file.  Findings carrying an inline
    ``# repro: allow-<rule>`` land in ``report.suppressed``.
    """
    root = (root or default_root()).resolve()
    config = config or LintConfig()
    files = iter_python_files(root)
    trees: List[Tuple[str, ast.Module]] = []
    report = LintReport()
    for path in files:
        try:
            trees.append((str(path), parse_file(path)))
        except SyntaxError as exc:
            report.findings.append(
                Finding(str(path), exc.lineno or 0, exc.offset or 0,
                        "syntax-error", str(exc.msg))
            )
    symbols = collect_symbols(trees)
    for path_str, tree in trees:
        path = Path(path_str)
        rel = path.relative_to(root)
        findings, suppressed = _lint_file(path, rel, tree, symbols, config)
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
    report.files_scanned = len(files)
    report.findings.sort()
    report.suppressed.sort()
    return report


# ----------------------------------------------------------------------
# per-file machinery
# ----------------------------------------------------------------------

@dataclass
class _ModuleImports:
    random_aliases: Set[str] = field(default_factory=set)
    random_names: Set[str] = field(default_factory=set)
    time_aliases: Set[str] = field(default_factory=set)
    time_names: Set[str] = field(default_factory=set)
    datetime_aliases: Set[str] = field(default_factory=set)
    datetime_classes: Set[str] = field(default_factory=set)


def _collect_imports(tree: ast.Module) -> _ModuleImports:
    imports = _ModuleImports()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name == "random":
                    imports.random_aliases.add(local)
                elif alias.name == "time":
                    imports.time_aliases.add(local)
                elif alias.name == "datetime":
                    imports.datetime_aliases.add(local)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in _RANDOM_FACTORIES:
                        imports.random_names.add(alias.asname or alias.name)
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_READS:
                        imports.time_names.add(alias.asname or alias.name)
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        imports.datetime_classes.add(alias.asname or alias.name)
    return imports


def _lint_file(
    path: Path,
    rel: Path,
    tree: ast.Module,
    symbols: SymbolTable,
    config: LintConfig,
) -> Tuple[List[Finding], List[Finding]]:
    source = path.read_text()
    suppressions = parse_suppressions(source)
    deterministic = rel.parts[:1] and rel.parts[0] in config.deterministic_packages
    imports = _collect_imports(tree)
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    checker = _Checker(
        path=str(path),
        symbols=symbols,
        config=config,
        deterministic=bool(deterministic),
        imports=imports,
        parents=parents,
    )
    checker.check_scope(tree.body, SetTypeInference(symbols))

    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding, span in checker.found:
        if any(
            finding.rule in suppressions.get(line, ())
            for line in range(span[0], span[1] + 1)
        ):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


class _Checker:
    """Applies the rules scope by scope."""

    def __init__(
        self,
        path: str,
        symbols: SymbolTable,
        config: LintConfig,
        deterministic: bool,
        imports: _ModuleImports,
        parents: Dict[ast.AST, ast.AST],
    ):
        self.path = path
        self.symbols = symbols
        self.config = config
        self.deterministic = deterministic
        self.imports = imports
        self.parents = parents
        #: (finding, (first_line, last_line)) — the span a suppression
        #: comment may attach to.
        self.found: List[Tuple[Finding, Tuple[int, int]]] = []
        #: Per-scope stack of names whose every use is order-insensitive.
        self._insensitive: List[Set[str]] = []

    # -- scope recursion ----------------------------------------------
    def check_scope(self, body: Sequence[ast.stmt], inference: SetTypeInference) -> None:
        inference.seed_from_body(body)
        self._insensitive.append(self._order_insensitive_names(body))
        for node in _walk_scope(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child = inference.child()
                child.seed_from_args(node.args)
                self.check_scope(node.body, child)
            elif isinstance(node, ast.ClassDef):
                self.check_scope(node.body, inference.child())
            else:
                self._check_node(node, inference)
        self._insensitive.pop()

    # -- node dispatch -------------------------------------------------
    def _check_node(self, node: ast.AST, inference: SetTypeInference) -> None:
        if isinstance(node, ast.For):
            self._check_for(node, inference)
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            self._check_comprehension(node, inference)
        elif isinstance(node, ast.Call):
            self._check_call(node, inference)

    def _emit(self, rule: str, node: ast.AST, message: str,
              span: Optional[Tuple[int, int]] = None) -> None:
        if not self.config.enabled(rule):
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        end = getattr(node, "end_lineno", line) or line
        self.found.append(
            (Finding(self.path, line, col, rule, message), span or (line, end))
        )

    # -- rules ---------------------------------------------------------
    def _check_for(self, node: ast.For, inference: SetTypeInference) -> None:
        if not self.deterministic:
            return
        if inference.is_set(node.iter):
            span_end = getattr(node.iter, "end_lineno", node.lineno) or node.lineno
            self._emit(
                "set-iter", node,
                "for-loop over a raw set; iterate sorted(...) or restructure",
                span=(node.lineno, span_end),
            )

    def _check_comprehension(self, node: ast.expr, inference: SetTypeInference) -> None:
        if not self.deterministic:
            return
        if self._feeds_order_insensitive_consumer(node):
            return
        if self._assigned_to_order_insensitive(node):
            return
        for gen in node.generators:  # type: ignore[attr-defined]
            if inference.is_set(gen.iter):
                kind = type(node).__name__
                self._emit(
                    "set-iter", gen.iter,
                    f"{kind} iterates a raw set; wrap the source in sorted(...)",
                )

    def _check_call(self, node: ast.Call, inference: SetTypeInference) -> None:
        func = node.func
        # unseeded-random applies to every module, stochastic or not.
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.imports.random_aliases
                and func.attr not in _RANDOM_FACTORIES
            ):
                self._emit(
                    "unseeded-random", node,
                    f"random.{func.attr}() uses the unseeded global RNG; "
                    "use a random.Random(seed) instance",
                )
        elif isinstance(func, ast.Name) and func.id in self.imports.random_names:
            self._emit(
                "unseeded-random", node,
                f"{func.id}() from the random module uses the unseeded global RNG",
            )

        if not self.deterministic:
            return

        # wall-clock
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                func.attr in _TIME_READS
                and isinstance(base, ast.Name)
                and base.id in self.imports.time_aliases
            ):
                self._emit("wall-clock", node,
                           f"time.{func.attr}() in a deterministic module")
            elif func.attr in _DATETIME_READS and self._is_datetime_base(base):
                self._emit("wall-clock", node,
                           f"datetime {func.attr}() in a deterministic module")
        elif isinstance(func, ast.Name) and func.id in self.imports.time_names:
            self._emit("wall-clock", node,
                       f"{func.id}() (time.time) in a deterministic module")

        # set-order
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDERING_CONSUMERS
            and node.args
            and inference.is_set(node.args[0])
            and not self._assigned_to_order_insensitive(node)
        ):
            self._emit(
                "set-order", node,
                f"{func.id}() over a raw set imposes hash order; use sorted(...)",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and len(node.args) == 1
            and inference.is_set(node.args[0])
        ):
            self._emit("set-order", node,
                       "join() over a raw set imposes hash order; use sorted(...)")

    def _is_datetime_base(self, base: ast.expr) -> bool:
        if isinstance(base, ast.Name):
            return base.id in self.imports.datetime_classes
        if isinstance(base, ast.Attribute):
            return (
                base.attr in ("datetime", "date")
                and isinstance(base.value, ast.Name)
                and base.value.id in self.imports.datetime_aliases
            )
        return False

    def _feeds_order_insensitive_consumer(self, node: ast.expr) -> bool:
        parent = self.parents.get(node)
        if not isinstance(parent, ast.Call) or node not in parent.args:
            return False
        func = parent.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        return name in ORDER_INSENSITIVE_CONSUMERS

    def _assigned_to_order_insensitive(self, node: ast.expr) -> bool:
        """The value is bound to a name that only ever feeds consumers.

        ``items = [f(x) for x in s]; return sorted(items)`` is as
        deterministic as ``sorted(f(x) for x in s)`` — the intermediate
        list's hash-dependent order never escapes.
        """
        parent = self.parents.get(node)
        name: Optional[str] = None
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            name = parent.targets[0].id
        elif isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
            name = parent.target.id
        if name is None:
            return False
        return any(name in scope for scope in self._insensitive)

    def _order_insensitive_names(self, body: Sequence[ast.stmt]) -> Set[str]:
        """Names bound once whose every load feeds an insensitive consumer.

        Any other use — a second binding, a ``del``, a read outside a
        direct ``sorted(...)``-style argument position, or *any* mention
        inside a nested def/class (a closure could leak the value) —
        disqualifies the name.
        """
        stores: Dict[str, int] = {}
        ok_loads: Dict[str, int] = {}
        disqualified: Set[str] = set()
        for node in _walk_scope(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Name):
                        disqualified.add(inner.id)
                continue
            if isinstance(node, ast.Lambda):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Name):
                        disqualified.add(inner.id)
                continue
            if not isinstance(node, ast.Name):
                continue
            if isinstance(node.ctx, ast.Store):
                stores[node.id] = stores.get(node.id, 0) + 1
            elif isinstance(node.ctx, ast.Load):
                if self._feeds_order_insensitive_consumer(node):
                    ok_loads[node.id] = ok_loads.get(node.id, 0) + 1
                else:
                    disqualified.add(node.id)
            else:  # Del
                disqualified.add(node.id)
        return {
            name
            for name, count in stores.items()
            if count == 1 and name not in disqualified and ok_loads.get(name, 0) > 0
        }


def order_sensitive_findings(
    path: Path, tree: ast.Module, symbols: SymbolTable
) -> List[Finding]:
    """``set-iter``/``set-order`` findings for one file, package-independent.

    The flow analyzer (:mod:`repro.checks.flow`) seeds its ``hash-order``
    effect from these sites in *every* module — effect inference is about
    what a function does, not which package it lives in — while the lint
    gate keeps its deterministic-package scoping.  Inline suppressions
    (``# repro: allow-set-iter``) are honored, so an acknowledged
    exception does not poison the transitive effect closure.
    """
    source = path.read_text()
    suppressions = parse_suppressions(source)
    imports = _collect_imports(tree)
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    checker = _Checker(
        path=str(path),
        symbols=symbols,
        config=LintConfig(select={"set-iter", "set-order"}),
        deterministic=True,
        imports=imports,
        parents=parents,
    )
    checker.check_scope(tree.body, SetTypeInference(symbols))
    active: List[Finding] = []
    for finding, span in checker.found:
        if not any(
            finding.rule in suppressions.get(line, ())
            for line in range(span[0], span[1] + 1)
        ):
            active.append(finding)
    return sorted(active)


def _walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Every node in a scope, yielding (but not entering) nested defs."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
