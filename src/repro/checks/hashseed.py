"""Cross-``PYTHONHASHSEED`` determinism harness.

``PYTHONHASHSEED`` randomizes ``str`` hashing per process, so any code
path that iterates a str-keyed ``set`` (or relies on set/dict ordering
derived from one) produces different schedules in different processes —
exactly the bug class PR 1 hot-fixed in ``bipartite_coloring``.  The
linter catches the pattern statically; this harness catches it
*behaviorally*: run the planner and the runtime executor in fresh
subprocesses under two different hash seeds and require byte-identical
canonical output.

Used by the ``repro-migrate check --determinism`` CLI path, the CI
``static-analysis`` job, and the regression tests.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import repro


class DeterminismError(Exception):
    """A determinism driver failed to run at all (not a mismatch)."""


#: Prints a canonical JSON schedule for a random instance.
#: argv: num_disks num_items instance_seed method
PLAN_DRIVER = """\
import json, sys
from repro.core.solver import plan_migration
from repro.workloads import random_instance

num_disks, num_items, instance_seed = map(int, sys.argv[1:4])
method = sys.argv[4]
instance = random_instance(num_disks, num_items, seed=instance_seed)
schedule = plan_migration(instance, method=method, seed=0)
payload = {
    "method": schedule.method,
    "rounds": [list(rnd) for rnd in schedule.rounds],
}
sys.stdout.write(json.dumps(payload, sort_keys=True))
"""

#: Plans the same instance untraced (NULL_TRACER default) and traced
#: (real Tracer -> in-memory exporter); the schedules must be
#: identical — tracing is observation-only — and the traced schedule
#: is printed canonically so it is also compared across hash seeds.
#: argv: num_disks num_items instance_seed method
TRACED_PLAN_DRIVER = """\
import json, sys
from repro.obs import InMemoryExporter, Tracer
from repro.pipeline import plan
from repro.workloads import random_instance

num_disks, num_items, instance_seed = map(int, sys.argv[1:4])
method = sys.argv[4]
instance = random_instance(num_disks, num_items, seed=instance_seed)
noop = plan(instance, method=method, seed=0).schedule
tracer = Tracer(InMemoryExporter())
traced = plan(instance, method=method, seed=0, tracer=tracer).schedule
tracer.close()
if [list(r) for r in noop.rounds] != [list(r) for r in traced.rounds]:
    sys.exit("traced plan diverged from untraced plan")
payload = {
    "method": traced.method,
    "rounds": [list(rnd) for rnd in traced.rounds],
}
sys.stdout.write(json.dumps(payload, sort_keys=True))
"""

#: Prints the canonical executor state after a full fault-injected run.
#: argv: scenario_seed executor_seed
EXECUTOR_DRIVER = """\
import json, sys
from repro.core.solver import plan_migration
from repro.runtime import DiskCrash, FaultPlan, MigrationExecutor
from repro.workloads.scenarios import decommission_scenario

scenario_seed, executor_seed = map(int, sys.argv[1:3])
scenario = decommission_scenario(seed=scenario_seed)
faults = FaultPlan(transfer_failure_rate=0.1, crashes=(DiskCrash("new-2", 5.0),))
executor = MigrationExecutor(
    scenario.cluster,
    scenario.context,
    plan_migration(scenario.instance),
    faults=faults,
    seed=executor_seed,
)
executor.run()
state = executor.get_state()
layout = scenario.cluster.layout.as_dict()
sys.stdout.write(json.dumps({"state": state, "layout": layout}, sort_keys=True))
"""


#: Runs a short seeded failure/recovery campaign and prints the
#: canonical report JSON — every layer the sim touches (event queue,
#: placement, repair batching, the staged planner, rate models,
#: metrics snapshot) must be hash-seed independent for the bytes to
#: match.  argv: duration items seed
SIM_DRIVER = """\
import sys
from repro.sim import SimConfig, run_campaign

duration, items, seed = float(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
config = SimConfig(
    duration=duration, items=items, seed=seed,
    failure_rate=0.002, scrub_interval=50.0, latent_error_rate=0.2,
)
sys.stdout.write(run_campaign(config).canonical_json())
"""


#: Plans the same instance on the object and the array backend, fails
#: if they diverge in-process, and prints the array schedule
#: canonically — so the engine-equivalence contract is also checked
#: *across* hash seeds (both backends must be hash-seed independent
#: and agree with each other in every process).
#: argv: num_disks num_items instance_seed method
ENGINE_DRIVER = """\
import json, sys
from repro.pipeline import plan
from repro.workloads import random_instance

num_disks, num_items, instance_seed = map(int, sys.argv[1:4])
method = sys.argv[4]
instance = random_instance(
    num_disks, num_items, capacities={1: 0.3, 2: 0.4, 4: 0.3},
    seed=instance_seed,
)
obj = plan(instance, method=method, seed=0, backend="object").schedule
arr = plan(instance, method=method, seed=0, backend="array").schedule
if obj.rounds != arr.rounds or obj.method != arr.method:
    sys.exit("array backend diverged from object backend")
payload = {
    "method": arr.method,
    "rounds": [list(rnd) for rnd in arr.rounds],
}
sys.stdout.write(json.dumps(payload, sort_keys=True))
"""


#: Plans a multi-component instance, applies a fixed delta through
#: ``plan_delta`` on both engine backends, fails if they diverge
#: in-process, and prints the patched schedule, dispositions and
#: certificate digests canonically — the incremental replanner must be
#: hash-seed independent end to end (token maps, patch recoloring,
#: cache write-through, certificates).  argv: seed
DELTA_DRIVER = """\
import json, random, sys
from repro.core.delta import InstanceDelta
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Multigraph
from repro.pipeline import PlanCache, plan, plan_delta

seed = int(sys.argv[1])
rng = random.Random(seed)
graph = Multigraph()
caps = {}
for k in range(6):
    names = [f"c{k}.d{i}" for i in range(8)]
    for name in names:
        graph.add_node(name)
        caps[name] = rng.choice((1, 2, 3))
    for i in range(7):
        graph.add_edge(names[i], names[i + 1])
    for _ in range(30):
        u, v = rng.sample(range(8), 2)
        graph.add_edge(names[u], names[v])
instance = MigrationInstance(graph, caps)
delta = InstanceDelta(
    add_moves=(("c0.d0", "c0.d3"), ("c1.d2", "c1.d5")),
    remove_moves=(("c0.d0", "c0.d1"),),
    retarget_moves=(("c2.d0", "c2.d1", "c2.d4"),),
    capacity_changes=(("c3.d0", 2),),
)
payloads = []
for backend in ("object", "array"):
    cache = PlanCache(max_entries=512)
    prior = plan(instance, "auto", 0, cache=cache, backend=backend, certify=True)
    result = plan_delta(prior, delta, cache=cache, backend=backend, certify=True)
    payloads.append({
        "rounds": [list(rnd) for rnd in result.schedule.rounds],
        "dispositions": list(result.dispositions),
        "bound": result.certificate.bound,
        "patch_digest": result.patch_certificate.result_digest,
    })
if payloads[0] != payloads[1]:
    sys.exit("delta planner diverged between backends")
sys.stdout.write(json.dumps(payloads[0], sort_keys=True))
"""


#: Runs the quick approximation-gap sweep — every family exact-solved,
#: every optimality certificate verified, every heuristic ratio
#: recorded — and prints the canonical metrics JSON.  The exact
#: branch-and-bound iterates node/edge arrays and orbit maps; any
#: hash-order dependence anywhere in that search (or in the certificate
#: digests) changes the bytes.  argv: (none)
GAP_DRIVER = """\
import sys
from repro.exact.gap import canonical_json, collect_gap_metrics

sys.stdout.write(canonical_json(collect_gap_metrics(quick=True)))
"""


#: Runs the whole-program flow analyzer over the installed package and
#: prints the canonical report JSON — call-graph construction, effect
#: fixpoint, contract checks, and finding order must all be independent
#: of ``PYTHONHASHSEED`` for the bytes to match.  argv: (none)
FLOW_DRIVER = """\
import sys
from repro.checks.flow import analyze_tree

sys.stdout.write(analyze_tree().canonical_json())
"""


@dataclass(frozen=True)
class DeterminismCheck:
    """One driver run compared across hash seeds."""

    name: str
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class DeterminismReport:
    checks: Tuple[DeterminismCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok" if check.ok else "MISMATCH"
            suffix = f" ({check.detail})" if check.detail and not check.ok else ""
            lines.append(f"  {check.name}: {status}{suffix}")
        return "\n".join(lines)


def _src_root() -> str:
    """The directory to put on PYTHONPATH so subprocesses import repro."""
    return str(Path(repro.__file__).resolve().parent.parent)


def run_driver(code: str, argv: Sequence[str], hash_seed: int) -> str:
    """Run one driver subprocess under a pinned ``PYTHONHASHSEED``."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = _src_root() + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", code, *argv],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if result.returncode != 0:
        raise DeterminismError(
            f"driver exited {result.returncode}: {result.stderr.strip()[:500]}"
        )
    return result.stdout


def compare_across_hash_seeds(
    name: str,
    code: str,
    argv: Sequence[str],
    hash_seeds: Tuple[int, int] = (0, 1),
) -> DeterminismCheck:
    """Run one driver under both hash seeds and compare stdout bytes."""
    first = run_driver(code, argv, hash_seeds[0])
    second = run_driver(code, argv, hash_seeds[1])
    if first == second:
        return DeterminismCheck(name=name, ok=True)
    detail = _first_divergence(first, second)
    return DeterminismCheck(name=name, ok=False, detail=detail)


def _first_divergence(a: str, b: str) -> str:
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return f"outputs diverge at byte {i}: {a[i - 20 : i + 20]!r} vs {b[i - 20 : i + 20]!r}"
    return f"outputs have different lengths ({len(a)} vs {len(b)})"


#: (name, num_disks, num_items, instance_seed, method) planner cases.
DEFAULT_PLAN_CASES: Tuple[Tuple[str, int, int, int, str], ...] = (
    ("plan/auto/small", 8, 30, 11, "auto"),
    ("plan/general/medium", 12, 60, 7, "general"),
    ("plan/greedy/medium", 10, 50, 3, "greedy"),
    ("plan/exact_bb/tiny", 5, 8, 2, "exact_bb"),
)


def check_determinism(
    plan_cases: Optional[Sequence[Tuple[str, int, int, int, str]]] = None,
    include_executor: bool = True,
    include_sim: bool = True,
    include_flow: bool = True,
    include_gap: bool = True,
    hash_seeds: Tuple[int, int] = (0, 1),
) -> DeterminismReport:
    """Run the full cross-hash-seed battery.

    Each case is executed twice in fresh interpreters (hash seeds 0 and
    1 by default) and the canonical JSON outputs must match exactly.
    """
    checks: List[DeterminismCheck] = []
    for name, num_disks, num_items, seed, method in plan_cases or DEFAULT_PLAN_CASES:
        checks.append(
            compare_across_hash_seeds(
                name,
                PLAN_DRIVER,
                [str(num_disks), str(num_items), str(seed), method],
                hash_seeds,
            )
        )
    checks.append(
        compare_across_hash_seeds(
            "plan/traced-vs-noop", TRACED_PLAN_DRIVER, ["10", "40", "5", "auto"],
            hash_seeds,
        )
    )
    checks.append(
        compare_across_hash_seeds(
            "engine/array-vs-object", ENGINE_DRIVER, ["12", "60", "7", "auto"],
            hash_seeds,
        )
    )
    checks.append(
        compare_across_hash_seeds(
            "delta/array-vs-object", DELTA_DRIVER, ["7"], hash_seeds
        )
    )
    if include_executor:
        checks.append(
            compare_across_hash_seeds(
                "runtime/executor", EXECUTOR_DRIVER, ["1", "7"], hash_seeds
            )
        )
    if include_sim:
        checks.append(
            compare_across_hash_seeds(
                "sim/cross-hashseed", SIM_DRIVER, ["300", "40", "5"], hash_seeds
            )
        )
    if include_flow:
        checks.append(
            compare_across_hash_seeds(
                "checks/flow-report", FLOW_DRIVER, [], hash_seeds
            )
        )
    if include_gap:
        checks.append(
            compare_across_hash_seeds(
                "exact/gap-metrics", GAP_DRIVER, [], hash_seeds
            )
        )
    return DeterminismReport(checks=tuple(checks))
