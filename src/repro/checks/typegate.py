"""The strict-typing gate: run mypy on the solver packages.

mypy is a *dev* dependency (the ``lint`` extra); production installs of
this package never need it.  When mypy is importable we run it
programmatically against the strict configuration in ``pyproject.toml``
(scoped to ``repro.core``, ``repro.graphs``, ``repro.pipeline``,
``repro.obs``, ``repro.serve``, ``repro.sim`` and
``repro.workloads``); when it is absent the
gate reports ``skipped`` and does not fail — CI installs mypy and is
where the gate actually gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import repro


@dataclass(frozen=True)
class TypeGateReport:
    ok: bool
    skipped: bool
    output: str

    def render(self) -> str:
        if self.skipped:
            return "  types: skipped (mypy not installed; CI enforces this gate)"
        status = "ok" if self.ok else "FAILED"
        body = f"\n{self.output}" if self.output and not self.ok else ""
        return f"  types: {status}{body}"


def _project_root() -> Optional[Path]:
    """The checkout root (directory containing pyproject.toml), if any."""
    candidate = Path(repro.__file__).resolve().parent.parent.parent
    if (candidate / "pyproject.toml").is_file():
        return candidate
    return None


def run_type_gate(targets: Tuple[str, ...] = ()) -> TypeGateReport:
    """Run mypy strict on the configured packages; skip if unavailable."""
    try:
        from mypy import api as mypy_api
    except ImportError:
        return TypeGateReport(ok=True, skipped=True, output="")

    root = _project_root()
    src = Path(repro.__file__).resolve().parent
    args = list(targets) or [
        str(src / "core"),
        str(src / "graphs"),
        str(src / "pipeline"),
        str(src / "obs"),
        str(src / "sim"),
        str(src / "workloads"),
    ]
    if root is not None:
        args = ["--config-file", str(root / "pyproject.toml")] + args
    stdout, stderr, status = mypy_api.run(args)
    output = (stdout + stderr).strip()
    return TypeGateReport(ok=status == 0, skipped=False, output=output)
