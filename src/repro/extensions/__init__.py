"""Extensions beyond the paper's core model.

The paper's related-work section (Section II) maps the neighbouring
problem space; this subpackage implements working versions of the three
closest neighbours so the library covers the whole migration story:

* :mod:`repro.extensions.indirect` — migration **with forwarding**
  (Coffman et al., Sanders & Solis-Oba's "helpers"): idle nodes relay
  items, beating the direct-transfer density bound ``Γ'``.
* :mod:`repro.extensions.completion_time` — alternative objectives
  (Kim; Gandhi et al.): minimize the (weighted) sum of item completion
  times, or the sum of per-disk release times, by reordering rounds.
* :mod:`repro.extensions.cloning` — migration **with cloning**
  (Khuller, Kim & Wan): items with destination *sets*; receivers
  become sources, so copies spread gossip-style.
"""

from repro.extensions.indirect import ForwardingResult, forwarding_schedule
from repro.extensions.completion_time import (
    reorder_rounds_by_weight,
    sum_completion_time,
    weighted_sum_completion_time,
)
from repro.extensions.cloning import CloningInstance, gossip_schedule
from repro.extensions.throttle import throttled_schedule, throttle_tradeoff

__all__ = [
    "ForwardingResult",
    "forwarding_schedule",
    "sum_completion_time",
    "weighted_sum_completion_time",
    "reorder_rounds_by_weight",
    "CloningInstance",
    "gossip_schedule",
    "throttled_schedule",
    "throttle_tradeoff",
]
