"""Extensions beyond the paper's core model — one coherent surface.

The paper's related-work section (Section II) maps the neighbouring
problem space; this subpackage implements working versions of the
closest neighbours so the library covers the whole migration story:

* :mod:`repro.extensions.indirect` — migration **with forwarding**
  (Coffman et al., Sanders & Solis-Oba's "helpers"): idle nodes relay
  items, beating the direct-transfer density bound ``Γ'``.
* :mod:`repro.extensions.completion_time` — alternative objectives
  (Kim; Gandhi et al.): minimize the (weighted) sum of item completion
  times, or the sum of per-disk release times, by reordering rounds.
* :mod:`repro.extensions.cloning` — migration **with cloning**
  (Khuller, Kim & Wan): items with destination *sets*; receivers
  become sources, so copies spread gossip-style.
* :mod:`repro.extensions.online` — **online** migration (Aqueduct):
  move batches arrive while earlier ones still execute.
* :mod:`repro.extensions.throttle` — rate-limited migration: cap the
  per-round transfer budget and trade makespan for foreground I/O.

Every extension follows the same shape:

* schedulers return an :class:`ExtensionResult` — an object with
  ``num_rounds`` and ``rounds`` (:class:`ForwardingResult`,
  :class:`CloningResult`, :class:`OnlineReport`, or a plain
  :class:`~repro.core.schedule.MigrationSchedule`);
* each module exports a ``validate_*(instance, result)`` re-checker
  with a uniform two-argument signature that raises
  :class:`~repro.core.errors.ScheduleValidationError` on violations.
"""

from typing import Protocol, Sequence, runtime_checkable

from repro.extensions.cloning import (
    CloningInstance,
    CloningResult,
    best_cloning_schedule,
    cloning_lower_bound,
    gossip_schedule,
    naive_schedule,
    validate_cloning,
)
from repro.extensions.completion_time import (
    disk_release_sum,
    promote_items,
    reorder_rounds_by_weight,
    reorder_rounds_for_disk_release,
    sum_completion_time,
    validate_completion,
    weighted_greedy_schedule,
    weighted_sum_completion_time,
)
from repro.extensions.indirect import (
    ForwardingResult,
    forwarding_schedule,
    validate_forwarding,
)
from repro.extensions.online import (
    OnlineInstance,
    OnlineReport,
    arrivals_to_deltas,
    run_online,
    validate_online,
)
from repro.extensions.throttle import throttle_tradeoff, throttled_schedule


@runtime_checkable
class ExtensionResult(Protocol):
    """What every extension scheduler returns.

    A round-structured outcome: ``rounds`` lists what executed in each
    round (the element type is extension-specific — edge ids, hops, or
    move indices) and ``num_rounds`` counts them.  Satisfied by
    :class:`ForwardingResult`, :class:`CloningResult`,
    :class:`OnlineReport`, and the core
    :class:`~repro.core.schedule.MigrationSchedule`, so generic
    reporting code can treat them interchangeably.
    """

    @property
    def num_rounds(self) -> int: ...

    @property
    def rounds(self) -> Sequence[Sequence[object]]: ...


__all__ = [
    "ExtensionResult",
    # forwarding (indirect migration)
    "ForwardingResult",
    "forwarding_schedule",
    "validate_forwarding",
    # completion-time objectives
    "sum_completion_time",
    "weighted_sum_completion_time",
    "disk_release_sum",
    "reorder_rounds_by_weight",
    "reorder_rounds_for_disk_release",
    "promote_items",
    "weighted_greedy_schedule",
    "validate_completion",
    # cloning (multicast destinations)
    "CloningInstance",
    "CloningResult",
    "cloning_lower_bound",
    "gossip_schedule",
    "naive_schedule",
    "best_cloning_schedule",
    "validate_cloning",
    # online migration
    "OnlineInstance",
    "OnlineReport",
    "arrivals_to_deltas",
    "run_online",
    "validate_online",
    # throttled migration
    "throttled_schedule",
    "throttle_tradeoff",
]
