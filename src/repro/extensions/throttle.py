"""Migration throttling: trading migration time for service headroom.

Operators rarely let migrations use every transfer lane — Aqueduct's
whole point was migrating *under a performance guarantee*.  The
simplest sound throttle in the paper's model reserves a fraction of
each disk's transfer constraint for clients: schedule against
``c'_v = max(1, floor(θ · c_v))`` for a throttle level ``θ ∈ (0, 1]``.
Any schedule feasible for ``c'`` is feasible for ``c``, per-round
interference drops to ≈ θ, and the makespan stretches by ≈ 1/θ.

:func:`throttled_schedule` applies the reduction;
:func:`throttle_tradeoff` computes the (duration, interference) curve
the operator actually chooses on, using the service-degradation model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.pipeline.planner import plan


@dataclass(frozen=True)
class ThrottlePoint:
    """One point on the throttle tradeoff curve."""

    theta: float
    rounds: int
    duration: float
    interference: float
    displacement: float

    @property
    def total_degradation(self) -> float:
        return self.interference + self.displacement


def throttled_capacities(
    instance: MigrationInstance, theta: float
) -> Dict:
    """``c'_v = max(1, floor(θ · c_v))``.

    Raises:
        ValueError: for θ outside (0, 1].
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    return {
        v: max(1, math.floor(theta * c)) for v, c in instance.capacities.items()
    }


def throttled_schedule(
    instance: MigrationInstance, theta: float, method: str = "auto", seed: int = 0
) -> MigrationSchedule:
    """Schedule under reserved client headroom.

    The returned schedule is validated against the *original*
    instance (it is feasible there a fortiori) and tagged with the
    throttle level.
    """
    reduced = MigrationInstance(instance.graph.copy(), throttled_capacities(instance, theta))
    schedule = plan(reduced, method=method, seed=seed).schedule
    tagged = MigrationSchedule(schedule.rounds, method=f"{schedule.method}@θ={theta:g}")
    tagged.validate(instance)
    return tagged


def throttle_tradeoff(
    cluster,
    context,
    thetas: Sequence[float] = (1.0, 0.75, 0.5, 0.25),
    method: str = "auto",
) -> List[ThrottlePoint]:
    """The operator's curve: how much calm does slower migration buy?

    For each θ, schedules under the throttle and evaluates the
    degradation integral (interference + displacement) with the
    cluster's demand snapshot.  Expect interference to fall roughly
    linearly in θ while displacement (and duration) grow as 1/θ.
    """
    from repro.cluster.service import disk_demand, service_degradation

    demand = disk_demand(cluster)
    points: List[ThrottlePoint] = []
    for theta in thetas:
        schedule = throttled_schedule(context.instance, theta, method=method)
        report = service_degradation(
            cluster, context, schedule, demand=demand
        )
        points.append(
            ThrottlePoint(
                theta=theta,
                rounds=schedule.num_rounds,
                duration=report.duration,
                interference=report.interference,
                displacement=report.displacement,
            )
        )
    return points
