"""Space-constrained migration (Hall et al.'s free-space model).

The paper's scheduling model ignores storage space; its predecessor
(Hall, Hartline, Karlin, Saia, Wilkes — SODA'01, cited as [4]) showed
space is the hard part: a move ``u -> v`` can only execute while ``v``
has a free unit, and chains/cycles of full disks can deadlock direct
schedules.  Their remedies: each disk keeps one spare unit, and
*bypass nodes* temporarily park items.

This module layers that model on top of any round schedule:

* :class:`SpaceState` — per-disk occupancy tracking with the
  conservative semantics that space freed by an outgoing item becomes
  available only in the *next* round (simultaneous transfers within a
  round cannot hand off slots).
* :func:`make_space_feasible` — post-processes a capacity-feasible
  schedule into a space-feasible one: within each round it keeps the
  moves whose targets have room, defers the rest, and when a deferred
  set deadlocks (a cycle of full disks) it breaks the cycle by
  *bypassing* one item through a disk with spare space, exactly like
  Hall et al.'s bypass nodes.  Transfer constraints ``c_v`` stay
  respected throughout.
* :func:`space_feasible_rounds` / :func:`validate_space` — checking.

The cost of space-tightness is measured by ``bench_space``: with one
spare unit per disk the overhead stays a small constant factor,
mirroring Hall et al.'s theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.errors import ScheduleValidationError, SolverError
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.multigraph import EdgeId, Node

# A physical hop executed in a round: (item edge id, from, to).
SpaceHop = Tuple[EdgeId, Node, Node]


@dataclass
class SpacePlan:
    """A space-feasible execution of a migration."""

    rounds: List[List[SpaceHop]]
    bypassed_items: Set[EdgeId] = field(default_factory=set)
    base_rounds: int = 0  # the capacity-only schedule's length

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def overhead(self) -> float:
        """Rounds relative to the space-oblivious schedule."""
        return self.num_rounds / self.base_rounds if self.base_rounds else 1.0


class SpaceState:
    """Occupancy bookkeeping for unit-size items on finite disks."""

    def __init__(
        self,
        instance: MigrationInstance,
        occupancy: Mapping[Node, int],
        space: Mapping[Node, int],
    ):
        self.instance = instance
        self.occupancy: Dict[Node, int] = dict(occupancy)
        self.space: Dict[Node, int] = dict(space)
        for v in instance.graph.nodes:
            if v not in self.occupancy:
                raise ScheduleValidationError(f"no occupancy for disk {v!r}")
            if v not in self.space:
                raise ScheduleValidationError(f"no space bound for disk {v!r}")
            if self.occupancy[v] > self.space[v]:
                raise ScheduleValidationError(
                    f"disk {v!r} starts over capacity: {self.occupancy[v]}/{self.space[v]}"
                )

    def free(self, v: Node) -> int:
        return self.space[v] - self.occupancy[v]

    def apply_round(self, hops: List[SpaceHop]) -> None:
        """Execute a round; incoming items need room *before* outgoing
        space frees up (conservative simultaneous semantics)."""
        incoming: Dict[Node, int] = {}
        outgoing: Dict[Node, int] = {}
        for _eid, src, dst in hops:
            outgoing[src] = outgoing.get(src, 0) + 1
            incoming[dst] = incoming.get(dst, 0) + 1
        for v, n in incoming.items():
            if self.occupancy[v] + n > self.space[v]:
                raise ScheduleValidationError(
                    f"disk {v!r} would hold {self.occupancy[v] + n} > {self.space[v]}"
                )
        for v, n in incoming.items():
            self.occupancy[v] += n
        for v, n in outgoing.items():
            self.occupancy[v] -= n


def default_occupancy(instance: MigrationInstance) -> Dict[Node, int]:
    """Occupancy implied by the transfer graph: out-degree items live
    on their source disks (plus nothing else)."""
    occ: Dict[Node, int] = {v: 0 for v in instance.graph.nodes}
    for _eid, u, _v in instance.graph.edges():
        occ[u] += 1
    return occ


def spare_space(
    instance: MigrationInstance, occupancy: Mapping[Node, int], spare: int = 1
) -> Dict[Node, int]:
    """Space bounds giving every disk its final load plus ``spare``.

    A disk must at least fit ``max(start, end)`` occupancy; Hall et
    al.'s one-spare-unit assumption corresponds to ``spare = 1``.
    """
    incoming: Dict[Node, int] = {v: 0 for v in instance.graph.nodes}
    for _eid, _u, v in instance.graph.edges():
        incoming[v] += 1
    return {
        v: max(occupancy[v], incoming[v]) + spare
        for v in instance.graph.nodes
    }


def make_space_feasible(
    instance: MigrationInstance,
    schedule: MigrationSchedule,
    occupancy: Optional[Mapping[Node, int]] = None,
    space: Optional[Mapping[Node, int]] = None,
    max_rounds_factor: int = 6,
) -> SpacePlan:
    """Turn a capacity-feasible schedule into a space-feasible plan.

    Rounds are replayed in order; a move executes when its target has
    room *and* both endpoints still have transfer slots this round.
    Deferred moves retry in later rounds.  If an all-full cycle blocks
    every remaining move, one blocked item is bypassed through a disk
    with free space (costing that item one extra hop), which provably
    unblocks the cycle.

    Raises:
        SolverError: if the plan exceeds ``max_rounds_factor`` times
            the base schedule (indicates space below ``spare=0``
            feasibility).
    """
    occ = dict(occupancy) if occupancy is not None else default_occupancy(instance)
    spc = dict(space) if space is not None else spare_space(instance, occ, spare=1)
    state = SpaceState(instance, occ, spc)
    graph = instance.graph

    # Item state: where each item currently lives and its final target.
    location: Dict[EdgeId, Node] = {}
    target: Dict[EdgeId, Node] = {}
    for eid, u, v in graph.edges():
        location[eid] = u
        target[eid] = v
    # Process items in schedule order; keep a queue of pending items.
    queue: List[EdgeId] = [eid for rnd in schedule.rounds for eid in rnd]
    pending: Set[EdgeId] = set(queue)
    bypassed: Set[EdgeId] = set()

    plan_rounds: List[List[SpaceHop]] = []
    cap_rounds = max(1, max_rounds_factor * max(schedule.num_rounds, 1))

    while pending:
        if len(plan_rounds) >= cap_rounds:
            raise SolverError(
                f"space-feasible plan exceeded {cap_rounds} rounds; "
                "insufficient free space"
            )
        used: Dict[Node, int] = {v: 0 for v in graph.nodes}
        headroom: Dict[Node, int] = {v: state.free(v) for v in graph.nodes}
        hops: List[SpaceHop] = []

        def can_move(src: Node, dst: Node) -> bool:
            return (
                used[src] < instance.capacity(src)
                and used[dst] < instance.capacity(dst)
                and headroom[dst] > 0
            )

        def commit(eid: EdgeId, src: Node, dst: Node) -> None:
            used[src] += 1
            used[dst] += 1
            headroom[dst] -= 1
            hops.append((eid, src, dst))

        moved: Set[EdgeId] = set()
        for eid in queue:
            if eid not in pending or eid in moved:
                continue
            src, dst = location[eid], target[eid]
            if can_move(src, dst):
                commit(eid, src, dst)
                moved.add(eid)

        if not hops:
            # Deadlock: every pending target is full.  Bypass one item
            # through a disk with headroom (Hall et al.'s bypass node).
            broke = False
            for eid in queue:
                if eid not in pending:
                    continue
                src = location[eid]
                if used[src] >= instance.capacity(src):
                    continue
                helper = _pick_bypass(instance, used, headroom, src, target[eid])
                if helper is None:
                    continue
                commit(eid, src, helper)
                location[eid] = helper
                bypassed.add(eid)
                broke = True
                break
            if not broke:
                raise SolverError(
                    "space deadlock with no bypass capacity anywhere; "
                    "add spare space"
                )

        state.apply_round(hops)
        for eid, _src, dst in hops:
            if eid in bypassed and dst != target[eid]:
                continue  # parked on a bypass node, still pending
            if dst == target[eid]:
                pending.discard(eid)
            location[eid] = dst
        # Location updates for bypass hops happened at commit time.
        plan_rounds.append(hops)

    plan = SpacePlan(
        rounds=plan_rounds, bypassed_items=bypassed, base_rounds=schedule.num_rounds
    )
    validate_space(instance, plan, occ, spc)
    return plan


def _pick_bypass(
    instance: MigrationInstance,
    used: Dict[Node, int],
    headroom: Dict[Node, int],
    src: Node,
    final_target: Node,
) -> Optional[Node]:
    """A bypass disk: free slot, free space, not the (full) target."""
    best: Optional[Node] = None
    best_room = 0
    for w in instance.graph.nodes:
        if w in (src, final_target):
            continue
        if used[w] >= instance.capacity(w) or headroom[w] <= 0:
            continue
        if headroom[w] > best_room:
            best, best_room = w, headroom[w]
    return best


def validate_space(
    instance: MigrationInstance,
    plan: SpacePlan,
    occupancy: Mapping[Node, int],
    space: Mapping[Node, int],
) -> None:
    """Re-simulate the plan: capacities, space, continuity, delivery.

    Raises:
        ScheduleValidationError: on any violation.
    """
    graph = instance.graph
    state = SpaceState(instance, occupancy, space)
    location: Dict[EdgeId, Node] = {eid: u for eid, u, _v in graph.edges()}
    for i, hops in enumerate(plan.rounds):
        used: Dict[Node, int] = {}
        for eid, src, dst in hops:
            if location[eid] != src:
                raise ScheduleValidationError(
                    f"round {i}: item {eid} at {location[eid]!r}, hop claims {src!r}"
                )
            used[src] = used.get(src, 0) + 1
            used[dst] = used.get(dst, 0) + 1
            location[eid] = dst
        for v, n in used.items():
            if n > instance.capacity(v):
                raise ScheduleValidationError(
                    f"round {i}: {v!r} in {n} transfers > c_v={instance.capacity(v)}"
                )
        state.apply_round(hops)  # raises on space violation
    for eid, _u, v in graph.edges():
        if location[eid] != v:
            raise ScheduleValidationError(
                f"item {eid} finished at {location[eid]!r}, wanted {v!r}"
            )
