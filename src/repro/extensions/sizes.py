"""Non-uniform item sizes: size-class scheduling.

The paper assumes unit-size items ("each data item has the same
length").  Real migration batches mix metadata blobs with multi-GB
objects, and under the fair-share round model a round lasts as long as
its *largest* transfer — one huge item parked in a round of small ones
stretches the round for everybody.

The classical mitigation is scheduling by *size class*: bucket items
into geometric size classes, schedule each class separately with the
(unit-size-correct) core scheduler, and concatenate.  Each round then
contains items within a factor ``base`` of each other, so at most a
``base`` fraction of each round's time is straggler waste, at the cost
of at most ``#classes`` extra rounds.

* :func:`size_classes` — geometric bucketing.
* :func:`size_class_schedule` — per-class scheduling + concatenation
  (still a valid schedule for the instance: rounds are unions of
  per-class rounds, never merged across classes).
* :func:`simulated_time` — standalone fair-share time evaluator so the
  tradeoff is measurable without building a cluster.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.pipeline.planner import plan
from repro.graphs.multigraph import EdgeId, Node


def size_classes(
    item_sizes: Mapping[EdgeId, float], base: float = 2.0
) -> Dict[int, List[EdgeId]]:
    """Bucket edges into geometric size classes.

    Class ``k`` holds sizes in ``[base^k, base^(k+1))``; sizes must be
    positive.
    """
    if base <= 1.0:
        raise ValueError("base must be > 1")
    buckets: Dict[int, List[EdgeId]] = {}
    for eid, size in item_sizes.items():
        if size <= 0:
            raise ValueError(f"item {eid} has non-positive size {size}")
        k = math.floor(math.log(size, base))
        buckets.setdefault(k, []).append(eid)
    return buckets


def size_class_schedule(
    instance: MigrationInstance,
    item_sizes: Mapping[EdgeId, float],
    base: float = 2.0,
    method: str = "auto",
) -> MigrationSchedule:
    """Schedule each size class separately, largest classes first.

    Returns a validated schedule whose rounds never mix size classes.
    """
    buckets = size_classes(
        {eid: item_sizes.get(eid, 1.0) for eid in instance.graph.edge_ids()},
        base=base,
    )
    all_rounds: List[List[EdgeId]] = []
    for k in sorted(buckets, reverse=True):  # big items first
        sub = instance.graph.edge_subgraph(buckets[k])
        sub_instance = MigrationInstance(sub, {v: instance.capacity(v) for v in sub.nodes})
        sub_schedule = plan(sub_instance, method=method).schedule
        all_rounds.extend(sub_schedule.rounds)
    schedule = MigrationSchedule(all_rounds, method=f"{method}+size_class")
    schedule.validate(instance)
    return schedule


def simulated_time(
    instance: MigrationInstance,
    schedule: MigrationSchedule,
    item_sizes: Mapping[EdgeId, float],
    bandwidths: Optional[Mapping[Node, float]] = None,
) -> float:
    """Fair-share wall-clock of a schedule with per-item sizes.

    Per round: every disk splits its bandwidth over its transfers; a
    transfer runs at the min endpoint share; the round lasts as long as
    its slowest transfer.  (The engine computes the same quantity from
    a cluster; this standalone form needs only the instance.)
    """
    graph = instance.graph
    bw = dict(bandwidths) if bandwidths is not None else {v: 1.0 for v in graph.nodes}
    total = 0.0
    for round_edges in schedule.rounds:
        counts: Dict[Node, int] = {}
        for eid in round_edges:
            u, v = graph.endpoints(eid)
            counts[u] = counts.get(u, 0) + 1
            counts[v] = counts.get(v, 0) + 1
        worst = 0.0
        for eid in round_edges:
            u, v = graph.endpoints(eid)
            rate = min(bw[u] / counts[u], bw[v] / counts[v])
            worst = max(worst, item_sizes.get(eid, 1.0) / rate)
        total += worst
    return total
