"""Data migration with forwarding (bypass/helper nodes).

The core model delivers every item directly, so the density bound
``Γ' = max_S ceil(|E(S)| / floor(Σ_S c_v / 2))`` is unavoidable: a
triangle of single-transfer disks with one item per pair needs 3
rounds even though every disk is busy only 2 rounds' worth.  Coffman
et al. and Sanders & Solis-Oba observed that *forwarding* breaks this:
route one item through an idle helper and the same triangle finishes
in ``Δ' = 2`` rounds (helper receives in round 1, delivers in round 2).

This module implements a greedy forwarding scheduler:

1. each round, pack pending direct deliveries first-fit under the
   transfer constraints (most-constrained items first);
2. with the leftover capacity, forward blocked items to helpers —
   nodes with both a free slot now and small pending load — each item
   forwarding at most once (two hops total, like the classic bypass
   nodes of Hall et al.).

The result is validated hop by hop and benchmarked against the direct
optimum: on ``Γ'``-bound workloads with idle capacity it approaches
``Δ'``, and it never does worse than the direct general algorithm
(the caller gets ``min(direct, forwarded)`` semantics via the
``direct_rounds`` field).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import ScheduleValidationError
from repro.core.lower_bounds import lb1
from repro.core.problem import MigrationInstance
from repro.pipeline.planner import plan
from repro.graphs.multigraph import EdgeId, Node

# A hop: (item edge id, from node, to node).
Hop = Tuple[EdgeId, Node, Node]


@dataclass
class ForwardingResult:
    """Outcome of the forwarding scheduler."""

    rounds: List[List[Hop]]
    forwarded_items: Set[EdgeId]
    direct_rounds: int  # what the direct scheduler needed
    lb1: int            # Δ', valid with or without forwarding

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def improved(self) -> bool:
        return self.num_rounds < self.direct_rounds


def forwarding_schedule(
    instance: MigrationInstance,
    max_rounds: Optional[int] = None,
    direct_method: str = "auto",
) -> ForwardingResult:
    """Schedule with up-to-one-hop forwarding through helper nodes.

    Args:
        instance: the migration instance (items = edges).
        max_rounds: safety cap (default: the direct schedule length —
            forwarding then never loses).
        direct_method: scheduler used for the direct yardstick.

    Returns:
        A validated :class:`ForwardingResult`.
    """
    direct = plan(instance, method=direct_method).schedule
    cap_rounds = max_rounds if max_rounds is not None else max(direct.num_rounds, 1)

    graph = instance.graph
    # Item state: current location and final destination.
    location: Dict[EdgeId, Node] = {}
    dest: Dict[EdgeId, Node] = {}
    for eid, u, v in graph.edges():
        location[eid] = u
        dest[eid] = v
    pending: Set[EdgeId] = set(location)
    forwarded: Set[EdgeId] = set()

    # Remaining sends/receives per node, used to rank helpers.
    def pressure(v: Node) -> float:
        load = sum(1 for e in pending if location[e] == v or dest[e] == v)
        return load / instance.capacity(v)

    rounds: List[List[Hop]] = []
    while pending and len(rounds) < cap_rounds:
        used: Dict[Node, int] = {v: 0 for v in graph.nodes}
        this_round: List[Hop] = []
        moved_this_round: Set[EdgeId] = set()

        def slot_free(v: Node) -> bool:
            return used[v] < instance.capacity(v)

        # Pass 1: direct deliveries, most-constrained endpoints first.
        for eid in sorted(
            pending,
            key=lambda e: -(pressure(location[e]) + pressure(dest[e])),
        ):
            src, dst = location[eid], dest[eid]
            if slot_free(src) and slot_free(dst):
                used[src] += 1
                used[dst] += 1
                this_round.append((eid, src, dst))
                moved_this_round.add(eid)

        # Pass 2: forward blocked items through lightly loaded helpers.
        for eid in sorted(pending - moved_this_round, key=lambda e: -pressure(dest[e])):
            if eid in forwarded:
                continue  # one forward per item (two hops total)
            src, dst = location[eid], dest[eid]
            if not slot_free(src) or slot_free(dst):
                # Forward only when the *destination* is the blocker;
                # otherwise waiting is at least as good.
                continue
            helper = _pick_helper(graph, instance, used, src, dst, pressure)
            if helper is None:
                continue
            used[src] += 1
            used[helper] += 1
            this_round.append((eid, src, helper))
            location[eid] = helper
            forwarded.add(eid)
            moved_this_round.add(eid)

        for eid, _src, to in this_round:
            if to == dest[eid]:
                pending.discard(eid)
                location[eid] = to
            # forwarded hops already updated location above.
        if not this_round:
            # No progress possible under the cap: bail to the direct
            # schedule semantics (caller compares round counts).
            break
        rounds.append(this_round)

    if pending:
        # Could not finish within the cap — report the direct result
        # as the effective plan by signalling no improvement.
        result = ForwardingResult(
            rounds=[], forwarded_items=set(), direct_rounds=direct.num_rounds,
            lb1=lb1(instance),
        )
        return result

    result = ForwardingResult(
        rounds=rounds,
        forwarded_items=forwarded,
        direct_rounds=direct.num_rounds,
        lb1=lb1(instance),
    )
    validate_forwarding(instance, result)
    return result


def _pick_helper(graph, instance, used, src, dst, pressure) -> Optional[Node]:
    """The least-pressured node with a free slot (not src/dst)."""
    best: Optional[Node] = None
    best_score = None
    for w in graph.nodes:
        if w in (src, dst) or used[w] >= instance.capacity(w):
            continue
        score = (pressure(w), repr(w))
        if best_score is None or score < best_score:
            best, best_score = w, score
    return best


def validate_forwarding(instance: MigrationInstance, result: ForwardingResult) -> None:
    """Check hop continuity, delivery and per-round capacities.

    Raises:
        ScheduleValidationError: on any violation.
    """
    if not result.rounds and instance.num_items > 0:
        return  # the "fell back to direct" sentinel
    graph = instance.graph
    location: Dict[EdgeId, Node] = {}
    for eid, u, _v in graph.edges():
        location[eid] = u
    for i, hops in enumerate(result.rounds):
        used: Dict[Node, int] = {}
        for eid, src, to in hops:
            if location[eid] != src:
                raise ScheduleValidationError(
                    f"round {i}: item {eid} hops from {src!r} but is at {location[eid]!r}"
                )
            used[src] = used.get(src, 0) + 1
            used[to] = used.get(to, 0) + 1
            location[eid] = to
        for v, n in used.items():
            if n > instance.capacity(v):
                raise ScheduleValidationError(
                    f"round {i}: node {v!r} does {n} transfers, c_v={instance.capacity(v)}"
                )
    for eid, _u, v in graph.edges():
        if location[eid] != v:
            raise ScheduleValidationError(
                f"item {eid} ended at {location[eid]!r}, wanted {v!r}"
            )
