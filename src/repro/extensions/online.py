"""Online migration: move batches arrive while earlier ones still run.

Aqueduct (Lu, Alvarez & Wilkes, FAST'02 — cited as [12]) runs
migrations *online*, concurrently with new reconfiguration decisions.
This module simulates that regime on the paper's round model.  The
canonical input is a **delta stream** — one
:class:`repro.core.delta.InstanceDelta` per round boundary, the same
vocabulary :func:`repro.plan_delta` and :mod:`repro.workloads.replay`
speak: ``add_moves`` are new demands, ``remove_moves`` cancel pending
demands, ``retarget_moves`` redirect them, and ``capacity_changes``
re-provision disks mid-run.

Policies:

* ``"replan"`` — every round, rebuild a migration instance from all
  pending moves and run the paper's scheduler; execute its first
  round.  Adapts instantly, costs a plan per round; accepts every
  delta kind.
* ``"fifo"`` — plan each batch once on arrival and drain batches in
  order (no interleaving across batches).  Cheap, but a large early
  batch convoys everything behind it; only arrival-only streams make
  sense here (a cancel or retarget would invalidate the queued plans),
  so anything else is rejected.

:class:`OnlineInstance` — the ``arrivals`` mapping-plus-capacities
bundle of the extension surface — survives as a thin adapter over the
delta stream (:meth:`OnlineInstance.deltas` /
:meth:`OnlineInstance.from_deltas`); :func:`validate_online` checks a
finished run against it exactly as before.  Passing a bare
mapping-of-rounds to :func:`run_online` still works but warns once per
process (:func:`repro.compat.warn_once`).

:func:`run_online` reports makespan and per-item response times
(completion round − arrival round); ``bench_online`` compares the
policies under bursty arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.compat import warn_once
from repro.core.delta import DeltaError, InstanceDelta
from repro.core.errors import ScheduleValidationError
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Multigraph, Node
from repro.pipeline.planner import plan

Move = Tuple[Node, Node]
POLICIES = ("replan", "fifo")

#: Everything :func:`run_online` accepts as its workload.
OnlineSource = Union[
    "OnlineInstance",
    Sequence[InstanceDelta],
    Mapping[int, InstanceDelta],
    Mapping[int, Sequence[Move]],
]


def _default_planner(instance: MigrationInstance) -> object:
    """The canonical planner, shaped for the ``planner=`` callback."""
    return plan(instance).schedule


def arrivals_to_deltas(
    arrivals: Mapping[int, Sequence[Move]]
) -> Dict[int, InstanceDelta]:
    """Lift a round -> batch mapping into an arrival-only delta stream."""
    return {
        round_no: InstanceDelta(add_moves=tuple(batch))
        for round_no, batch in arrivals.items()
        if batch
    }


@dataclass(frozen=True)
class OnlineInstance:
    """An online workload: arrival batches plus per-disk constraints.

    Bundles the two mappings :func:`run_online` consumes so the
    extension surface has an instance object to validate against,
    mirroring :class:`~repro.core.problem.MigrationInstance` for the
    offline extensions.  It is a thin adapter over the canonical
    delta-stream form: :meth:`deltas` lifts the arrivals into
    arrival-only :class:`InstanceDelta` values, and
    :meth:`from_deltas` projects an arrival-only stream back.
    """

    arrivals: Mapping[int, Sequence[Move]]
    capacities: Mapping[Node, int]

    def deltas(self) -> Dict[int, InstanceDelta]:
        """The arrival batches as an arrival-only delta stream."""
        return arrivals_to_deltas(self.arrivals)

    @classmethod
    def from_deltas(
        cls,
        deltas: Union[Sequence[InstanceDelta], Mapping[int, InstanceDelta]],
        capacities: Mapping[Node, int],
    ) -> "OnlineInstance":
        """Project an arrival-only delta stream into an instance.

        Raises:
            DeltaError: if any delta carries removes, retargets or
                capacity changes — those have no arrivals-mapping form.
        """
        stream = _as_delta_stream(deltas)
        arrivals: Dict[int, Tuple[Move, ...]] = {}
        for round_no in sorted(stream):
            delta = stream[round_no]
            if (
                delta.remove_moves
                or delta.retarget_moves
                or delta.capacity_changes
            ):
                raise DeltaError(
                    "OnlineInstance only represents arrival-only streams; "
                    f"the delta at round {round_no} edits pending moves"
                )
            if delta.add_moves:
                arrivals[round_no] = delta.add_moves
        return cls(arrivals=arrivals, capacities=capacities)


@dataclass
class OnlineReport:
    """Outcome of an online simulation.

    Satisfies the :class:`repro.extensions.ExtensionResult` protocol:
    ``rounds`` records the executed transfer rounds (lists of global
    move indices, in execution order) and ``num_rounds`` counts them.
    """

    makespan: int = 0
    # move index (global submission order) -> (arrival, completion) rounds.
    timeline: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    plans_computed: int = 0
    #: executed rounds: global move indices, in execution order.
    rounds: List[List[int]] = field(default_factory=list)
    #: global move index -> the (src, dst) move, for re-validation.
    moves: Dict[int, Move] = field(default_factory=dict)
    #: moves cancelled by a ``remove_moves`` entry before executing.
    cancelled: List[int] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Rounds that executed at least one transfer."""
        return len(self.rounds)

    @property
    def response_times(self) -> List[int]:
        return [done - arrived for arrived, done in self.timeline.values()]

    @property
    def mean_response(self) -> float:
        times = self.response_times
        return sum(times) / len(times) if times else 0.0

    @property
    def max_response(self) -> int:
        return max(self.response_times, default=0)


def _as_delta_stream(
    source: Union[Sequence[InstanceDelta], Mapping[int, InstanceDelta]]
) -> Dict[int, InstanceDelta]:
    """Normalize a sequence (index = round) or mapping of deltas."""
    if isinstance(source, Mapping):
        stream = dict(source)
    else:
        stream = dict(enumerate(source))
    for round_no, delta in stream.items():
        if not isinstance(delta, InstanceDelta):
            raise TypeError(
                f"round {round_no}: expected an InstanceDelta, got "
                f"{type(delta).__name__}"
            )
    return {r: d for r, d in stream.items() if not d.is_empty}


def _normalize_source(
    source: OnlineSource, capacities: Optional[Mapping[Node, int]]
) -> Tuple[Dict[int, InstanceDelta], Dict[Node, int]]:
    """Resolve every accepted workload spelling to (deltas, capacities)."""
    if isinstance(source, OnlineInstance):
        if capacities is not None:
            raise ValueError(
                "pass capacities inside the OnlineInstance, not separately"
            )
        return source.deltas(), dict(source.capacities)
    if capacities is None:
        raise ValueError("capacities are required")
    if isinstance(source, Mapping):
        values = list(source.values())
        if values and not all(isinstance(v, InstanceDelta) for v in values):
            warn_once(
                "run_online(arrivals-mapping)",
                "passing a round -> batch-of-moves mapping to run_online is "
                "deprecated; pass a stream of repro.InstanceDelta values "
                "(or an OnlineInstance) instead",
            )
            return arrivals_to_deltas(source), dict(capacities)
    return _as_delta_stream(source), dict(capacities)


def run_online(
    source: OnlineSource,
    capacities: Optional[Mapping[Node, int]] = None,
    policy: str = "replan",
    planner: Callable[[MigrationInstance], object] = _default_planner,
    max_rounds: int = 100_000,
) -> OnlineReport:
    """Simulate online migration under a policy.

    Args:
        source: the workload — a sequence of
            :class:`InstanceDelta` (index = round), a round -> delta
            mapping, an :class:`OnlineInstance` (then leave
            ``capacities`` unset), or the deprecated round -> batch
            mapping (warns once).
        capacities: ``c_v`` for every disk that ever appears.
        policy: ``"replan"`` or ``"fifo"`` (arrival-only streams).
        planner: scheduler used on (sub-)instances; defaults to the
            canonical :func:`repro.plan` pipeline.

    Returns:
        An :class:`OnlineReport`; per-round capacity feasibility is
        asserted during the simulation.

    Raises:
        DeltaError: when a remove or retarget names no pending move,
            or a non-arrival delta is fed to the ``fifo`` policy.
    """
    deltas, caps = _normalize_source(source, capacities)
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected {POLICIES}")
    last_arrival = max(deltas, default=0)
    report = OnlineReport()

    # Global move bookkeeping.
    pending: List[Tuple[int, Move]] = []  # (global index, move)
    next_index = 0
    arrival_round: Dict[int, int] = {}

    # FIFO state: queued (batch plans as lists of rounds of move ids).
    fifo_queue: List[List[List[int]]] = []

    def _latest_pending(move: Move) -> int:
        """Position in ``pending`` of the newest entry matching ``move``."""
        for pos in range(len(pending) - 1, -1, -1):
            if pending[pos][1] == move:
                return pos
        raise DeltaError(f"no pending move matches {move!r}")

    def admit(round_no: int) -> None:
        nonlocal next_index
        delta = deltas.get(round_no)
        if delta is None:
            return
        edits = (
            delta.remove_moves or delta.retarget_moves or delta.capacity_changes
        )
        if policy == "fifo" and edits:
            raise DeltaError(
                "the fifo policy plans each batch once on arrival, so only "
                "arrival-only delta streams are supported; use the replan "
                "policy for cancels, retargets and capacity changes"
            )
        for node, c in delta.capacity_changes:
            caps[node] = c
        for src, old, new in delta.retarget_moves:
            pos = _latest_pending((src, old))
            idx = pending[pos][0]
            pending[pos] = (idx, (src, new))
            report.moves[idx] = (src, new)
        for move in delta.remove_moves:
            pos = _latest_pending(move)
            report.cancelled.append(pending[pos][0])
            del pending[pos]
        if not delta.add_moves:
            return
        ids = []
        for move in delta.add_moves:
            pending.append((next_index, move))
            arrival_round[next_index] = round_no
            report.moves[next_index] = move
            ids.append(next_index)
            next_index += 1
        if policy == "fifo":
            fifo_queue.append(_plan_batch(ids, dict(pending), caps, planner, report))

    def _execute(round_no: int, chosen: List[int]) -> None:
        # Capacity check + mark complete.
        loads: Dict[Node, int] = {}
        by_id = dict(pending)
        for idx in chosen:
            u, v = by_id[idx]
            loads[u] = loads.get(u, 0) + 1
            loads[v] = loads.get(v, 0) + 1
        for v, n in loads.items():
            if n > caps[v]:
                raise ScheduleValidationError(
                    f"online round {round_no}: {v!r} runs {n} > c_v={caps[v]}"
                )
        done = set(chosen)
        pending[:] = [(i, m) for i, m in pending if i not in done]
        report.rounds.append(list(chosen))
        for idx in chosen:
            report.timeline[idx] = (arrival_round[idx], round_no + 1)

    round_no = 0
    while round_no <= last_arrival or pending:
        if round_no >= max_rounds:
            raise ScheduleValidationError("online simulation exceeded round cap")
        admit(round_no)
        if pending:
            if policy == "replan":
                chosen = _replan_first_round(pending, caps, planner, report)
            else:
                chosen = _fifo_next_round(fifo_queue)
            if chosen:
                _execute(round_no, chosen)
        round_no += 1
    report.makespan = round_no
    return report


def _instance_for(
    moves: List[Tuple[int, Move]], capacities: Mapping[Node, int]
) -> Tuple[MigrationInstance, Dict[int, int]]:
    """Build an instance from pending moves; map edge id -> move id."""
    graph = Multigraph(nodes=list(capacities))
    edge_to_move: Dict[int, int] = {}
    for idx, (u, v) in moves:
        eid = graph.add_edge(u, v)
        edge_to_move[eid] = idx
    instance = MigrationInstance(graph, capacities)
    return instance, edge_to_move


def _replan_first_round(
    pending: List[Tuple[int, Move]],
    capacities: Mapping[Node, int],
    planner,
    report: OnlineReport,
) -> List[int]:
    instance, edge_to_move = _instance_for(pending, capacities)
    schedule = planner(instance)
    report.plans_computed += 1
    first = schedule.rounds[0] if schedule.num_rounds else []
    return [edge_to_move[eid] for eid in first]


def _plan_batch(
    ids: List[int],
    by_id: Dict[int, Move],
    capacities: Mapping[Node, int],
    planner,
    report: OnlineReport,
) -> List[List[int]]:
    moves = [(i, by_id[i]) for i in ids]
    instance, edge_to_move = _instance_for(moves, capacities)
    schedule = planner(instance)
    report.plans_computed += 1
    return [[edge_to_move[eid] for eid in rnd] for rnd in schedule.rounds]


def _fifo_next_round(queue: List[List[List[int]]]) -> List[int]:
    while queue:
        if queue[0]:
            return queue[0].pop(0)
        queue.pop(0)
    return []


def validate_online(instance: OnlineInstance, result: OnlineReport) -> None:
    """Re-validate a finished online run against its instance.

    Checks, from the report's recorded rounds alone: every admitted
    move completes, completions never precede arrivals, and no
    recorded round exceeds any disk's ``c_v``.  (An
    :class:`OnlineInstance` is arrival-only by construction, so a
    conforming report never records cancellations.)

    Raises:
        ScheduleValidationError: on any violation.
    """
    admitted = sum(len(batch) for batch in instance.arrivals.values())
    if result.cancelled:
        raise ScheduleValidationError(
            f"{len(result.cancelled)} moves cancelled, but an "
            "arrival-only instance admits no cancellations"
        )
    if len(result.timeline) != admitted:
        raise ScheduleValidationError(
            f"{admitted} moves admitted but {len(result.timeline)} completed"
        )
    for idx, (arrived, done) in result.timeline.items():
        if done <= arrived:
            raise ScheduleValidationError(
                f"move {idx} completed in round {done} before arriving at {arrived}"
            )
    executed = [idx for rnd in result.rounds for idx in rnd]
    if sorted(executed) != sorted(result.timeline):
        raise ScheduleValidationError(
            "recorded rounds and completion timeline disagree"
        )
    for i, rnd in enumerate(result.rounds):
        loads: Dict[Node, int] = {}
        for idx in rnd:
            u, v = result.moves[idx]
            loads[u] = loads.get(u, 0) + 1
            loads[v] = loads.get(v, 0) + 1
        for v, n in loads.items():
            if n > instance.capacities[v]:
                raise ScheduleValidationError(
                    f"recorded round {i}: {v!r} runs {n} > c_v={instance.capacities[v]}"
                )
