"""Online migration: move batches arrive while earlier ones still run.

Aqueduct (Lu, Alvarez & Wilkes, FAST'02 — cited as [12]) runs
migrations *online*, concurrently with new reconfiguration decisions.
This module simulates that regime on the paper's round model: batches
of moves arrive at round boundaries, and a policy decides what each
round executes.

Policies:

* ``"replan"`` — every round, rebuild a migration instance from all
  pending moves and run the paper's scheduler; execute its first
  round.  Adapts instantly, costs a plan per round.
* ``"fifo"`` — plan each batch once on arrival and drain batches in
  order (no interleaving across batches).  Cheap, but a large early
  batch convoys everything behind it.

:func:`run_online` reports makespan and per-item response times
(completion round − arrival round); ``bench_online`` compares the
policies under bursty arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ScheduleValidationError
from repro.core.problem import MigrationInstance
from repro.core.solver import plan_migration
from repro.graphs.multigraph import Multigraph, Node

Move = Tuple[Node, Node]
POLICIES = ("replan", "fifo")


@dataclass
class OnlineReport:
    """Outcome of an online simulation."""

    makespan: int = 0
    # move index (global submission order) -> (arrival, completion) rounds.
    timeline: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    plans_computed: int = 0

    @property
    def response_times(self) -> List[int]:
        return [done - arrived for arrived, done in self.timeline.values()]

    @property
    def mean_response(self) -> float:
        times = self.response_times
        return sum(times) / len(times) if times else 0.0

    @property
    def max_response(self) -> int:
        return max(self.response_times, default=0)


def run_online(
    arrivals: Mapping[int, Sequence[Move]],
    capacities: Mapping[Node, int],
    policy: str = "replan",
    planner: Callable[[MigrationInstance], object] = plan_migration,
    max_rounds: int = 100_000,
) -> OnlineReport:
    """Simulate online migration under a policy.

    Args:
        arrivals: round -> batch of ``(src, dst)`` moves arriving at
            the *start* of that round (round 0 = time zero).
        capacities: ``c_v`` for every disk that ever appears.
        policy: ``"replan"`` or ``"fifo"``.
        planner: scheduler used on (sub-)instances.

    Returns:
        An :class:`OnlineReport`; per-round capacity feasibility is
        asserted during the simulation.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected {POLICIES}")
    last_arrival = max(arrivals, default=0)
    report = OnlineReport()

    # Global move bookkeeping.
    pending: List[Tuple[int, Move]] = []  # (global index, move)
    next_index = 0
    arrival_round: Dict[int, int] = {}

    # FIFO state: queued (batch plans as lists of rounds of move ids).
    fifo_queue: List[List[List[int]]] = []

    def admit(round_no: int) -> None:
        nonlocal next_index
        batch = arrivals.get(round_no, ())
        if not batch:
            return
        ids = []
        for move in batch:
            pending.append((next_index, move))
            arrival_round[next_index] = round_no
            ids.append(next_index)
            next_index += 1
        if policy == "fifo":
            fifo_queue.append(_plan_batch(ids, dict(pending), capacities, planner, report))

    def _execute(round_no: int, chosen: List[int]) -> None:
        # Capacity check + mark complete.
        loads: Dict[Node, int] = {}
        by_id = dict(pending)
        for idx in chosen:
            u, v = by_id[idx]
            loads[u] = loads.get(u, 0) + 1
            loads[v] = loads.get(v, 0) + 1
        for v, n in loads.items():
            if n > capacities[v]:
                raise ScheduleValidationError(
                    f"online round {round_no}: {v!r} runs {n} > c_v={capacities[v]}"
                )
        done = set(chosen)
        pending[:] = [(i, m) for i, m in pending if i not in done]
        for idx in chosen:
            report.timeline[idx] = (arrival_round[idx], round_no + 1)

    round_no = 0
    while round_no <= last_arrival or pending:
        if round_no >= max_rounds:
            raise ScheduleValidationError("online simulation exceeded round cap")
        admit(round_no)
        if pending:
            if policy == "replan":
                chosen = _replan_first_round(pending, capacities, planner, report)
            else:
                chosen = _fifo_next_round(fifo_queue)
            if chosen:
                _execute(round_no, chosen)
        round_no += 1
    report.makespan = round_no
    return report


def _instance_for(
    moves: List[Tuple[int, Move]], capacities: Mapping[Node, int]
) -> Tuple[MigrationInstance, Dict[int, int]]:
    """Build an instance from pending moves; map edge id -> move id."""
    graph = Multigraph(nodes=list(capacities))
    edge_to_move: Dict[int, int] = {}
    for idx, (u, v) in moves:
        eid = graph.add_edge(u, v)
        edge_to_move[eid] = idx
    instance = MigrationInstance(graph, capacities)
    return instance, edge_to_move


def _replan_first_round(
    pending: List[Tuple[int, Move]],
    capacities: Mapping[Node, int],
    planner,
    report: OnlineReport,
) -> List[int]:
    instance, edge_to_move = _instance_for(pending, capacities)
    schedule = planner(instance)
    report.plans_computed += 1
    first = schedule.rounds[0] if schedule.num_rounds else []
    return [edge_to_move[eid] for eid in first]


def _plan_batch(
    ids: List[int],
    by_id: Dict[int, Move],
    capacities: Mapping[Node, int],
    planner,
    report: OnlineReport,
) -> List[List[int]]:
    moves = [(i, by_id[i]) for i in ids]
    instance, edge_to_move = _instance_for(moves, capacities)
    schedule = planner(instance)
    report.plans_computed += 1
    return [[edge_to_move[eid] for eid in rnd] for rnd in schedule.rounds]


def _fifo_next_round(queue: List[List[List[int]]]) -> List[int]:
    while queue:
        if queue[0]:
            return queue[0].pop(0)
        queue.pop(0)
    return []
