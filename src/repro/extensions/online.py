"""Online migration: move batches arrive while earlier ones still run.

Aqueduct (Lu, Alvarez & Wilkes, FAST'02 — cited as [12]) runs
migrations *online*, concurrently with new reconfiguration decisions.
This module simulates that regime on the paper's round model: batches
of moves arrive at round boundaries, and a policy decides what each
round executes.

Policies:

* ``"replan"`` — every round, rebuild a migration instance from all
  pending moves and run the paper's scheduler; execute its first
  round.  Adapts instantly, costs a plan per round.
* ``"fifo"`` — plan each batch once on arrival and drain batches in
  order (no interleaving across batches).  Cheap, but a large early
  batch convoys everything behind it.

:func:`run_online` reports makespan and per-item response times
(completion round − arrival round); ``bench_online`` compares the
policies under bursty arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.errors import ScheduleValidationError
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Multigraph, Node
from repro.pipeline.planner import plan

Move = Tuple[Node, Node]
POLICIES = ("replan", "fifo")


def _default_planner(instance: MigrationInstance) -> object:
    """The canonical planner, shaped for the ``planner=`` callback."""
    return plan(instance).schedule


@dataclass(frozen=True)
class OnlineInstance:
    """An online workload: arrival batches plus per-disk constraints.

    Bundles the two mappings :func:`run_online` consumes so the
    extension surface has an instance object to validate against,
    mirroring :class:`~repro.core.problem.MigrationInstance` for the
    offline extensions.
    """

    arrivals: Mapping[int, Sequence[Move]]
    capacities: Mapping[Node, int]


@dataclass
class OnlineReport:
    """Outcome of an online simulation.

    Satisfies the :class:`repro.extensions.ExtensionResult` protocol:
    ``rounds`` records the executed transfer rounds (lists of global
    move indices, in execution order) and ``num_rounds`` counts them.
    """

    makespan: int = 0
    # move index (global submission order) -> (arrival, completion) rounds.
    timeline: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    plans_computed: int = 0
    #: executed rounds: global move indices, in execution order.
    rounds: List[List[int]] = field(default_factory=list)
    #: global move index -> the (src, dst) move, for re-validation.
    moves: Dict[int, Move] = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        """Rounds that executed at least one transfer."""
        return len(self.rounds)

    @property
    def response_times(self) -> List[int]:
        return [done - arrived for arrived, done in self.timeline.values()]

    @property
    def mean_response(self) -> float:
        times = self.response_times
        return sum(times) / len(times) if times else 0.0

    @property
    def max_response(self) -> int:
        return max(self.response_times, default=0)


def run_online(
    arrivals: Union[Mapping[int, Sequence[Move]], OnlineInstance],
    capacities: Optional[Mapping[Node, int]] = None,
    policy: str = "replan",
    planner: Callable[[MigrationInstance], object] = _default_planner,
    max_rounds: int = 100_000,
) -> OnlineReport:
    """Simulate online migration under a policy.

    Args:
        arrivals: round -> batch of ``(src, dst)`` moves arriving at
            the *start* of that round (round 0 = time zero); or an
            :class:`OnlineInstance` bundling arrivals and capacities
            (then leave ``capacities`` unset).
        capacities: ``c_v`` for every disk that ever appears.
        policy: ``"replan"`` or ``"fifo"``.
        planner: scheduler used on (sub-)instances; defaults to the
            canonical :func:`repro.plan` pipeline.

    Returns:
        An :class:`OnlineReport`; per-round capacity feasibility is
        asserted during the simulation.
    """
    if isinstance(arrivals, OnlineInstance):
        if capacities is not None:
            raise ValueError(
                "pass capacities inside the OnlineInstance, not separately"
            )
        arrivals, capacities = arrivals.arrivals, arrivals.capacities
    if capacities is None:
        raise ValueError("capacities are required")
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected {POLICIES}")
    last_arrival = max(arrivals, default=0)
    report = OnlineReport()

    # Global move bookkeeping.
    pending: List[Tuple[int, Move]] = []  # (global index, move)
    next_index = 0
    arrival_round: Dict[int, int] = {}

    # FIFO state: queued (batch plans as lists of rounds of move ids).
    fifo_queue: List[List[List[int]]] = []

    def admit(round_no: int) -> None:
        nonlocal next_index
        batch = arrivals.get(round_no, ())
        if not batch:
            return
        ids = []
        for move in batch:
            pending.append((next_index, move))
            arrival_round[next_index] = round_no
            report.moves[next_index] = move
            ids.append(next_index)
            next_index += 1
        if policy == "fifo":
            fifo_queue.append(_plan_batch(ids, dict(pending), capacities, planner, report))

    def _execute(round_no: int, chosen: List[int]) -> None:
        # Capacity check + mark complete.
        loads: Dict[Node, int] = {}
        by_id = dict(pending)
        for idx in chosen:
            u, v = by_id[idx]
            loads[u] = loads.get(u, 0) + 1
            loads[v] = loads.get(v, 0) + 1
        for v, n in loads.items():
            if n > capacities[v]:
                raise ScheduleValidationError(
                    f"online round {round_no}: {v!r} runs {n} > c_v={capacities[v]}"
                )
        done = set(chosen)
        pending[:] = [(i, m) for i, m in pending if i not in done]
        report.rounds.append(list(chosen))
        for idx in chosen:
            report.timeline[idx] = (arrival_round[idx], round_no + 1)

    round_no = 0
    while round_no <= last_arrival or pending:
        if round_no >= max_rounds:
            raise ScheduleValidationError("online simulation exceeded round cap")
        admit(round_no)
        if pending:
            if policy == "replan":
                chosen = _replan_first_round(pending, capacities, planner, report)
            else:
                chosen = _fifo_next_round(fifo_queue)
            if chosen:
                _execute(round_no, chosen)
        round_no += 1
    report.makespan = round_no
    return report


def _instance_for(
    moves: List[Tuple[int, Move]], capacities: Mapping[Node, int]
) -> Tuple[MigrationInstance, Dict[int, int]]:
    """Build an instance from pending moves; map edge id -> move id."""
    graph = Multigraph(nodes=list(capacities))
    edge_to_move: Dict[int, int] = {}
    for idx, (u, v) in moves:
        eid = graph.add_edge(u, v)
        edge_to_move[eid] = idx
    instance = MigrationInstance(graph, capacities)
    return instance, edge_to_move


def _replan_first_round(
    pending: List[Tuple[int, Move]],
    capacities: Mapping[Node, int],
    planner,
    report: OnlineReport,
) -> List[int]:
    instance, edge_to_move = _instance_for(pending, capacities)
    schedule = planner(instance)
    report.plans_computed += 1
    first = schedule.rounds[0] if schedule.num_rounds else []
    return [edge_to_move[eid] for eid in first]


def _plan_batch(
    ids: List[int],
    by_id: Dict[int, Move],
    capacities: Mapping[Node, int],
    planner,
    report: OnlineReport,
) -> List[List[int]]:
    moves = [(i, by_id[i]) for i in ids]
    instance, edge_to_move = _instance_for(moves, capacities)
    schedule = planner(instance)
    report.plans_computed += 1
    return [[edge_to_move[eid] for eid in rnd] for rnd in schedule.rounds]


def _fifo_next_round(queue: List[List[List[int]]]) -> List[int]:
    while queue:
        if queue[0]:
            return queue[0].pop(0)
        queue.pop(0)
    return []


def validate_online(instance: OnlineInstance, result: OnlineReport) -> None:
    """Re-validate a finished online run against its instance.

    Checks, from the report's recorded rounds alone: every admitted
    move completes, completions never precede arrivals, and no
    recorded round exceeds any disk's ``c_v``.

    Raises:
        ScheduleValidationError: on any violation.
    """
    admitted = sum(len(batch) for batch in instance.arrivals.values())
    if len(result.timeline) != admitted:
        raise ScheduleValidationError(
            f"{admitted} moves admitted but {len(result.timeline)} completed"
        )
    for idx, (arrived, done) in result.timeline.items():
        if done <= arrived:
            raise ScheduleValidationError(
                f"move {idx} completed in round {done} before arriving at {arrived}"
            )
    executed = [idx for rnd in result.rounds for idx in rnd]
    if sorted(executed) != sorted(result.timeline):
        raise ScheduleValidationError(
            "recorded rounds and completion timeline disagree"
        )
    for i, rnd in enumerate(result.rounds):
        loads: Dict[Node, int] = {}
        for idx in rnd:
            u, v = result.moves[idx]
            loads[u] = loads.get(u, 0) + 1
            loads[v] = loads.get(v, 0) + 1
        for v, n in loads.items():
            if n > instance.capacities[v]:
                raise ScheduleValidationError(
                    f"recorded round {i}: {v!r} runs {n} > c_v={instance.capacities[v]}"
                )
