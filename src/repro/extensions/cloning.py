"""Data migration with cloning (multicast destinations).

Khuller, Kim & Wan (PODS'03) — cited in Section II — generalize the
problem: item ``i`` starts on a source disk and must reach a *set* of
destination disks ``D_i`` (popular items get replicas).  Crucially, a
disk that has already received a copy can immediately re-serve it, so
copies spread gossip-style and ``|D_i|`` destinations need only
``ceil(log2(|D_i| + 1))`` rounds of dedicated capacity rather than
``|D_i|``.

This module implements the capacitated variant consistent with the
paper's model (disk ``v`` joins at most ``c_v`` transfers per round):

* :class:`CloningInstance` — items with a source and destination set;
* :func:`cloning_lower_bound` — two bounds: per-disk transfer pressure
  (receives must land on each destination; each source must ship at
  least one copy out) and the broadcast bound
  ``max_i ceil(log2(|D_i| + 1))``;
* :func:`gossip_schedule` — a greedy round-by-round scheduler: every
  round, pending (item, destination) pairs are matched to current
  holders, rarest-copies-first, respecting every ``c_v``;
* :func:`naive_schedule` — the no-cloning baseline (all copies ship
  from the original source), showing the gossip speedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.core.errors import InvalidInstanceError, ScheduleValidationError

ItemId = Hashable
Node = Hashable
# A transfer: (item, from holder, to destination).
CloneHop = Tuple[ItemId, Node, Node]


@dataclass(frozen=True)
class CloneItem:
    """One item with a source and a destination set."""

    item_id: ItemId
    source: Node
    destinations: FrozenSet[Node]


class CloningInstance:
    """Items with destination sets plus per-disk transfer constraints."""

    def __init__(
        self,
        items: Mapping[ItemId, Tuple[Node, Set[Node]]],
        capacities: Mapping[Node, int],
    ):
        self._items: Dict[ItemId, CloneItem] = {}
        self._capacities = dict(capacities)
        for item_id, (source, dests) in items.items():
            dset = frozenset(dests) - {source}
            if not dset:
                raise InvalidInstanceError(
                    f"item {item_id!r} has no destination besides its source"
                )
            for v in dset | {source}:
                if v not in self._capacities:
                    raise InvalidInstanceError(f"node {v!r} has no capacity")
                if not isinstance(self._capacities[v], int) or self._capacities[v] < 1:
                    raise InvalidInstanceError(
                        f"capacity of {v!r} must be a positive int"
                    )
            self._items[item_id] = CloneItem(item_id, source, dset)

    @property
    def items(self) -> Dict[ItemId, CloneItem]:
        return dict(self._items)

    def capacity(self, v: Node) -> int:
        return self._capacities[v]

    @property
    def nodes(self) -> List[Node]:
        return list(self._capacities)

    @property
    def total_copies(self) -> int:
        return sum(len(it.destinations) for it in self._items.values())


class CloningResult(List[List[CloneHop]]):
    """A cloning schedule: a list of rounds of hops.

    A ``list`` subclass, so everything that consumed the old plain
    list return value keeps working; additionally satisfies the
    :class:`repro.extensions.ExtensionResult` protocol via
    ``num_rounds`` and ``rounds``.
    """

    @property
    def num_rounds(self) -> int:
        return len(self)

    @property
    def rounds(self) -> List[List[CloneHop]]:
        return list(self)


def cloning_lower_bound(instance: CloningInstance) -> int:
    """``max(pressure bound, broadcast bound)``.

    * Pressure: destination ``v`` must *receive* one copy of every item
      wanting it; with ``c_v`` slots per round that takes
      ``ceil(receives_v / c_v)`` rounds (sends from ``v`` only add).
    * Broadcast: each holder sends at most ``c_v`` copies per round, so
      an item's copy count multiplies by at most ``1 + c_max`` per
      round: ``|D_i|`` destinations need at least
      ``ceil(log_{1+c_max}(|D_i| + 1))`` rounds.
    """
    receives: Dict[Node, int] = {}
    for item in instance.items.values():
        for v in item.destinations:
            receives[v] = receives.get(v, 0) + 1
    pressure = max(
        (math.ceil(n / instance.capacity(v)) for v, n in receives.items()),
        default=0,
    )
    c_max = max((instance.capacity(v) for v in instance.nodes), default=1)
    broadcast = max(
        (
            math.ceil(math.log(len(item.destinations) + 1, 1 + c_max) - 1e-12)
            for item in instance.items.values()
        ),
        default=0,
    )
    return max(pressure, broadcast)


def gossip_schedule(instance: CloningInstance, max_rounds: int = 10_000) -> CloningResult:
    """Greedy gossip scheduling: holders double the copy count.

    Each round, pending ``(item, destination)`` pairs are served
    rarest-item-first: items with few holders and many pending
    destinations get priority, and each holder/destination consumes a
    transfer slot.  Validated before returning.
    """
    holders: Dict[ItemId, Set[Node]] = {
        item_id: {item.source} for item_id, item in instance.items.items()
    }
    pending: Dict[ItemId, Set[Node]] = {
        item_id: set(item.destinations) for item_id, item in instance.items.items()
    }

    rounds: CloningResult = CloningResult()
    while any(pending.values()):
        if len(rounds) >= max_rounds:
            raise ScheduleValidationError("gossip scheduler exceeded round cap")
        used: Dict[Node, int] = {v: 0 for v in instance.nodes}
        this_round: List[CloneHop] = []
        receiving: Set[Tuple[ItemId, Node]] = set()

        def slot(v: Node) -> bool:
            return used[v] < instance.capacity(v)

        # Rarest-first: fewest holders relative to remaining demand.
        order = sorted(
            (item_id for item_id, dests in pending.items() if dests),
            key=lambda i: (len(holders[i]) / max(1, len(pending[i])), repr(i)),
        )
        for item_id in order:
            for dst in sorted(pending[item_id], key=repr):
                if (item_id, dst) in receiving or not slot(dst):
                    continue
                src = next(
                    (h for h in sorted(holders[item_id], key=repr) if slot(h)),
                    None,
                )
                if src is None:
                    continue
                used[src] += 1
                used[dst] += 1
                this_round.append((item_id, src, dst))
                receiving.add((item_id, dst))
        if not this_round:
            raise ScheduleValidationError("gossip scheduler stalled (capacities < 1?)")
        for item_id, _src, dst in this_round:
            holders[item_id].add(dst)
            pending[item_id].discard(dst)
        rounds.append(this_round)

    validate_cloning(instance, rounds)
    return rounds


def naive_schedule(instance: CloningInstance) -> CloningResult:
    """No-cloning baseline: every copy ships from the original source."""
    pending: List[CloneHop] = [
        (item.item_id, item.source, dst)
        for item in instance.items.values()
        for dst in sorted(item.destinations, key=repr)
    ]
    rounds: CloningResult = CloningResult()
    while pending:
        used: Dict[Node, int] = {v: 0 for v in instance.nodes}
        this_round: List[CloneHop] = []
        rest: List[CloneHop] = []
        for hop in pending:
            _item, src, dst = hop
            if used[src] < instance.capacity(src) and used[dst] < instance.capacity(dst):
                used[src] += 1
                used[dst] += 1
                this_round.append(hop)
            else:
                rest.append(hop)
        pending = rest
        rounds.append(this_round)
    validate_cloning(instance, rounds)
    return rounds


def best_cloning_schedule(instance: CloningInstance) -> CloningResult:
    """The better of gossip and naive for this instance.

    Gossip wins whenever destination sets are large (copies double);
    naive's FIFO packing can win on many small-fanout items where
    rarest-first ordering misallocates slots.  Both are valid, so the
    shorter one is returned.
    """
    gossip = gossip_schedule(instance)
    naive = naive_schedule(instance)
    return gossip if len(gossip) <= len(naive) else naive


def validate_cloning(instance: CloningInstance, rounds: List[List[CloneHop]]) -> None:
    """Senders must hold the item; capacities hold; everyone is served.

    Raises:
        ScheduleValidationError: on any violation.
    """
    holders: Dict[ItemId, Set[Node]] = {
        item_id: {item.source} for item_id, item in instance.items.items()
    }
    for i, hops in enumerate(rounds):
        used: Dict[Node, int] = {}
        new_holders: List[Tuple[ItemId, Node]] = []
        for item_id, src, dst in hops:
            if src not in holders[item_id]:
                raise ScheduleValidationError(
                    f"round {i}: {src!r} sends item {item_id!r} it does not hold"
                )
            used[src] = used.get(src, 0) + 1
            used[dst] = used.get(dst, 0) + 1
            new_holders.append((item_id, dst))
        for v, n in used.items():
            if n > instance.capacity(v):
                raise ScheduleValidationError(
                    f"round {i}: node {v!r} in {n} transfers, c_v={instance.capacity(v)}"
                )
        for item_id, dst in new_holders:
            holders[item_id].add(dst)
    for item_id, item in instance.items.items():
        missing = item.destinations - holders[item_id]
        if missing:
            raise ScheduleValidationError(
                f"item {item_id!r} never reached {sorted(missing, key=repr)}"
            )
