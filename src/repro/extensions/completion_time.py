"""Alternative objectives: (weighted) sum of completion times.

Kim (J. of Algorithms 2005) and Gandhi et al. studied migration under
sum-of-completion-time objectives: the item finishing in round ``r``
contributes ``r`` (1-indexed) — weighted by priority when items
differ — and a disk is "released" (returns to serving traffic at full
speed) after its last scheduled round.

Any makespan-optimal schedule can be post-processed for these
objectives *without* changing its round count: permuting rounds keeps
feasibility (rounds are independent capacity-respecting subgraphs) and
only re-times completions.  For the sum of (weighted) item completion
times the optimal permutation is classical: order rounds by decreasing
total weight (an exchange argument — swapping a lighter-earlier round
with a heavier-later one reduces cost).  For the sum of per-disk
release times we run a greedy-plus-local-search heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.multigraph import EdgeId, Node


def sum_completion_time(schedule: MigrationSchedule) -> int:
    """Σ over items of the (1-indexed) round in which they move."""
    return sum(
        (i + 1) * len(rnd) for i, rnd in enumerate(schedule.rounds)
    )


def weighted_sum_completion_time(
    schedule: MigrationSchedule, weights: Mapping[EdgeId, float]
) -> float:
    """Σ over items of ``weight · completion round`` (1-indexed)."""
    total = 0.0
    for i, rnd in enumerate(schedule.rounds):
        for eid in rnd:
            total += (i + 1) * weights.get(eid, 1.0)
    return total


def disk_release_sum(schedule: MigrationSchedule, instance: MigrationInstance) -> int:
    """Σ over disks of the round after which the disk is idle again.

    Disks that never transfer contribute 0.
    """
    last: Dict[Node, int] = {}
    for i, rnd in enumerate(schedule.rounds):
        for eid in rnd:
            u, v = instance.graph.endpoints(eid)
            last[u] = i + 1
            last[v] = i + 1
    return sum(last.values())


def reorder_rounds_by_weight(
    schedule: MigrationSchedule,
    weights: Optional[Mapping[EdgeId, float]] = None,
) -> MigrationSchedule:
    """Optimal round order for the (weighted) sum of completion times.

    Orders rounds by decreasing total weight (count when unweighted).
    The makespan is untouched; the permutation preserves feasibility
    because rounds are independent.
    """
    def weight_of(rnd: Sequence[EdgeId]) -> float:
        if weights is None:
            return float(len(rnd))
        return sum(weights.get(eid, 1.0) for eid in rnd)

    ordered = sorted(schedule.rounds, key=weight_of, reverse=True)
    return MigrationSchedule(ordered, method=f"{schedule.method}+wsct")


def weighted_greedy_schedule(
    instance: MigrationInstance,
    weights: Optional[Mapping[EdgeId, float]] = None,
) -> MigrationSchedule:
    """Build rounds greedily in weight order (priority-first packing).

    The classical greedy for weighted completion times: fill round
    after round first-fit over the items sorted by descending weight,
    so heavy items complete as early as the constraints allow.  Unlike
    the post-processing passes this may use more rounds than the
    makespan optimum (it never looks ahead); it trades makespan for
    priority latency, which ``bench_ablations`` quantifies.
    """
    graph = instance.graph

    def weight(eid: EdgeId) -> float:
        return weights.get(eid, 1.0) if weights is not None else 1.0

    pending = sorted(graph.edge_ids(), key=lambda e: (-weight(e), e))
    rounds: List[List[EdgeId]] = []
    while pending:
        load: Dict[Node, int] = {}
        this_round: List[EdgeId] = []
        leftover: List[EdgeId] = []
        for eid in pending:
            u, v = graph.endpoints(eid)
            if (
                load.get(u, 0) < instance.capacity(u)
                and load.get(v, 0) < instance.capacity(v)
            ):
                load[u] = load.get(u, 0) + 1
                load[v] = load.get(v, 0) + 1
                this_round.append(eid)
            else:
                leftover.append(eid)
        rounds.append(this_round)
        pending = leftover

    schedule = MigrationSchedule(rounds, method="weighted_greedy")
    schedule.validate(instance)
    return schedule


def promote_items(
    schedule: MigrationSchedule,
    instance: MigrationInstance,
    weights: Optional[Mapping[EdgeId, float]] = None,
) -> MigrationSchedule:
    """Move individual items into earlier rounds with capacity slack.

    Round permutation (:func:`reorder_rounds_by_weight`) treats rounds
    as atomic; this finer pass relocates single edges: processing items
    heaviest-first, each jumps to the earliest round where both its
    endpoints still have free transfer slots.  The makespan never
    grows, feasibility is preserved by construction, and the weighted
    sum of completion times never increases (every move is to a
    strictly earlier round).
    """
    rounds = [list(r) for r in schedule.rounds]
    graph = instance.graph
    # loads[i][v]: transfers of disk v in round i.
    loads: List[Dict[Node, int]] = []
    for rnd in rounds:
        load: Dict[Node, int] = {}
        for eid in rnd:
            u, v = graph.endpoints(eid)
            load[u] = load.get(u, 0) + 1
            load[v] = load.get(v, 0) + 1
        loads.append(load)

    position: Dict[EdgeId, int] = {
        eid: i for i, rnd in enumerate(rounds) for eid in rnd
    }

    def weight(eid: EdgeId) -> float:
        return weights.get(eid, 1.0) if weights is not None else 1.0

    for eid in sorted(position, key=lambda e: (-weight(e), e)):
        here = position[eid]
        u, v = graph.endpoints(eid)
        for earlier in range(here):
            if (
                loads[earlier].get(u, 0) < instance.capacity(u)
                and loads[earlier].get(v, 0) < instance.capacity(v)
            ):
                rounds[here].remove(eid)
                rounds[earlier].append(eid)
                for node in (u, v):
                    loads[here][node] -= 1
                    loads[earlier][node] = loads[earlier].get(node, 0) + 1
                position[eid] = earlier
                break

    promoted = MigrationSchedule(rounds, method=f"{schedule.method}+promote")
    promoted.validate(instance)
    return promoted


def validate_completion(
    instance: MigrationInstance, result: MigrationSchedule
) -> None:
    """Validate a completion-time-optimized schedule against its instance.

    The uniform ``validate(instance, result)`` entry point of the
    extension surface: the reordering/promotion passes return ordinary
    :class:`~repro.core.schedule.MigrationSchedule` objects, so this
    delegates to the schedule's own feasibility check (every item moves
    exactly once, every round respects each ``c_v``).

    Raises:
        ScheduleValidationError: on any violation.
    """
    result.validate(instance)


def reorder_rounds_for_disk_release(
    schedule: MigrationSchedule,
    instance: MigrationInstance,
    passes: int = 3,
) -> MigrationSchedule:
    """Heuristic round order minimizing the sum of disk release times.

    Greedy construction (place last the round whose disks are busiest
    elsewhere, freeing narrow disks early) followed by adjacent-swap
    local search.  The makespan never changes.
    """
    rounds = [list(r) for r in schedule.rounds]
    if len(rounds) <= 1:
        return MigrationSchedule(rounds, method=f"{schedule.method}+release")

    def cost(order: List[List[EdgeId]]) -> int:
        return disk_release_sum(
            MigrationSchedule(order, method="tmp"), instance
        )

    # Initial order: rounds touching many disks go first, so narrow
    # rounds (whose disks then release) can sit late without holding
    # many disks hostage.
    def disks_touched(rnd: List[EdgeId]) -> int:
        nodes = set()
        for eid in rnd:
            nodes.update(instance.graph.endpoints(eid))
        return len(nodes)

    order = sorted(rounds, key=disks_touched, reverse=True)

    # Local search: adjacent swaps until no improvement (bounded passes).
    improved = True
    sweep = 0
    while improved and sweep < passes:
        improved = False
        sweep += 1
        for i in range(len(order) - 1):
            candidate = order[:]
            candidate[i], candidate[i + 1] = candidate[i + 1], candidate[i]
            if cost(candidate) < cost(order):
                order = candidate
                improved = True
    return MigrationSchedule(order, method=f"{schedule.method}+release")
