"""Batching repair demands into plannable transfer graphs.

A disk failure (or a latent scrub error) leaves items with missing
fragments.  Each missing fragment is one :class:`RepairDemand`; a
batch of demands becomes one :class:`~repro.core.problem.MigrationInstance`
whose edges are the *reads* the rebuild performs: every demand gets a
target disk from the placement policy and ``repair_fanin`` source
reads from surviving holders, and each read is one transfer-graph
edge (source disk → target disk) subject to the per-disk transfer
constraints ``c_v`` — exactly the paper's scheduling problem, arriving
continuously instead of once.

The instance's nodes are only the *participating* disks.  The plan
fingerprint (:func:`repro.pipeline.canonical.fingerprint`) canonicalizes
away edge ids and item identities but keys on the disk labels and
their capacities, so recurring incidents over the same disks — the
common case for scrub-driven repairs and re-sweeps after a failed
restore — hit the :class:`~repro.pipeline.cache.PlanCache` even though
every sweep rebuilds the graph from scratch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import EdgeId, Multigraph
from repro.sim.placement import FleetView, PlacementPolicy
from repro.sim.redundancy import RedundancyScheme


@dataclass(frozen=True)
class RepairDemand:
    """One missing fragment that must be rebuilt somewhere.

    Attributes:
        item_id: the degraded item.
        frag_index: which fragment of the item was lost.
        holders: disks holding the item's surviving fragments, sorted.
        lost: fragments of this item currently missing (drives the
            scheme's repair fan-in, e.g. LRC local vs. global repair).
    """

    item_id: str
    frag_index: int
    holders: Tuple[str, ...]
    lost: int


@dataclass(frozen=True)
class RepairEdge:
    """What one transfer-graph edge means: a read feeding a rebuild."""

    item_id: str
    frag_index: int
    source: str
    target: str


@dataclass
class RepairPlanSpec:
    """A batched repair ready for :func:`repro.plan`.

    Attributes:
        instance: transfer graph over participating disks only.
        edge_meta: edge id → the read it performs.
        target_of: ``(item_id, frag_index)`` → disk receiving the
            rebuilt fragment.
        unplaceable: demands no alive disk could accept (they stay
            degraded and are retried on the next incident).
    """

    instance: MigrationInstance
    edge_meta: Dict[EdgeId, RepairEdge] = field(default_factory=dict)
    target_of: Dict[Tuple[str, int], str] = field(default_factory=dict)
    unplaceable: List[RepairDemand] = field(default_factory=list)

    @property
    def num_transfers(self) -> int:
        return len(self.edge_meta)


def build_repair_instance(
    demands: Sequence[RepairDemand],
    scheme: RedundancyScheme,
    policy: PlacementPolicy,
    view: FleetView,
    rng: random.Random,
    transfer_limits: Mapping[str, int],
) -> RepairPlanSpec:
    """Batch ``demands`` into one transfer graph.

    Demands are processed in sorted ``(item_id, frag_index)`` order so
    the resulting graph — and therefore the plan fingerprint — is a
    deterministic function of the demand set.  For each demand the
    policy picks a target (excluding current holders and targets
    already chosen for the same item, since fragments must live on
    distinct disks), and ``min(repair_fanin, surviving holders)``
    least-loaded holders are read.

    Args:
        transfer_limits: ``c_v`` per disk id for every disk that may
            participate.
    """
    graph = Multigraph()
    spec = RepairPlanSpec(instance=MigrationInstance(Multigraph(), {}))
    load: Dict[str, int] = {}
    chosen_for_item: Dict[str, List[str]] = {}

    for demand in sorted(demands, key=lambda d: (d.item_id, d.frag_index)):
        exclude = list(demand.holders) + chosen_for_item.get(demand.item_id, [])
        target = policy.repair_target(demand.item_id, exclude, view, rng)
        if target is None or not demand.holders:
            spec.unplaceable.append(demand)
            continue
        chosen_for_item.setdefault(demand.item_id, []).append(target)
        spec.target_of[(demand.item_id, demand.frag_index)] = target

        fanin = min(scheme.repair_fanin(demand.lost), len(demand.holders))
        sources = sorted(
            demand.holders, key=lambda d: (load.get(d, 0), d)
        )[:fanin]
        for source in sources:
            eid = graph.add_edge(source, target)
            spec.edge_meta[eid] = RepairEdge(
                item_id=demand.item_id,
                frag_index=demand.frag_index,
                source=source,
                target=target,
            )
            load[source] = load.get(source, 0) + 1
            load[target] = load.get(target, 0) + 1

    capacities = {v: transfer_limits[str(v)] for v in graph.nodes}
    spec.instance = MigrationInstance(graph, capacities)
    return spec


def repair_traffic(spec: RepairPlanSpec, scheme: RedundancyScheme, item_size: float) -> float:
    """Total bytes read over the network by this repair batch."""
    return len(spec.edge_meta) * scheme.fragment_size(item_size)
