"""repro.sim — deterministic failure-and-recovery cluster simulator.

The first closed-loop workload for the staged planner: a discrete-event
simulation where disk failures, latent scrub errors and replacements
continuously generate repair transfer graphs that are planned through
:func:`repro.plan` (with its cache warm across structurally-recurring
incidents) and executed on the simulated clock with
:mod:`repro.cluster.network` rate models.  Durability — data-loss
events, under-replicated item-time, repair bandwidth, per-incident
makespan — is the output metric, and planner latency and schedule
quality feed directly into it.

Quickstart::

    from repro.sim import SimConfig, run_campaign

    report = run_campaign(SimConfig(seed=7, scheme="rs6+3", placement="spread"))
    print(report.render())
    print(report.summary["data_loss_events"])

Module map:

* :mod:`repro.sim.topology` — rack/machine/disk-slot grid, replacement
  disk identities, fabric export.
* :mod:`repro.sim.redundancy` — replication / Reed–Solomon / LRC as
  placement and repair-cost models.
* :mod:`repro.sim.placement` — random / spread / copyset placement
  policies over a :class:`FleetView`.
* :mod:`repro.sim.events` — event types and the deterministic queue.
* :mod:`repro.sim.repair` — batching repair demands into plannable
  :class:`~repro.core.problem.MigrationInstance`\\ s.
* :mod:`repro.sim.engine` — the event loop, fleet/data state and
  durability accounting.
* :mod:`repro.sim.report` — canonical-JSON reports and policy
  comparison tables.
"""

from repro.sim.engine import Incident, SimConfig, SimEngine, derive_seed
from repro.sim.events import (
    DiskFailed,
    EventQueue,
    FragmentRestored,
    RepairFinished,
    ReplacementArrived,
    ScrubTick,
    SimEvent,
)
from repro.sim.placement import (
    DEFAULT_POLICY_SPECS,
    CopysetPlacement,
    FleetView,
    PlacementError,
    PlacementPolicy,
    RandomPlacement,
    SpreadPlacement,
    build_policy,
)
from repro.sim.redundancy import (
    DEFAULT_SCHEME_SPECS,
    LocalReconstruction,
    RedundancyScheme,
    ReedSolomon,
    Replication,
    parse_scheme,
)
from repro.sim.repair import (
    RepairDemand,
    RepairEdge,
    RepairPlanSpec,
    build_repair_instance,
)
from repro.sim.report import (
    SimReport,
    build_report,
    compare_policies,
    policy_table,
    run_campaign,
)
from repro.sim.topology import SimTopology, replacement_id, slot_of

__all__ = [
    "SimConfig",
    "SimEngine",
    "SimReport",
    "SimTopology",
    "Incident",
    "EventQueue",
    "SimEvent",
    "DiskFailed",
    "ReplacementArrived",
    "ScrubTick",
    "FragmentRestored",
    "RepairFinished",
    "RedundancyScheme",
    "Replication",
    "ReedSolomon",
    "LocalReconstruction",
    "parse_scheme",
    "DEFAULT_SCHEME_SPECS",
    "FleetView",
    "PlacementPolicy",
    "PlacementError",
    "RandomPlacement",
    "SpreadPlacement",
    "CopysetPlacement",
    "build_policy",
    "DEFAULT_POLICY_SPECS",
    "RepairDemand",
    "RepairEdge",
    "RepairPlanSpec",
    "build_repair_instance",
    "build_report",
    "run_campaign",
    "compare_policies",
    "policy_table",
    "derive_seed",
    "replacement_id",
    "slot_of",
]
