"""The closed-loop failure-and-recovery simulation engine.

:class:`SimEngine` is a deterministic discrete-event simulator.  Disks
fail (randomly via a seeded exponential process, or on a script reusing
:class:`repro.runtime.faults.DiskCrash`), scrubbing surfaces latent
single-fragment errors, and replacements arrive after a fixed delay.
Every loss turns into repair demands that are batched into one
transfer graph per incident (:mod:`repro.sim.repair`), planned through
:func:`repro.plan` — so the staged planner, its cache and its schedule
quality sit *inside* the durability feedback loop — and executed
against the simulated clock with a :mod:`repro.cluster.network` rate
model.  The longer planning and transfers take, the longer items stay
under-replicated and the likelier a second failure lands before repair
completes.

Determinism contract: a campaign is a pure function of its
:class:`SimConfig`.  All randomness flows from ``random.Random``
instances seeded by sha256-derived integers (never hash()-dependent
values), every set iteration is sorted, the event queue is totally
ordered, and planning latency is *modeled*
(``plan_alpha + plan_beta · transfers`` sim-seconds) rather than
measured, so report bytes are identical across processes and
``PYTHONHASHSEED`` values.  Real planner wall-time is measured only by
the benchmark harness, outside the simulated clock.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.disk import Disk
from repro.cluster.item import DataItem
from repro.cluster.layout import Layout
from repro.cluster.network import FabricRates, FairShareRates, RateModel
from repro.cluster.system import MigrationPlanContext, StorageCluster
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import EdgeId
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, ensure_tracer
from repro.pipeline import PlanCache, plan
from repro.runtime.faults import DiskCrash
from repro.sim.events import (
    DiskFailed,
    EventQueue,
    FragmentRestored,
    RepairFinished,
    ReplacementArrived,
    ScrubTick,
    SimEvent,
)
from repro.sim.placement import PlacementPolicy, build_policy
from repro.sim.redundancy import RedundancyScheme, parse_scheme
from repro.sim.repair import RepairDemand, RepairEdge, build_repair_instance
from repro.sim.topology import SimTopology, slot_of

#: Fixed histogram boundaries for per-incident repair makespans
#: (sim-seconds); fixed so reports from different campaigns compare.
MAKESPAN_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0
)

#: A fragment is identified by its item and fragment index.
FragKey = Tuple[str, int]


def derive_seed(seed: int, stream: str) -> int:
    """A stable per-stream integer seed.

    Derived via sha256 over ``"{seed}:{stream}"`` — *never* via tuple
    hashing, which would vary with ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


@dataclass(frozen=True)
class SimConfig:
    """Everything that defines a campaign (and thus its report bytes).

    Attributes:
        racks, machines_per_rack, disks_per_machine: fleet topology.
        transfer_limit: per-disk ``c_v`` for repair scheduling.
        bandwidth: per-disk migration bandwidth (size units / sim-sec).
        uplink_bandwidth: per-rack uplink capacity for the fabric rate
            model.
        fabric: charge cross-rack repair traffic to rack uplinks
            (:class:`~repro.cluster.network.FabricRates`); otherwise
            disks are the only bottleneck.
        items: number of user items placed at time zero.
        item_size: size of each item (fragments are
            ``item_size / required_fragments``).
        scheme: redundancy spec (``rep3`` / ``rs6+3`` / ``lrc6+2+2``).
        placement: placement policy spec (``random`` / ``spread`` /
            ``copyset``).
        duration: simulation horizon in sim-seconds.
        seed: master seed; every RNG stream derives from it.
        failure_rate: per-disk exponential failure rate (failures per
            sim-second); 0 disables random failures.
        crashes: scripted failures (:class:`~repro.runtime.faults.DiskCrash`,
            shared with the runtime executor's fault plans).
        replacement_delay: sim-seconds until a failed disk's slot is
            re-occupied by an empty replacement.
        scrub_interval: per-disk scrub period; 0 disables scrubbing.
        latent_error_rate: probability a scrub pass finds (and loses)
            one fragment on the scanned disk.
        method: planner method passed to :func:`repro.plan`.
        plan_alpha, plan_beta: modeled planning latency
            ``alpha + beta · transfers`` sim-seconds, charged before a
            repair's first transfer starts.
    """

    racks: int = 3
    machines_per_rack: int = 2
    disks_per_machine: int = 4
    transfer_limit: int = 2
    bandwidth: float = 1.0
    uplink_bandwidth: float = 8.0
    fabric: bool = True
    items: int = 100
    item_size: float = 1.0
    scheme: str = "rep3"
    placement: str = "spread"
    duration: float = 1000.0
    seed: int = 0
    failure_rate: float = 0.001
    crashes: Tuple[DiskCrash, ...] = ()
    replacement_delay: float = 50.0
    scrub_interval: float = 200.0
    latent_error_rate: float = 0.05
    method: str = "auto"
    plan_alpha: float = 0.5
    plan_beta: float = 0.01

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.items < 0:
            raise ValueError("items must be >= 0")
        if self.failure_rate < 0:
            raise ValueError("failure_rate must be >= 0")
        if not 0.0 <= self.latent_error_rate <= 1.0:
            raise ValueError("latent_error_rate must be in [0, 1]")
        if self.replacement_delay < 0:
            raise ValueError("replacement_delay must be >= 0")
        if self.plan_alpha < 0 or self.plan_beta < 0:
            raise ValueError("plan latency coefficients must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready echo of the configuration (keys sorted)."""
        plain = {
            "racks": self.racks,
            "machines_per_rack": self.machines_per_rack,
            "disks_per_machine": self.disks_per_machine,
            "transfer_limit": self.transfer_limit,
            "bandwidth": self.bandwidth,
            "uplink_bandwidth": self.uplink_bandwidth,
            "fabric": self.fabric,
            "items": self.items,
            "item_size": self.item_size,
            "scheme": self.scheme,
            "placement": self.placement,
            "duration": self.duration,
            "seed": self.seed,
            "failure_rate": self.failure_rate,
            "crashes": [[c.disk_id, c.at_time] for c in self.crashes],
            "replacement_delay": self.replacement_delay,
            "scrub_interval": self.scrub_interval,
            "latent_error_rate": self.latent_error_rate,
            "method": self.method,
            "plan_alpha": self.plan_alpha,
            "plan_beta": self.plan_beta,
        }
        return {k: plain[k] for k in sorted(plain)}


@dataclass
class Incident:
    """One batched repair: planned once, executed on the sim clock."""

    incident_id: int
    start: float
    trigger: str
    demands: int
    transfers: int
    rounds: int
    plan_latency: float
    makespan: float
    components_solved: int
    components_cached: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "incident": self.incident_id,
            "start": self.start,
            "trigger": self.trigger,
            "demands": self.demands,
            "transfers": self.transfers,
            "rounds": self.rounds,
            "plan_latency": self.plan_latency,
            "makespan": self.makespan,
            "components_solved": self.components_solved,
            "components_cached": self.components_cached,
        }


class SimEngine:
    """Runs one campaign; implements :class:`~repro.sim.placement.FleetView`.

    Args:
        config: the campaign definition.
        tracer: optional :class:`repro.obs.Tracer` for spans and the
            planner's cache-hit counters.  Tracing never affects the
            simulation's behaviour or its report bytes.
    """

    def __init__(self, config: SimConfig, tracer: Optional[Tracer] = None):
        self.config = config
        self.topology = SimTopology.grid(
            config.racks, config.machines_per_rack, config.disks_per_machine
        )
        self.scheme: RedundancyScheme = parse_scheme(config.scheme)
        self.policy: PlacementPolicy = build_policy(
            config.placement, self.topology, derive_seed(config.seed, "policy")
        )
        self.metrics = MetricsRegistry()
        self.metrics.histogram(names.SIM_REPAIR_MAKESPAN, MAKESPAN_BUCKETS)
        self.now = 0.0
        self.incidents: List[Incident] = []
        self.loss_events: List[Tuple[float, str]] = []
        self.under_replicated_time = 0.0
        self.repair_bytes = 0.0

        self._tracer = ensure_tracer(tracer)
        self._cache = PlanCache()
        self._queue = EventQueue()
        self._place_rng = random.Random(derive_seed(config.seed, "placement"))
        self._fail_rng = random.Random(derive_seed(config.seed, "failures"))
        self._scrub_rng = random.Random(derive_seed(config.seed, "scrub"))
        self._repair_rng = random.Random(derive_seed(config.seed, "repair"))

        # Fleet state: slot -> occupant (None while awaiting replacement),
        # alive disk ids, per-slot replacement generation.
        self._occupant: Dict[str, Optional[str]] = {}
        self._generation: Dict[str, int] = {}
        self._alive: Set[str] = set()
        # Data state: item -> frag -> disk, disk -> fragment set,
        # degraded fragment -> time lost, fragments being rebuilt.
        self._placement: Dict[str, Dict[int, str]] = {}
        self._on_disk: Dict[str, Set[FragKey]] = {}
        self._degraded: Dict[FragKey, float] = {}
        self._in_repair: Set[FragKey] = set()
        self._lost: Set[str] = set()
        # incident id -> fragment -> rebuild target.
        self._active_targets: Dict[int, Dict[FragKey, str]] = {}
        self._next_incident = 0
        self._finalized = False

        self._bootstrap()

    # ------------------------------------------------------------------
    # FleetView protocol
    # ------------------------------------------------------------------
    def alive_disks(self) -> List[str]:
        return sorted(self._alive)

    def fragment_count(self, disk_id: str) -> int:
        return len(self._on_disk.get(disk_id, set()))

    def rack(self, disk_id: str) -> str:
        return self.topology.rack(disk_id)

    def machine(self, disk_id: str) -> str:
        return self.topology.machine(disk_id)

    def disk_in_slot(self, slot: str) -> Optional[str]:
        occupant = self._occupant.get(slot)
        if occupant is not None and occupant in self._alive:
            return occupant
        return None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        cfg = self.config
        for slot in self.topology.slots:
            self._occupant[slot] = slot
            self._generation[slot] = 0
            self._alive.add(slot)
            self._on_disk[slot] = set()
        for slot in self.topology.slots:
            if cfg.failure_rate > 0:
                self._queue.push(
                    self._fail_rng.expovariate(cfg.failure_rate), DiskFailed(slot)
                )
        for crash in cfg.crashes:
            self._queue.push(crash.at_time, DiskFailed(str(crash.disk_id)))
        if cfg.scrub_interval > 0:
            slots = self.topology.slots
            for k, slot in enumerate(slots):
                first = cfg.scrub_interval * (k + 1) / len(slots)
                self._queue.push(first, ScrubTick(slot))
        for i in range(cfg.items):
            item_id = f"item{i:04d}"
            disks = self.policy.place_item(
                item_id, self.scheme.total_fragments, self, self._place_rng
            )
            self._placement[item_id] = {}
            for frag, disk_id in enumerate(disks):
                self._placement[item_id][frag] = disk_id
                self._on_disk[disk_id].add((item_id, frag))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> "SimEngine":
        """Process events up to the horizon; idempotent afterwards."""
        cfg = self.config
        with self._tracer.span(
            names.SPAN_SIM_RUN,
            seed=cfg.seed,
            scheme=self.scheme.name,
            placement=self.policy.name,
        ):
            while True:
                peek = self._queue.peek_time()
                if peek is None or peek > cfg.duration:
                    break
                self.now, event = self._queue.pop()
                self.metrics.counter(names.SIM_EVENTS).inc()
                self._dispatch(event)
            self.now = cfg.duration
            self._finalize()
        return self

    def _dispatch(self, event: SimEvent) -> None:
        if isinstance(event, DiskFailed):
            self._on_disk_failed(event)
        elif isinstance(event, ReplacementArrived):
            self._on_replacement(event)
        elif isinstance(event, ScrubTick):
            self._on_scrub(event)
        elif isinstance(event, FragmentRestored):
            self._on_restored(event)
        elif isinstance(event, RepairFinished):
            self._on_repair_finished(event)
        else:  # pragma: no cover - the Union is exhaustive
            raise TypeError(f"unknown event {event!r}")

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        # Fragments still degraded at the horizon accrue exposure up to it.
        for key in sorted(self._degraded):
            self.under_replicated_time += self.now - self._degraded[key]
        self.metrics.gauge(names.SIM_UNDER_REPLICATED_TIME).set(
            self.under_replicated_time
        )
        self.metrics.gauge(names.SIM_REPAIR_BYTES).set(self.repair_bytes)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_disk_failed(self, event: DiskFailed) -> None:
        disk_id = event.disk_id
        if disk_id not in self._alive:
            return  # scripted crash raced a random failure; already dead
        self.metrics.counter(names.SIM_DISK_FAILURES).inc()
        slot = slot_of(disk_id)
        self._alive.discard(disk_id)
        self._occupant[slot] = None
        affected: List[str] = []
        for item_id, frag in sorted(self._on_disk.pop(disk_id, set())):
            placed = self._placement.get(item_id, {})
            if placed.get(frag) == disk_id:
                del placed[frag]
            if item_id in self._lost:
                continue
            self._degraded[(item_id, frag)] = self.now
            affected.append(item_id)
        for item_id in sorted(set(affected)):
            self._check_loss(item_id)
        generation = self._generation[slot] + 1
        self._generation[slot] = generation
        self._queue.push(
            self.now + self.config.replacement_delay,
            ReplacementArrived(slot, f"{slot}#{generation}"),
        )
        self._sweep_repairs("failure")

    def _on_replacement(self, event: ReplacementArrived) -> None:
        # A newer failure may have incremented the generation again while
        # this replacement was in transit; only the latest one lands.
        if f"{event.slot}#{self._generation[event.slot]}" != event.disk_id:
            return
        self.metrics.counter(names.SIM_REPLACEMENTS).inc()
        self._occupant[event.slot] = event.disk_id
        self._alive.add(event.disk_id)
        self._on_disk[event.disk_id] = set()
        if self.config.failure_rate > 0:
            self._queue.push(
                self.now + self._fail_rng.expovariate(self.config.failure_rate),
                DiskFailed(event.disk_id),
            )
        self._sweep_repairs("replacement")

    def _on_scrub(self, event: ScrubTick) -> None:
        cfg = self.config
        slot = slot_of(event.disk_id)
        self._queue.push(self.now + cfg.scrub_interval, ScrubTick(slot))
        occupant = self.disk_in_slot(slot)
        if occupant is None:
            return
        fragments = sorted(self._on_disk.get(occupant, set()))
        if not fragments:
            return
        if self._scrub_rng.random() >= cfg.latent_error_rate:
            return
        item_id, frag = fragments[self._scrub_rng.randrange(len(fragments))]
        self.metrics.counter(names.SIM_LATENT_ERRORS).inc()
        self._on_disk[occupant].discard((item_id, frag))
        placed = self._placement.get(item_id, {})
        if placed.get(frag) == occupant:
            del placed[frag]
        if item_id not in self._lost:
            self._degraded[(item_id, frag)] = self.now
            self._check_loss(item_id)
        self._sweep_repairs("scrub")

    def _on_restored(self, event: FragmentRestored) -> None:
        key: FragKey = (event.item_id, event.frag_index)
        targets = self._active_targets.get(event.incident, {})
        target = targets.get(key)
        self._in_repair.discard(key)
        if (
            target is None
            or event.item_id in self._lost
            or key not in self._degraded
            or target not in self._alive
        ):
            self.metrics.counter(names.SIM_FRAGMENTS_ABANDONED).inc()
            return
        self._placement[event.item_id][event.frag_index] = target
        self._on_disk[target].add(key)
        self.under_replicated_time += self.now - self._degraded.pop(key)
        self.metrics.counter(names.SIM_FRAGMENTS_REPAIRED).inc()

    def _on_repair_finished(self, event: RepairFinished) -> None:
        self._active_targets.pop(event.incident, None)
        self._sweep_repairs("retry")

    # ------------------------------------------------------------------
    # durability accounting
    # ------------------------------------------------------------------
    def _check_loss(self, item_id: str) -> None:
        if item_id in self._lost:
            return
        if len(self._placement.get(item_id, {})) >= self.scheme.required_fragments:
            return
        self._lost.add(item_id)
        self.loss_events.append((self.now, item_id))
        self.metrics.counter(names.SIM_DATA_LOSS_EVENTS).inc()
        # The item is unrecoverable: settle its exposure accounting now.
        for key in [k for k in sorted(self._degraded) if k[0] == item_id]:
            self.under_replicated_time += self.now - self._degraded.pop(key)
            self._in_repair.discard(key)

    # ------------------------------------------------------------------
    # repair planning and execution
    # ------------------------------------------------------------------
    def _sweep_repairs(self, trigger: str) -> None:
        """Batch every unclaimed degraded fragment into one incident."""
        demands: List[RepairDemand] = []
        for item_id, frag in sorted(self._degraded):
            if (item_id, frag) in self._in_repair or item_id in self._lost:
                continue
            placed = self._placement.get(item_id, {})
            demands.append(
                RepairDemand(
                    item_id=item_id,
                    frag_index=frag,
                    holders=tuple(sorted(placed.values())),
                    lost=self.scheme.total_fragments - len(placed),
                )
            )
        if not demands:
            return
        spec = build_repair_instance(
            demands,
            self.scheme,
            self.policy,
            self,
            self._repair_rng,
            {d: self.config.transfer_limit for d in sorted(self._alive)},
        )
        if spec.unplaceable:
            self.metrics.counter(names.SIM_UNPLACEABLE_DEMANDS).inc(
                len(spec.unplaceable)
            )
        if not spec.edge_meta:
            return

        incident = self._next_incident
        self._next_incident += 1
        with self._tracer.span(
            names.SPAN_SIM_INCIDENT,
            incident=incident,
            demands=len(demands),
            transfers=spec.num_transfers,
        ):
            result = plan(
                spec.instance,
                method=self.config.method,
                seed=self.config.seed,
                cache=self._cache,
                tracer=self._tracer,
            )
        self.metrics.counter(names.SIM_INCIDENTS).inc()
        self.metrics.counter(names.SIM_REPAIR_TRANSFERS).inc(spec.num_transfers)
        self.metrics.counter(names.SIM_PLAN_COMPONENTS_SOLVED).inc(
            result.components_solved
        )
        self.metrics.counter(names.SIM_PLAN_COMPONENTS_CACHED).inc(
            result.components_cached
        )
        self.repair_bytes += spec.num_transfers * self.scheme.fragment_size(
            self.config.item_size
        )

        latency = self.config.plan_alpha + self.config.plan_beta * spec.num_transfers
        cluster, context = self._transfer_cluster(spec.instance, spec.edge_meta)
        rate = self._rate_model(spec.instance)
        elapsed = 0.0
        frag_done: Dict[FragKey, float] = {}
        for round_edges in result.schedule.rounds:
            elapsed += rate.round_duration(cluster, context, list(round_edges))
            for eid in round_edges:
                meta = spec.edge_meta[eid]
                key = (meta.item_id, meta.frag_index)
                frag_done[key] = max(frag_done.get(key, 0.0), elapsed)

        targets: Dict[FragKey, str] = {}
        for (item_id, frag), target in sorted(spec.target_of.items()):
            key = (item_id, frag)
            targets[key] = target
            self._in_repair.add(key)
            self._queue.push(
                self.now + latency + frag_done[key],
                FragmentRestored(incident, item_id, frag),
            )
        self._active_targets[incident] = targets
        self._queue.push(self.now + latency + elapsed, RepairFinished(incident))

        makespan = latency + elapsed
        self.metrics.histogram(names.SIM_REPAIR_MAKESPAN).observe(makespan)
        self.incidents.append(
            Incident(
                incident_id=incident,
                start=self.now,
                trigger=trigger,
                demands=len(demands),
                transfers=spec.num_transfers,
                rounds=result.schedule.num_rounds,
                plan_latency=latency,
                makespan=makespan,
                components_solved=result.components_solved,
                components_cached=result.components_cached,
            )
        )

    def _transfer_cluster(
        self,
        instance: MigrationInstance,
        edge_meta: Dict[EdgeId, RepairEdge],
    ) -> Tuple[StorageCluster, MigrationPlanContext]:
        """An ephemeral cluster so network rate models can price rounds.

        One pseudo-item per transfer edge, sized as one fragment and
        placed on the read's source disk.
        """
        cfg = self.config
        disks = [
            Disk(
                disk_id=v,
                transfer_limit=cfg.transfer_limit,
                bandwidth=cfg.bandwidth,
            )
            for v in sorted(str(n) for n in instance.graph.nodes)
        ]
        items: List[DataItem] = []
        layout = Layout()
        edge_items: Dict[EdgeId, str] = {}
        size = self.scheme.fragment_size(cfg.item_size)
        for eid in sorted(edge_meta):
            meta = edge_meta[eid]
            pseudo = f"xfer{eid}"
            items.append(DataItem(item_id=pseudo, size=size))
            layout.place(pseudo, meta.source)
            edge_items[eid] = pseudo
        cluster = StorageCluster(disks, items, layout)
        context = MigrationPlanContext(
            instance=instance, target=Layout(), edge_items=edge_items
        )
        return cluster, context

    def _rate_model(self, instance: MigrationInstance) -> RateModel:
        if not self.config.fabric:
            return FairShareRates()
        participating = sorted(str(v) for v in instance.graph.nodes)
        return FabricRates(
            self.topology.fabric(participating, self.config.uplink_bandwidth)
        )

    # ------------------------------------------------------------------
    # summary accessors (consumed by repro.sim.report)
    # ------------------------------------------------------------------
    @property
    def items_lost(self) -> int:
        return len(self._lost)

    @property
    def degraded_fragments(self) -> int:
        """Fragments still missing at the end of the run."""
        return len(self._degraded)

    @property
    def alive_count(self) -> int:
        return len(self._alive)
