"""Pluggable redundancy schemes as placement / repair-cost models.

The simulator never performs coding math; a scheme is exactly the
four numbers durability simulation needs (CR-SIM models its ``drs/``
schemes the same way):

* ``total_fragments`` — fragments placed per item (on distinct disks);
* ``required_fragments`` — minimum surviving fragments that still
  reconstruct the item; fewer is a **data-loss event**;
* ``repair_fanin(lost)`` — disks that must be *read* to rebuild one
  lost fragment, given ``lost`` fragments of the item are currently
  missing.  This is where the schemes differ operationally:
  replication copies from 1 disk, Reed–Solomon reads ``k`` disks, and
  LRC reads only its local group when a single fragment is lost;
* ``fragment_size(item_size)`` — bytes actually stored (and moved
  during repair) per fragment.

Three schemes are provided:

* :class:`Replication` — ``r`` full copies (reuses the semantics of
  :mod:`repro.cluster.replication`).
* :class:`ReedSolomon` — ``(k, m)`` striping: ``k`` data + ``m``
  parity fragments, any ``k`` reconstruct.
* :class:`LocalReconstruction` — LRC ``(k, l, g)``: ``k`` data
  fragments in ``l`` local groups each with a local parity, plus ``g``
  global parities.  A single lost fragment repairs from its local
  group (``k/l`` reads) instead of ``k``.

Specs parse from compact strings (``rep3``, ``rs6+3``, ``lrc6+2+2``)
so the CLI and campaign runners can sweep schemes by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RedundancyScheme:
    """Base class: a named placement / repair-cost model."""

    name: str
    total_fragments: int
    required_fragments: int

    def __post_init__(self) -> None:
        if self.total_fragments < 1:
            raise ValueError(f"{self.name}: total_fragments must be >= 1")
        if not 1 <= self.required_fragments <= self.total_fragments:
            raise ValueError(
                f"{self.name}: required_fragments must be in "
                f"[1, {self.total_fragments}]"
            )

    # ------------------------------------------------------------------
    @property
    def fault_tolerance(self) -> int:
        """Concurrent fragment losses survived without data loss."""
        return self.total_fragments - self.required_fragments

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per user byte (3 for rep3, 1.5 for RS(6,3))."""
        return self.total_fragments / self.required_fragments

    def fragment_size(self, item_size: float) -> float:
        """Bytes stored per fragment of an ``item_size``-byte item."""
        return item_size / self.required_fragments

    def repair_fanin(self, lost: int) -> int:
        """Disks read to rebuild one fragment when ``lost`` are missing.

        Subclasses refine this; the base model reads
        ``required_fragments`` survivors (the erasure-coding default).
        """
        return self.required_fragments


@dataclass(frozen=True)
class Replication(RedundancyScheme):
    """``r`` full copies; repair copies from any surviving holder."""

    def __init__(self, replicas: int = 3) -> None:
        super().__init__(
            name=f"rep{replicas}",
            total_fragments=replicas,
            required_fragments=1,
        )

    def repair_fanin(self, lost: int) -> int:
        return 1


@dataclass(frozen=True)
class ReedSolomon(RedundancyScheme):
    """``(k, m)`` maximum-distance-separable striping."""

    def __init__(self, k: int = 6, m: int = 3) -> None:
        if k < 1 or m < 1:
            raise ValueError("ReedSolomon needs k >= 1 and m >= 1")
        super().__init__(
            name=f"rs{k}+{m}", total_fragments=k + m, required_fragments=k
        )


@dataclass(frozen=True)
class LocalReconstruction(RedundancyScheme):
    """LRC ``(k, l, g)``: local groups cheapen the common single repair."""

    def __init__(self, k: int = 6, local_groups: int = 2, global_parities: int = 2) -> None:
        if k < 1 or local_groups < 1 or global_parities < 0:
            raise ValueError(
                "LocalReconstruction needs k >= 1, local_groups >= 1, "
                "global_parities >= 0"
            )
        if k % local_groups != 0:
            raise ValueError(
                f"k={k} must divide evenly into {local_groups} local groups"
            )
        super().__init__(
            name=f"lrc{k}+{local_groups}+{global_parities}",
            total_fragments=k + local_groups + global_parities,
            required_fragments=k,
        )
        # Frozen dataclass: route extra fields through object.__setattr__.
        object.__setattr__(self, "_group_size", k // local_groups)

    def repair_fanin(self, lost: int) -> int:
        """A lone lost fragment repairs from its local group."""
        group_size: int = getattr(self, "_group_size")
        if lost <= 1:
            return group_size
        return self.required_fragments


def parse_scheme(spec: str) -> RedundancyScheme:
    """Parse ``rep3`` / ``rs6+3`` / ``lrc6+2+2`` into a scheme.

    Raises:
        ValueError: for an unrecognized or malformed spec.
    """
    text = spec.strip().lower()
    try:
        if text.startswith("rep"):
            return Replication(int(text[3:]))
        if text.startswith("rs"):
            k, m = (int(p) for p in text[2:].split("+"))
            return ReedSolomon(k, m)
        if text.startswith("lrc"):
            k, l, g = (int(p) for p in text[3:].split("+"))
            return LocalReconstruction(k, l, g)
    except ValueError as exc:
        raise ValueError(f"malformed redundancy spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown redundancy spec {spec!r} (want rep<r>, rs<k>+<m> or lrc<k>+<l>+<g>)"
    )


#: Specs exercised by default campaigns and the CLI help text.
DEFAULT_SCHEME_SPECS: Tuple[str, ...] = ("rep3", "rs6+3", "lrc6+2+2")
