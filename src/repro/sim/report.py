"""Campaign reports: durability metrics as canonical JSON and tables.

:func:`run_campaign` is the one-call entry point (build engine → run →
report); :func:`compare_policies` runs the same seeded failure process
under several placement policies so their durability numbers are
directly comparable.  A report's :meth:`~SimReport.canonical_json` is
the determinism artifact: ``json.dumps(..., sort_keys=True)`` of plain
data produced by a seeded run, asserted byte-identical across repeated
runs and ``PYTHONHASHSEED`` values by the CI sim-smoke step and the
cross-hashseed harness.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import Table
from repro.obs.trace import Tracer
from repro.sim.engine import SimConfig, SimEngine

#: Report wire-format version.
REPORT_SCHEMA = "sim-report/v1"


@dataclass
class SimReport:
    """One campaign's outcome, JSON-ready.

    Attributes:
        config: the :meth:`SimConfig.as_dict` echo.
        metrics: the engine's typed metrics registry snapshot.
        summary: headline durability numbers.
        incidents: per-incident repair records.
        loss_events: ``[time, item_id]`` pairs, in event order.
    """

    config: Dict[str, Any]
    metrics: Dict[str, Any]
    summary: Dict[str, Any]
    incidents: List[Dict[str, Any]] = field(default_factory=list)
    loss_events: List[List[Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "config": self.config,
            "summary": self.summary,
            "metrics": self.metrics,
            "incidents": self.incidents,
            "loss_events": self.loss_events,
        }

    def canonical_json(self) -> str:
        """Byte-stable serialization (sorted keys, fixed indent)."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2)

    def render(self) -> str:
        """Human-readable summary table."""
        table = Table(
            f"sim campaign · scheme={self.config['scheme']} "
            f"placement={self.config['placement']} seed={self.config['seed']}",
            ["metric", "value"],
        )
        for key in sorted(self.summary):
            table.add_row(key, self.summary[key])
        return table.render()


def build_report(engine: SimEngine) -> SimReport:
    """Assemble the report for a finished engine run."""
    makespans = [i.makespan for i in engine.incidents]
    summary: Dict[str, Any] = {
        "data_loss_events": len(engine.loss_events),
        "items_lost": engine.items_lost,
        "under_replicated_item_time": engine.under_replicated_time,
        "repair_bytes": engine.repair_bytes,
        "incidents": len(engine.incidents),
        "repair_transfers": sum(i.transfers for i in engine.incidents),
        "repair_rounds": sum(i.rounds for i in engine.incidents),
        "mean_repair_makespan": (
            sum(makespans) / len(makespans) if makespans else 0.0
        ),
        "max_repair_makespan": max(makespans, default=0.0),
        "plan_components_solved": sum(
            i.components_solved for i in engine.incidents
        ),
        "plan_components_cached": sum(
            i.components_cached for i in engine.incidents
        ),
        "degraded_fragments_at_end": engine.degraded_fragments,
        "alive_disks_at_end": engine.alive_count,
    }
    return SimReport(
        config=engine.config.as_dict(),
        metrics=engine.metrics.snapshot(),
        summary=summary,
        incidents=[i.as_dict() for i in engine.incidents],
        loss_events=[[t, item] for t, item in engine.loss_events],
    )


def run_campaign(
    config: SimConfig, tracer: Optional[Tracer] = None
) -> SimReport:
    """Run one campaign to its horizon and report it."""
    engine = SimEngine(config, tracer=tracer)
    engine.run()
    return build_report(engine)


def compare_policies(
    base: SimConfig,
    policies: Sequence[str],
    tracer: Optional[Tracer] = None,
) -> Dict[str, SimReport]:
    """Run the same seeded campaign under each placement policy.

    Everything except ``placement`` is held fixed (same seed → same
    failure/scrub event process), so differences in loss counts,
    exposure time and repair bandwidth are attributable to placement.
    """
    reports: Dict[str, SimReport] = {}
    for spec in policies:
        cfg = dataclasses.replace(base, placement=spec)
        reports[spec] = run_campaign(cfg, tracer=tracer)
    return reports


def policy_table(reports: Dict[str, SimReport]) -> Table:
    """A side-by-side durability table over :func:`compare_policies` output."""
    table = Table(
        "placement-policy comparison",
        [
            "policy",
            "loss_events",
            "under_repl_time",
            "repair_bytes",
            "incidents",
            "mean_makespan",
            "cache_hits",
        ],
    )
    for spec in sorted(reports):
        s = reports[spec].summary
        table.add_row(
            spec,
            s["data_loss_events"],
            s["under_replicated_item_time"],
            s["repair_bytes"],
            s["incidents"],
            s["mean_repair_makespan"],
            s["plan_components_cached"],
        )
    return table
