"""Rack / machine / disk cluster topology for the failure simulator.

The scheduling model sees only disks and their transfer constraints;
durability modelling additionally needs *where* a disk lives, because
placement policies spread redundancy across failure domains and the
fabric rate model charges cross-rack repair traffic to rack uplinks.

:class:`SimTopology` describes a fixed grid of disk *slots*
(``racks × machines_per_rack × disks_per_machine``).  A slot is a
permanent location; the disk occupying it changes over time as disks
fail and replacements arrive.  Replacement disk ids are derived from
the slot id (``r0m1d2#1`` is the first replacement in slot ``r0m1d2``),
so the topology can answer rack/machine questions about any disk that
ever existed without being told about replacements explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.disk import Disk
from repro.cluster.network import FabricTopology


def slot_of(disk_id: str) -> str:
    """The permanent slot a disk occupies (strips the ``#n`` suffix)."""
    return disk_id.split("#", 1)[0]


def replacement_id(disk_id: str, generation: int) -> str:
    """The id of the ``generation``-th replacement in a disk's slot."""
    return f"{slot_of(disk_id)}#{generation}"


@dataclass(frozen=True)
class SimTopology:
    """An immutable grid of disk slots grouped into machines and racks.

    Attributes:
        racks: number of racks.
        machines_per_rack: machines in each rack.
        disks_per_machine: disk slots on each machine.
        rack_of_slot: slot id -> rack id (``"r0"`` ...).
        machine_of_slot: slot id -> machine id (``"r0m1"`` ...).
    """

    racks: int
    machines_per_rack: int
    disks_per_machine: int
    rack_of_slot: Dict[str, str] = field(default_factory=dict)
    machine_of_slot: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def grid(
        cls, racks: int, machines_per_rack: int, disks_per_machine: int
    ) -> "SimTopology":
        """Build the standard ``rXmYdZ`` slot grid."""
        if racks < 1 or machines_per_rack < 1 or disks_per_machine < 1:
            raise ValueError("topology dimensions must all be >= 1")
        rack_of: Dict[str, str] = {}
        machine_of: Dict[str, str] = {}
        for r in range(racks):
            for m in range(machines_per_rack):
                for d in range(disks_per_machine):
                    slot = f"r{r}m{m}d{d}"
                    rack_of[slot] = f"r{r}"
                    machine_of[slot] = f"r{r}m{m}"
        return cls(
            racks=racks,
            machines_per_rack=machines_per_rack,
            disks_per_machine=disks_per_machine,
            rack_of_slot=rack_of,
            machine_of_slot=machine_of,
        )

    @property
    def num_slots(self) -> int:
        return self.racks * self.machines_per_rack * self.disks_per_machine

    @property
    def slots(self) -> List[str]:
        """All slot ids in deterministic grid order."""
        return sorted(self.rack_of_slot)

    def rack(self, disk_id: str) -> str:
        """Rack of any disk ever placed in a slot (replacements included)."""
        return self.rack_of_slot[slot_of(disk_id)]

    def machine(self, disk_id: str) -> str:
        return self.machine_of_slot[slot_of(disk_id)]

    def build_disks(
        self, transfer_limit: int = 2, bandwidth: float = 1.0
    ) -> List[Disk]:
        """One disk per slot, in slot order, all of the same hardware class."""
        return [
            Disk(disk_id=slot, transfer_limit=transfer_limit, bandwidth=bandwidth)
            for slot in self.slots
        ]

    def fabric(
        self, disk_ids: List[str], uplink_bandwidth: float = 4.0
    ) -> FabricTopology:
        """A :class:`FabricTopology` over the given disks for rate models."""
        return FabricTopology(
            rack_of={d: self.rack(d) for d in disk_ids},
            uplink_bandwidth=uplink_bandwidth,
        )


def distinct_failure_domains(
    topology: SimTopology, disk_ids: List[str], level: str = "rack"
) -> int:
    """Number of distinct racks (or machines) a disk set spans."""
    if level == "rack":
        return len({topology.rack(d) for d in disk_ids})
    if level == "machine":
        return len({topology.machine(d) for d in disk_ids})
    raise ValueError(f"unknown failure-domain level {level!r}")


def spread_score(topology: SimTopology, disk_ids: List[str]) -> Tuple[int, int]:
    """(racks spanned, machines spanned) — higher is more failure-isolated."""
    return (
        distinct_failure_domains(topology, disk_ids, "rack"),
        distinct_failure_domains(topology, disk_ids, "machine"),
    )
