"""Pluggable fragment-placement policies.

Where redundancy fragments land determines both load spread and the
*correlation* of failures — the quantity the policies trade off
differently (CR-SIM's ``dataDistribute/`` family is the reference
shape):

* :class:`RandomPlacement` — uniform over alive disks.  Maximum
  scatter: almost every disk pair shares some item, so *any*
  simultaneous double failure risks some item, but per-failure repair
  reads spread over the whole fleet.
* :class:`SpreadPlacement` — PSS-style least-loaded placement with
  rack anti-affinity: fragments of one item prefer distinct racks,
  then distinct machines, then low fragment count.  The deterministic
  production default.
* :class:`CopysetPlacement` — copyset replication: fragments are
  confined to a small precomputed family of slot groups, shrinking the
  number of disk combinations whose simultaneous loss can destroy an
  item (fewer, rarer loss events at the price of less balanced repair
  load).

A policy sees the fleet only through :class:`FleetView` (alive disks,
per-disk fragment counts, rack/machine of a disk, slot occupancy), so
policies stay pure and unit-testable without an engine.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

from repro.sim.topology import SimTopology, slot_of


class FleetView(Protocol):
    """What a placement policy may observe about the cluster."""

    def alive_disks(self) -> List[str]:
        """Alive disk ids in sorted order."""
        ...

    def fragment_count(self, disk_id: str) -> int:
        """Fragments currently stored on a disk."""
        ...

    def rack(self, disk_id: str) -> str: ...

    def machine(self, disk_id: str) -> str: ...

    def disk_in_slot(self, slot: str) -> Optional[str]:
        """The alive disk currently occupying a slot, if any."""
        ...


class PlacementError(ValueError):
    """The policy cannot satisfy a placement request."""


class PlacementPolicy:
    """Base policy: anti-affinity helpers shared by the variants."""

    name: str = "base"

    def place_item(
        self, item_id: str, n: int, view: FleetView, rng: random.Random
    ) -> List[str]:
        """Choose ``n`` distinct disks for a new item's fragments."""
        raise NotImplementedError

    def repair_target(
        self,
        item_id: str,
        holders: Sequence[str],
        view: FleetView,
        rng: random.Random,
    ) -> Optional[str]:
        """A disk to receive one rebuilt fragment; ``None`` if no disk
        outside ``holders`` is alive."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    @staticmethod
    def _anti_affine_order(
        candidates: Sequence[str], used_racks: Set[str], used_machines: Set[str],
        view: FleetView,
    ) -> List[str]:
        """Candidates sorted: new rack first, then new machine, then
        least-loaded, then id (the total order makes ties deterministic)."""
        return sorted(
            candidates,
            key=lambda d: (
                view.rack(d) in used_racks,
                view.machine(d) in used_machines,
                view.fragment_count(d),
                d,
            ),
        )


class RandomPlacement(PlacementPolicy):
    """Uniform random placement over alive disks."""

    name = "random"

    def place_item(
        self, item_id: str, n: int, view: FleetView, rng: random.Random
    ) -> List[str]:
        alive = view.alive_disks()
        if len(alive) < n:
            raise PlacementError(
                f"{n} fragments need {n} alive disks, have {len(alive)}"
            )
        return rng.sample(alive, n)

    def repair_target(
        self,
        item_id: str,
        holders: Sequence[str],
        view: FleetView,
        rng: random.Random,
    ) -> Optional[str]:
        exclude = set(holders)
        candidates = [d for d in view.alive_disks() if d not in exclude]
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]


class SpreadPlacement(PlacementPolicy):
    """Least-loaded placement with rack/machine anti-affinity (PSS-style)."""

    name = "spread"

    def place_item(
        self, item_id: str, n: int, view: FleetView, rng: random.Random
    ) -> List[str]:
        alive = view.alive_disks()
        if len(alive) < n:
            raise PlacementError(
                f"{n} fragments need {n} alive disks, have {len(alive)}"
            )
        chosen: List[str] = []
        used_racks: Set[str] = set()
        used_machines: Set[str] = set()
        remaining = list(alive)
        for _ in range(n):
            ordered = self._anti_affine_order(
                remaining, used_racks, used_machines, view
            )
            pick = ordered[0]
            chosen.append(pick)
            used_racks.add(view.rack(pick))
            used_machines.add(view.machine(pick))
            remaining.remove(pick)
        return chosen

    def repair_target(
        self,
        item_id: str,
        holders: Sequence[str],
        view: FleetView,
        rng: random.Random,
    ) -> Optional[str]:
        exclude = set(holders)
        candidates = [d for d in view.alive_disks() if d not in exclude]
        if not candidates:
            return None
        used_racks = {view.rack(h) for h in holders}
        used_machines = {view.machine(h) for h in holders}
        return self._anti_affine_order(candidates, used_racks, used_machines, view)[0]


class CopysetPlacement(PlacementPolicy):
    """Copyset replication over topology *slots*.

    ``scatter_width`` seeded slot permutations are chopped into
    consecutive groups of the redundancy width; an item's fragments
    live on the disks currently occupying one group's slots.  The
    family is fixed at construction (slots are permanent even as disks
    fail and get replaced), so the set of fatal disk combinations
    stays small for the whole campaign.
    """

    name = "copyset"

    def __init__(self, topology: SimTopology, seed: int, scatter_width: int = 2):
        if scatter_width < 1:
            raise ValueError("scatter_width must be >= 1")
        self._topology = topology
        self._seed = seed
        self._scatter_width = scatter_width
        self._copysets: Dict[int, List[Tuple[str, ...]]] = {}

    def _family(self, n: int) -> List[Tuple[str, ...]]:
        """The copyset family for redundancy width ``n`` (built lazily)."""
        if n not in self._copysets:
            slots = self._topology.slots
            if len(slots) < n:
                raise PlacementError(
                    f"copysets of width {n} need {n} slots, have {len(slots)}"
                )
            rng = random.Random(self._seed * 1_000_003 + n)
            family: List[Tuple[str, ...]] = []
            for _ in range(self._scatter_width):
                perm = list(slots)
                rng.shuffle(perm)
                for i in range(0, len(perm) - n + 1, n):
                    family.append(tuple(perm[i : i + n]))
            self._copysets[n] = family
        return self._copysets[n]

    def _alive_in(self, copyset: Tuple[str, ...], view: FleetView) -> List[str]:
        alive = []
        for slot in copyset:
            disk = view.disk_in_slot(slot)
            if disk is not None:
                alive.append(disk)
        return alive

    def place_item(
        self, item_id: str, n: int, view: FleetView, rng: random.Random
    ) -> List[str]:
        family = self._family(n)
        # Try a bounded number of seeded probes for a fully-alive
        # copyset, then fall back to spread placement so a degraded
        # fleet never wedges new placements.
        for _ in range(len(family)):
            copyset = family[rng.randrange(len(family))]
            alive = self._alive_in(copyset, view)
            if len(alive) == n:
                return list(alive)
        return SpreadPlacement().place_item(item_id, n, view, rng)

    def repair_target(
        self,
        item_id: str,
        holders: Sequence[str],
        view: FleetView,
        rng: random.Random,
    ) -> Optional[str]:
        # Prefer restoring into the holders' own copyset: any built
        # copyset that contains every current holder's slot.
        holder_slots = {slot_of(h) for h in holders}
        exclude = set(holders)
        for n in sorted(self._copysets):
            for copyset in self._copysets[n]:
                if holder_slots <= set(copyset):
                    for slot in copyset:
                        disk = view.disk_in_slot(slot)
                        if disk is not None and disk not in exclude:
                            return disk
        return SpreadPlacement().repair_target(item_id, holders, view, rng)


def build_policy(spec: str, topology: SimTopology, seed: int) -> PlacementPolicy:
    """Instantiate a policy from its CLI spec (``random``/``spread``/``copyset``)."""
    text = spec.strip().lower()
    if text == "random":
        return RandomPlacement()
    if text == "spread":
        return SpreadPlacement()
    if text == "copyset":
        return CopysetPlacement(topology, seed)
    raise ValueError(
        f"unknown placement policy {spec!r} (want random, spread or copyset)"
    )


#: Specs exercised by default campaigns and the CLI help text.
DEFAULT_POLICY_SPECS: Tuple[str, ...] = ("random", "spread", "copyset")
