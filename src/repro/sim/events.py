"""Discrete-event machinery: event types and the deterministic queue.

Every state change in the simulator is an event popped from one
:class:`EventQueue`.  Determinism rests on two properties:

* the queue imposes a *total* order — ties in simulated time break by
  insertion sequence number, and insertion order is itself
  deterministic because handlers run in queue order;
* every random draw happens inside a handler, from a seeded
  generator, so the sequence of draws is a pure function of the seed.

Event dataclasses are plain facts ("disk r0m1d2 failed"); all
behaviour lives in the engine's handlers.  The scripted-failure shape
is shared with :class:`repro.runtime.faults.DiskCrash` so fault plans
written for the runtime executor inject unchanged into the simulator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class DiskFailed:
    """Permanent whole-disk failure; every fragment on it is lost."""

    disk_id: str


@dataclass(frozen=True)
class ReplacementArrived:
    """A fresh, empty disk takes over the failed disk's slot."""

    slot: str
    disk_id: str


@dataclass(frozen=True)
class ScrubTick:
    """Periodic background scan of one disk for latent errors."""

    disk_id: str


@dataclass(frozen=True)
class FragmentRestored:
    """One repair transfer group finished rebuilding a fragment."""

    incident: int
    item_id: str
    frag_index: int


@dataclass(frozen=True)
class RepairFinished:
    """The last round of an incident's repair schedule completed."""

    incident: int


SimEvent = Union[
    DiskFailed, ReplacementArrived, ScrubTick, FragmentRestored, RepairFinished
]


class EventQueue:
    """A time-ordered heap with a deterministic total order.

    Entries are ``(time, seq, event)``; ``seq`` increments per push, so
    two events at the same simulated time pop in push order and the
    heap never compares event objects.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, SimEvent]] = []
        self._seq = 0

    def push(self, time: float, event: SimEvent) -> None:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1

    def pop(self) -> Tuple[float, SimEvent]:
        time, _seq, event = heapq.heappop(self._heap)
        return time, event

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
