"""The storage cluster: disks, items, layout, and migration planning.

:class:`StorageCluster` ties the simulator together: it owns the disk
fleet and the current layout, turns "move to this target layout" into a
:class:`~repro.core.problem.MigrationInstance` (the paper's transfer
graph), and remembers which transfer-graph edge is which data item so
the engine can execute schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cluster.disk import Disk, DiskId
from repro.cluster.item import DataItem, ItemId
from repro.cluster.layout import Layout
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import EdgeId, Multigraph


@dataclass
class MigrationPlanContext:
    """A migration instance plus the item behind every edge."""

    instance: MigrationInstance
    target: Layout
    edge_items: Dict[EdgeId, ItemId]

    @property
    def num_moves(self) -> int:
        return len(self.edge_items)


class StorageCluster:
    """A fleet of disks with a current data layout."""

    def __init__(
        self,
        disks: Iterable[Disk] = (),
        items: Iterable[DataItem] = (),
        layout: Optional[Layout] = None,
    ):
        self._disks: Dict[DiskId, Disk] = {}
        self._items: Dict[ItemId, DataItem] = {}
        for d in disks:
            self.add_disk(d)
        for item in items:
            self.add_item(item)
        self.layout = layout.copy() if layout is not None else Layout()
        for item_id in self.layout.items:
            self._check_placement(item_id)

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    def add_disk(self, disk: Disk) -> None:
        if disk.disk_id in self._disks:
            raise ValueError(f"duplicate disk id {disk.disk_id!r}")
        self._disks[disk.disk_id] = disk

    def remove_disk(self, disk_id: DiskId) -> List[ItemId]:
        """Remove a disk from the fleet; returns the items stranded on it.

        The items stay in the layout (still marked as on the removed
        disk) until a migration drains them — exactly the disk-removal
        scenario: plan a migration whose target avoids the disk.
        """
        if disk_id not in self._disks:
            raise KeyError(f"unknown disk {disk_id!r}")
        del self._disks[disk_id]
        return self.layout.items_on(disk_id)

    def add_item(self, item: DataItem, on_disk: Optional[DiskId] = None) -> None:
        if item.item_id in self._items:
            raise ValueError(f"duplicate item id {item.item_id!r}")
        self._items[item.item_id] = item
        if on_disk is not None:
            self.layout.place(item.item_id, on_disk)
            self._check_placement(item.item_id)

    def _check_placement(self, item_id: ItemId) -> None:
        disk_id = self.layout.disk_of(item_id)
        if disk_id not in self._disks:
            raise ValueError(f"item {item_id!r} placed on unknown disk {disk_id!r}")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def disks(self) -> Dict[DiskId, Disk]:
        return dict(self._disks)

    @property
    def items(self) -> Dict[ItemId, DataItem]:
        return dict(self._items)

    def disk(self, disk_id: DiskId) -> Disk:
        return self._disks[disk_id]

    def transfer_constraints(self) -> Dict[DiskId, int]:
        """``c_v`` per disk — the heterogeneity vector."""
        return {d.disk_id: d.transfer_limit for d in self._disks.values()}

    def space_used(self) -> Dict[DiskId, float]:
        used: Dict[DiskId, float] = {d: 0.0 for d in self._disks}
        for item_id in self.layout.items:
            disk_id = self.layout.disk_of(item_id)
            if disk_id in used:
                used[disk_id] += self._items[item_id].size
        return used

    # ------------------------------------------------------------------
    # migration planning
    # ------------------------------------------------------------------
    def migration_to(self, target: Layout) -> MigrationPlanContext:
        """Build the transfer graph for migrating to ``target``.

        Nodes are all current disks (sources of stranded items that no
        longer exist in the fleet raise — drain before removal, or use
        :meth:`remove_disk` then plan with the removed disk still as a
        source via ``extra_sources``).
        """
        graph = Multigraph()
        for disk_id in self._disks:
            graph.add_node(disk_id)
        edge_items: Dict[EdgeId, ItemId] = {}
        for item_id, src, dst in self.layout.moves_to(target):
            if dst not in self._disks:
                raise ValueError(f"target disk {dst!r} not in fleet")
            if src not in self._disks:
                raise ValueError(
                    f"source disk {src!r} of item {item_id!r} not in fleet; "
                    "include it until the drain completes"
                )
            eid = graph.add_edge(src, dst)
            edge_items[eid] = item_id
        instance = MigrationInstance(graph, self.transfer_constraints())
        return MigrationPlanContext(instance=instance, target=target, edge_items=edge_items)

    def apply_move(self, item_id: ItemId, dst: DiskId) -> None:
        """Commit one migrated item to the layout."""
        if dst not in self._disks:
            raise ValueError(f"cannot move {item_id!r} to unknown disk {dst!r}")
        self.layout.place(item_id, dst)

    def __repr__(self) -> str:
        return (
            f"StorageCluster(disks={len(self._disks)}, items={len(self._items)}, "
            f"placed={len(self.layout)})"
        )
