"""Executes migration schedules against a cluster.

The engine turns the scheduler's abstract rounds into simulated time,
which is where the paper's Figure 2 arithmetic lives: a disk splits its
migration bandwidth evenly over the transfers it runs concurrently, so
a transfer's rate is the minimum of its endpoints' per-transfer shares
and a round lasts as long as its slowest transfer.  With unit items and
unit bandwidth, a ``c = 1`` schedule of ``3M`` rounds costs ``3M`` time
while a ``c = 2`` schedule of ``M`` rounds costs ``2M`` — the factor
the paper's introduction claims.

Two time models:

* ``"unit"`` — every round costs one time unit (the paper's objective:
  time == number of rounds);
* ``"bandwidth_split"`` — the Figure 2 model described above.

Failure injection: :meth:`MigrationEngine.execute` accepts a disk that
fails after a given round; :meth:`MigrationEngine.execute_with_replan`
then recomputes a plan for the surviving moves and finishes the job,
reporting stranded items.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.disk import DiskId
from repro.cluster.events import (
    DiskRemoved,
    EventLog,
    ItemMigrated,
    MigrationReplanned,
    RoundCompleted,
    RoundStarted,
)
from repro.cluster.item import ItemId
from repro.cluster.layout import Layout
from repro.cluster.system import MigrationPlanContext, StorageCluster
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.obs import names
from repro.obs.trace import Tracer, ensure_tracer

TIME_MODELS = ("unit", "bandwidth_split")


def _call_planner(
    planner: Callable[..., MigrationSchedule],
    instance: MigrationInstance,
    seed: Optional[int],
) -> MigrationSchedule:
    """Invoke a replan callback, forwarding ``seed`` when it can take one.

    Signature inspection (rather than try/except on ``TypeError``)
    keeps genuine planner bugs loud.
    """
    if seed is None:
        return planner(instance)
    try:
        params = inspect.signature(planner).parameters
    except (TypeError, ValueError):
        return planner(instance)
    accepts_seed = "seed" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    if accepts_seed:
        return planner(instance, seed=seed)
    return planner(instance)


@dataclass
class ExecutionReport:
    """Outcome of executing (part of) a migration."""

    total_time: float = 0.0
    rounds_executed: int = 0
    migrated_items: List[ItemId] = field(default_factory=list)
    stranded_items: List[ItemId] = field(default_factory=list)
    round_durations: List[float] = field(default_factory=list)
    replans: int = 0
    log: EventLog = field(default_factory=EventLog)

    @property
    def completed(self) -> bool:
        return not self.stranded_items


class MigrationEngine:
    """Executes :class:`MigrationSchedule` objects on a cluster.

    Args:
        cluster: the cluster to mutate.
        time_model: ``"unit"`` (a round costs 1) or
            ``"bandwidth_split"`` (Figure 2's fair-share model).
        rate_model: overrides ``time_model`` with any
            :class:`~repro.cluster.network.RateModel` — e.g.
            :class:`~repro.cluster.network.FabricRates` for rack
            topologies.
        tracer: optional :class:`repro.obs.Tracer`; each
            :meth:`execute` call becomes a ``cluster.execute`` span
            with one ``cluster.round`` child per executed round.  The
            default no-op tracer costs nothing and changes nothing.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        time_model: str = "bandwidth_split",
        rate_model=None,
        tracer: Optional[Tracer] = None,
    ):
        if time_model not in TIME_MODELS:
            raise ValueError(f"unknown time model {time_model!r}; expected {TIME_MODELS}")
        self.cluster = cluster
        self.time_model = time_model
        self.rate_model = rate_model
        self.tracer = ensure_tracer(tracer)

    # ------------------------------------------------------------------
    def round_duration(
        self, context: MigrationPlanContext, round_edges: List[int]
    ) -> float:
        """Simulated duration of one round."""
        if self.rate_model is not None:
            return self.rate_model.round_duration(self.cluster, context, round_edges)
        if self.time_model == "unit":
            return 1.0
        from repro.cluster.network import FairShareRates

        return FairShareRates().round_duration(self.cluster, context, round_edges)

    def execute(
        self,
        context: MigrationPlanContext,
        schedule: MigrationSchedule,
        fail_disk_after_round: Optional[Tuple[int, DiskId]] = None,
        report: Optional[ExecutionReport] = None,
    ) -> ExecutionReport:
        """Run the schedule round by round, applying moves to the layout.

        Args:
            context: the plan (instance + edge→item map).
            schedule: a validated schedule for ``context.instance``.
            fail_disk_after_round: optional ``(round_index, disk_id)``;
                the disk fails once that round completes, aborting the
                remaining rounds (use
                :meth:`execute_with_replan` to recover).
            report: accumulate into an existing report (used by
                replans) instead of a fresh one.
        """
        schedule.validate(context.instance)
        rep = report if report is not None else ExecutionReport()
        graph = context.instance.graph
        now = rep.total_time

        with self.tracer.span(
            names.SPAN_CLUSTER_EXECUTE, rounds=len(schedule.rounds)
        ) as exec_span:
            for round_index, round_edges in enumerate(schedule.rounds):
                rep.log.record(
                    RoundStarted(time=now, round_index=round_index, num_transfers=len(round_edges))
                )
                with self.tracer.span(
                    names.SPAN_CLUSTER_ROUND,
                    round=round_index,
                    transfers=len(round_edges),
                ) as round_span:
                    duration = self.round_duration(context, round_edges)
                    for eid in round_edges:
                        src, dst = graph.endpoints(eid)
                        item_id = context.edge_items[eid]
                        self.cluster.apply_move(item_id, dst)
                        rep.migrated_items.append(item_id)
                        rep.log.record(
                            ItemMigrated(
                                time=now + duration,
                                item_id=item_id,
                                source=src,
                                target=dst,
                                duration=duration,
                            )
                        )
                    round_span.set(duration=duration)
                now += duration
                rep.round_durations.append(duration)
                rep.rounds_executed += 1
                rep.log.record(
                    RoundCompleted(time=now, round_index=round_index, duration=duration)
                )
                if fail_disk_after_round is not None and round_index == fail_disk_after_round[0]:
                    failed = fail_disk_after_round[1]
                    self.cluster.remove_disk(failed)
                    rep.log.record(DiskRemoved(time=now, disk_id=failed))
                    done = set(rep.migrated_items)
                    for later in schedule.rounds[round_index + 1 :]:
                        for eid in later:
                            item_id = context.edge_items[eid]
                            if item_id not in done:
                                rep.stranded_items.append(item_id)
                    break
            exec_span.set(
                rounds_executed=rep.rounds_executed, sim_time=now
            )
        rep.total_time = now
        return rep

    def execute_with_replan(
        self,
        context: MigrationPlanContext,
        schedule: MigrationSchedule,
        fail_after_round: int,
        failed_disk: DiskId,
        planner: Callable[..., MigrationSchedule],
        reassign: Optional[Callable[[ItemId], DiskId]] = None,
        seed: Optional[int] = None,
    ) -> ExecutionReport:
        """Execute, survive a disk failure, replan, and finish.

        Items whose pending move *targeted* the failed disk are
        re-targeted via ``reassign`` (default: round-robin over
        surviving disks); items whose *source* was the failed disk are
        lost to the migration and reported as stranded (in a replicated
        system a replica would re-source them — out of the paper's
        model).

        Args:
            planner: e.g. ``lambda inst: plan(inst).schedule``.
            seed: forwarded to the planner (as ``seed=``) when given
                and the planner accepts it, so replans are reproducible
                run to run.  Planners without a ``seed`` parameter are
                called exactly as before.
        """
        rep = self.execute(
            context,
            schedule,
            fail_disk_after_round=(fail_after_round, failed_disk),
        )
        pending = list(dict.fromkeys(rep.stranded_items))
        rep.stranded_items = []
        if not pending:
            return rep

        survivors = sorted(self.cluster.disks, key=repr)
        if not survivors:
            rep.stranded_items = pending
            return rep
        cursor = 0

        def default_reassign(_item: ItemId) -> DiskId:
            nonlocal cursor
            disk_id = survivors[cursor % len(survivors)]
            cursor += 1
            return disk_id

        pick = reassign if reassign is not None else default_reassign
        new_target = self.cluster.layout.copy()
        lost: List[ItemId] = []
        for item_id in pending:
            src = self.cluster.layout.disk_of(item_id)
            if src == failed_disk or src not in self.cluster.disks:
                lost.append(item_id)
                continue
            wanted = context.target.disk_of(item_id)
            new_target.place(
                item_id, pick(item_id) if wanted == failed_disk else wanted
            )
        new_context = self.cluster.migration_to(new_target)
        new_schedule = _call_planner(planner, new_context.instance, seed)
        rep.replans += 1
        rep.log.record(
            MigrationReplanned(
                time=rep.total_time,
                reason=f"disk {failed_disk!r} failed",
                remaining_items=new_context.num_moves,
            )
        )
        rep = self.execute(new_context, new_schedule, report=rep)
        rep.stranded_items.extend(lost)
        return rep
