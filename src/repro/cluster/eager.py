"""Eager (round-free) schedule execution — an ablation.

The paper's model is round-synchronized: a round ends when its slowest
transfer ends, so fast disks idle at round boundaries.  Real systems
can run *eagerly*: start any pending transfer the moment both endpoints
have a free slot.  This engine is the ablation for that design choice
(``bench_ablations`` quantifies it): it executes the same transfer set
event-driven and reports the makespan to compare with the round model.

Rate model: a transfer runs at the *reserved share*
``min(B_u / c_u, B_v / c_v)`` — each disk statically partitions its
bandwidth into ``c_v`` lanes.  This keeps rates constant over a
transfer's lifetime (no re-negotiation mid-flight), making the
simulation exact, and matches the round model's worst case so the two
makespans are directly comparable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.item import ItemId
from repro.cluster.system import MigrationPlanContext, StorageCluster
from repro.core.errors import ScheduleValidationError
from repro.graphs.multigraph import EdgeId, Node


@dataclass
class EagerReport:
    """Outcome of an eager execution."""

    total_time: float = 0.0
    start_times: Dict[EdgeId, float] = field(default_factory=dict)
    finish_times: Dict[EdgeId, float] = field(default_factory=dict)
    migrated_items: List[ItemId] = field(default_factory=list)

    @property
    def num_transfers(self) -> int:
        return len(self.finish_times)


class EagerEngine:
    """Event-driven executor: transfers start as soon as slots free up."""

    def __init__(self, cluster: StorageCluster):
        self.cluster = cluster

    def execute(self, context: MigrationPlanContext) -> EagerReport:
        """Run all transfers of the plan eagerly; returns the report.

        Pending transfers are started longest-first (LPT) among those
        whose endpoints both have free lanes; on every completion the
        freed lanes are refilled.  The result is validated: at no point
        does any disk exceed its transfer constraint.
        """
        graph = context.instance.graph
        pending: List[EdgeId] = sorted(
            context.edge_items,
            key=lambda eid: -self._duration(context, eid),
        )
        active: Dict[Node, int] = {v: 0 for v in graph.nodes}
        report = EagerReport()
        # (finish_time, sequence, edge) — sequence breaks ties stably.
        events: List[Tuple[float, int, EdgeId]] = []
        seq = 0
        now = 0.0

        def try_start() -> None:
            nonlocal seq
            remaining: List[EdgeId] = []
            for eid in pending:
                u, v = graph.endpoints(eid)
                if (
                    active[u] < context.instance.capacity(u)
                    and active[v] < context.instance.capacity(v)
                ):
                    active[u] += 1
                    active[v] += 1
                    duration = self._duration(context, eid)
                    report.start_times[eid] = now
                    heapq.heappush(events, (now + duration, seq, eid))
                    seq += 1
                else:
                    remaining.append(eid)
            pending[:] = remaining

        try_start()
        while events:
            now, _seq, eid = heapq.heappop(events)
            u, v = graph.endpoints(eid)
            active[u] -= 1
            active[v] -= 1
            report.finish_times[eid] = now
            item_id = context.edge_items[eid]
            self.cluster.apply_move(item_id, v)
            report.migrated_items.append(item_id)
            try_start()
        if pending:
            raise ScheduleValidationError(
                f"{len(pending)} transfers never became startable"
            )
        report.total_time = now
        self._validate(context, report)
        return report

    def _duration(self, context: MigrationPlanContext, eid: EdgeId) -> float:
        u, v = context.instance.graph.endpoints(eid)
        item = self.cluster.items[context.edge_items[eid]]
        du = self.cluster.disk(u)
        dv = self.cluster.disk(v)
        rate = min(
            du.bandwidth / du.transfer_limit, dv.bandwidth / dv.transfer_limit
        )
        return item.size / rate

    def _validate(self, context: MigrationPlanContext, report: EagerReport) -> None:
        """Sweep the timeline: concurrency never exceeds any ``c_v``."""
        graph = context.instance.graph
        deltas: List[Tuple[float, int, Node]] = []
        for eid, start in report.start_times.items():
            finish = report.finish_times[eid]
            u, v = graph.endpoints(eid)
            for node in (u, v):
                deltas.append((start, 1, node))
                deltas.append((finish, -1, node))
        # Process finishes before starts at equal times.
        deltas.sort(key=lambda t: (t[0], t[1]))
        load: Dict[Node, int] = {}
        for _time, delta, node in deltas:
            load[node] = load.get(node, 0) + delta
            if load[node] > context.instance.capacity(node):
                raise ScheduleValidationError(
                    f"eager execution oversubscribed disk {node!r}"
                )
