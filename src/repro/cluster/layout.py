"""Data layouts: item placements and target-layout computation.

The migration problem starts from two layouts — where items are and
where they should be.  This module provides the placement map plus the
two layout policies the paper's introduction motivates:

* :func:`balanced_target` — demand-aware load balancing: place items
  so per-disk demand is even (greedy LPT on demand weight), the
  "changing user demand patterns" scenario;
* :func:`spread_onto` — redistribute data onto a grown/shrunk disk set
  (disk addition/removal), keeping per-disk item counts proportional
  to space.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.cluster.disk import Disk, DiskId
from repro.cluster.item import DataItem, ItemId


class Layout:
    """A placement of items on disks (one replica per item)."""

    def __init__(self, placement: Optional[Mapping[ItemId, DiskId]] = None):
        self._placement: Dict[ItemId, DiskId] = dict(placement or {})

    def place(self, item_id: ItemId, disk_id: DiskId) -> None:
        self._placement[item_id] = disk_id

    def remove(self, item_id: ItemId) -> None:
        del self._placement[item_id]

    def disk_of(self, item_id: ItemId) -> DiskId:
        return self._placement[item_id]

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._placement

    def items_on(self, disk_id: DiskId) -> List[ItemId]:
        return [i for i, d in self._placement.items() if d == disk_id]

    @property
    def items(self) -> List[ItemId]:
        return list(self._placement)

    def as_dict(self) -> Dict[ItemId, DiskId]:
        return dict(self._placement)

    def copy(self) -> "Layout":
        return Layout(self._placement)

    def load(
        self, items: Mapping[ItemId, DataItem], by: str = "count"
    ) -> Dict[DiskId, float]:
        """Per-disk load: ``count``, ``size`` or ``demand``."""
        loads: Dict[DiskId, float] = {}
        for item_id, disk_id in self._placement.items():
            if by == "count":
                w = 1.0
            elif by == "size":
                w = items[item_id].size
            elif by == "demand":
                w = items[item_id].demand
            else:
                raise ValueError(f"unknown load metric {by!r}")
            loads[disk_id] = loads.get(disk_id, 0.0) + w
        return loads

    def moves_to(self, target: "Layout") -> List[Tuple[ItemId, DiskId, DiskId]]:
        """Items that must migrate: ``(item, source_disk, target_disk)``.

        Items appearing in only one layout are ignored (creation and
        deletion are not migrations).
        """
        moves = []
        for item_id, src in self._placement.items():
            if item_id in target and target.disk_of(item_id) != src:
                moves.append((item_id, src, target.disk_of(item_id)))
        return moves

    def __len__(self) -> int:
        return len(self._placement)

    def __repr__(self) -> str:
        return f"Layout(items={len(self._placement)})"


def balanced_target(
    items: Mapping[ItemId, DataItem],
    disks: Iterable[Disk],
    weight: str = "demand",
) -> Layout:
    """Demand-balanced placement via greedy LPT.

    Items are placed heaviest-first onto the currently least-loaded
    disk (load normalized by disk bandwidth so faster disks absorb
    hotter data), respecting disk space.
    """
    disk_list = list(disks)
    if not disk_list:
        raise ValueError("no disks to place onto")
    heap: List[Tuple[float, int, DiskId]] = [
        (0.0, i, d.disk_id) for i, d in enumerate(disk_list)
    ]
    heapq.heapify(heap)
    by_id = {d.disk_id: d for d in disk_list}
    used_space: Dict[DiskId, float] = {d.disk_id: 0.0 for d in disk_list}

    def item_weight(item: DataItem) -> float:
        return item.demand if weight == "demand" else item.size

    layout = Layout()
    for item in sorted(items.values(), key=item_weight, reverse=True):
        placed = False
        skipped: List[Tuple[float, int, DiskId]] = []
        while heap:
            load, tie, disk_id = heapq.heappop(heap)
            disk = by_id[disk_id]
            if used_space[disk_id] + item.size <= disk.space:
                layout.place(item.item_id, disk_id)
                used_space[disk_id] += item.size
                heapq.heappush(
                    heap, (load + item_weight(item) / disk.bandwidth, tie, disk_id)
                )
                placed = True
                break
            skipped.append((load, tie, disk_id))
        for entry in skipped:
            heapq.heappush(heap, entry)
        if not placed:
            raise ValueError(f"no disk has space for item {item.item_id!r}")
    return layout


def spread_onto(
    current: Layout,
    items: Mapping[ItemId, DataItem],
    disks: Iterable[Disk],
) -> Layout:
    """Rebalance item *counts* onto a new disk set, moving few items.

    Target per-disk quotas are proportional to disk space (equal for
    unlimited disks).  Items already on a surviving disk stay put while
    the disk is under quota; the overflow and any items on vanished
    disks migrate to under-quota disks.  This mirrors the paper's disk
    addition/removal scenario.
    """
    disk_list = list(disks)
    if not disk_list:
        raise ValueError("no disks to spread onto")
    ids = [d.disk_id for d in disk_list]
    total = len(current)
    finite = [d for d in disk_list if d.space != float("inf")]
    if finite and len(finite) == len(disk_list):
        space_sum = sum(d.space for d in disk_list)
        quota = {d.disk_id: int(round(total * d.space / space_sum)) for d in disk_list}
    else:
        base, extra = divmod(total, len(disk_list))
        quota = {d: base + (1 if i < extra else 0) for i, d in enumerate(ids)}
    # Fix rounding drift.
    drift = total - sum(quota.values())
    for disk_id in ids:
        if drift == 0:
            break
        step = 1 if drift > 0 else -1
        quota[disk_id] += step
        drift -= step

    layout = Layout()
    overflow: List[ItemId] = []
    filled: Dict[DiskId, int] = {d: 0 for d in ids}
    surviving = set(ids)
    for item_id in sorted(current.items, key=repr):
        disk_id = current.disk_of(item_id)
        if disk_id in surviving and filled[disk_id] < quota[disk_id]:
            layout.place(item_id, disk_id)
            filled[disk_id] += 1
        else:
            overflow.append(item_id)
    targets = iter(
        [d for d in ids for _ in range(quota[d] - filled[d])]
    )
    for item_id in overflow:
        layout.place(item_id, next(targets))
    return layout
