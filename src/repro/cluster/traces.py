"""Serializable execution traces.

A trace is the flat, replayable record of a migration execution: one
row per item transfer with timing and endpoints, plus round metadata.
Traces serialize to plain JSON so experiments can be archived and
diffed; :func:`replay_trace` re-applies a trace to a fresh layout and
is used by tests to confirm engine/trace agreement.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Hashable, List, Optional

from repro.cluster.engine import ExecutionReport
from repro.cluster.events import ItemMigrated, RoundCompleted
from repro.cluster.layout import Layout


@dataclass(frozen=True)
class TransferRecord:
    """One executed transfer."""

    time: float
    duration: float
    item_id: Hashable
    source: Hashable
    target: Hashable


@dataclass
class MigrationTrace:
    """A completed migration's transfer history."""

    transfers: List[TransferRecord]
    round_durations: List[float]
    total_time: float

    @classmethod
    def from_report(cls, report: ExecutionReport) -> "MigrationTrace":
        transfers = [
            TransferRecord(
                time=e.time,
                duration=e.duration,
                item_id=e.item_id,
                source=e.source,
                target=e.target,
            )
            for e in report.log.of_type(ItemMigrated)
        ]
        return cls(
            transfers=transfers,
            round_durations=list(report.round_durations),
            total_time=report.total_time,
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "total_time": self.total_time,
                "round_durations": self.round_durations,
                "transfers": [asdict(t) for t in self.transfers],
            },
            default=str,
            indent=2,
        )

    @classmethod
    def from_json(cls, payload: str) -> "MigrationTrace":
        data = json.loads(payload)
        return cls(
            transfers=[TransferRecord(**t) for t in data["transfers"]],
            round_durations=list(data["round_durations"]),
            total_time=float(data["total_time"]),
        )


def replay_trace(trace: MigrationTrace, initial: Layout) -> Layout:
    """Apply a trace's transfers (in time order) to a layout copy."""
    layout = initial.copy()
    for record in sorted(trace.transfers, key=lambda t: t.time):
        if record.item_id in layout and layout.disk_of(record.item_id) != record.source:
            raise ValueError(
                f"trace inconsistent: item {record.item_id!r} expected on "
                f"{record.source!r}, found {layout.disk_of(record.item_id)!r}"
            )
        layout.place(record.item_id, record.target)
    return layout
