"""A storage-cluster simulator: the systems substrate.

The paper's model abstracts a storage cluster as a transfer multigraph;
this subpackage supplies the concrete system around that abstraction so
the library is usable end-to-end:

* :mod:`repro.cluster.disk` / :mod:`repro.cluster.item` — devices with
  bandwidth, space and transfer constraints; unit-size data items.
* :mod:`repro.cluster.layout` — item→disk placements, load metrics and
  demand-aware target-layout computation.
* :mod:`repro.cluster.system` — the cluster: disk add/remove, layout
  diffing into :class:`~repro.core.problem.MigrationInstance`.
* :mod:`repro.cluster.engine` — executes a migration schedule round by
  round under a bandwidth-splitting time model (validating the paper's
  Figure 2 arithmetic), with failure injection and replanning.
* :mod:`repro.cluster.events` / :mod:`repro.cluster.traces` — event log
  and serializable execution traces.
"""

from repro.cluster.disk import Disk
from repro.cluster.item import DataItem
from repro.cluster.layout import Layout
from repro.cluster.system import StorageCluster
from repro.cluster.engine import MigrationEngine, ExecutionReport

__all__ = [
    "Disk",
    "DataItem",
    "Layout",
    "StorageCluster",
    "MigrationEngine",
    "ExecutionReport",
]
