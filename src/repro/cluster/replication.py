"""Replicated layouts and recovery migrations.

The paper's introduction names failure recovery as a driver: "in the
event of disk additions and removals, it is necessary to quickly
redistribute or recover data".  This module supplies the replication
substrate that scenario needs:

* :class:`ReplicatedLayout` — items stored on ``r`` disks each, with
  invariants (distinct disks; distinct racks when a topology is given
  and racks suffice).
* :func:`place_replicated` — initial placement: replicas go to the
  least-loaded disks subject to the rack constraint.
* :func:`recovery_moves` — after a disk dies, every item that lost a
  replica re-replicates by *copying* from a surviving holder to a
  fresh disk; the resulting copy set is a transfer graph, so the
  paper's schedulers apply unchanged (a copy loads its source and
  target exactly like a move).
* :func:`validate_replication` — invariant checking.

``bench_recovery`` measures the re-replication makespan under each
scheduler: the heterogeneity-aware schedule restores redundancy
fastest, which is the window during which a second failure loses data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.cluster.disk import Disk, DiskId
from repro.cluster.item import DataItem, ItemId
from repro.cluster.network import FabricTopology
from repro.core.errors import InvalidInstanceError, ScheduleValidationError
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import EdgeId, Multigraph


class ReplicatedLayout:
    """Placement of each item on a *set* of disks."""

    def __init__(self, placement: Optional[Mapping[ItemId, Iterable[DiskId]]] = None):
        self._placement: Dict[ItemId, Set[DiskId]] = {
            item: set(disks) for item, disks in (placement or {}).items()
        }

    def holders(self, item_id: ItemId) -> Set[DiskId]:
        return set(self._placement.get(item_id, set()))

    def place(self, item_id: ItemId, disk_id: DiskId) -> None:
        self._placement.setdefault(item_id, set()).add(disk_id)

    def drop(self, item_id: ItemId, disk_id: DiskId) -> None:
        self._placement[item_id].discard(disk_id)

    def drop_disk(self, disk_id: DiskId) -> List[ItemId]:
        """Remove a disk everywhere; returns the items that lost a copy."""
        hit = []
        for item_id, disks in self._placement.items():
            if disk_id in disks:
                disks.discard(disk_id)
                hit.append(item_id)
        return hit

    def items_on(self, disk_id: DiskId) -> List[ItemId]:
        return [i for i, ds in self._placement.items() if disk_id in ds]

    @property
    def items(self) -> List[ItemId]:
        return list(self._placement)

    def replica_count(self, item_id: ItemId) -> int:
        return len(self._placement.get(item_id, set()))

    def copy(self) -> "ReplicatedLayout":
        return ReplicatedLayout(self._placement)

    def load(self) -> Dict[DiskId, int]:
        out: Dict[DiskId, int] = {}
        for disks in self._placement.values():
            for d in disks:
                out[d] = out.get(d, 0) + 1
        return out


def place_replicated(
    items: Mapping[ItemId, DataItem],
    disks: Iterable[Disk],
    replicas: int,
    topology: Optional[FabricTopology] = None,
    seed: Optional[int] = None,
) -> ReplicatedLayout:
    """Least-loaded placement of ``replicas`` copies per item.

    With a topology, replicas of one item prefer distinct racks; the
    constraint is relaxed (disk-distinct only) when there are fewer
    racks than replicas.

    Args:
        seed: randomize tie-breaking among equally loaded disks.
            Deterministic ties pair the same disks over and over, which
            concentrates a failed disk's recovery sources on one
            partner; a seeded shuffle spreads replica partners (what
            production placement does) and parallelizes recovery.

    Raises:
        InvalidInstanceError: if there are fewer disks than replicas.
    """
    import random as _random

    fleet = list(disks)
    if replicas < 1:
        raise InvalidInstanceError("replicas must be >= 1")
    if len(fleet) < replicas:
        raise InvalidInstanceError(
            f"{replicas} replicas need at least that many disks, have {len(fleet)}"
        )
    rng = _random.Random(seed) if seed is not None else None

    def tiebreak(default: int) -> int:
        # Fresh random ties on every push vary replica partners per
        # item; a fixed tiebreak would pair the same disks repeatedly.
        return rng.randrange(1 << 30) if rng is not None else default

    heap: List[Tuple[int, int, DiskId]] = [
        (0, tiebreak(i), d.disk_id) for i, d in enumerate(fleet)
    ]
    heapq.heapify(heap)
    layout = ReplicatedLayout()
    for item_id in sorted(items, key=repr):
        chosen: List[Tuple[int, int, DiskId]] = []
        racks_used: Set[str] = set()
        skipped: List[Tuple[int, int, DiskId]] = []
        while len(chosen) < replicas and heap:
            load, tie, disk_id = heapq.heappop(heap)
            rack = topology.rack(disk_id) if topology else None
            if topology and rack in racks_used and _rack_count(topology, fleet) >= replicas:
                skipped.append((load, tie, disk_id))
                continue
            chosen.append((load, tie, disk_id))
            if rack is not None:
                racks_used.add(rack)
        for load, tie, disk_id in chosen:
            layout.place(item_id, disk_id)
            heapq.heappush(heap, (load + 1, tiebreak(tie), disk_id))
        for entry in skipped:
            heapq.heappush(heap, entry)
        if layout.replica_count(item_id) < replicas:
            raise InvalidInstanceError(
                f"could not place {replicas} replicas of {item_id!r}"
            )
    return layout


def _rack_count(topology: FabricTopology, fleet: List[Disk]) -> int:
    return len({topology.rack(d.disk_id) for d in fleet})


@dataclass
class RecoveryPlan:
    """Copies needed to restore full replication after a failure."""

    instance: MigrationInstance
    copy_of_edge: Dict[EdgeId, Tuple[ItemId, DiskId, DiskId]]
    degraded_items: List[ItemId]

    @property
    def num_copies(self) -> int:
        return len(self.copy_of_edge)


def recovery_moves(
    layout: ReplicatedLayout,
    failed_disk: DiskId,
    surviving: Iterable[Disk],
    topology: Optional[FabricTopology] = None,
) -> RecoveryPlan:
    """Plan re-replication after ``failed_disk`` dies.

    The layout is mutated: the failed disk's copies are dropped.  Each
    degraded item copies from its least-loaded surviving holder to the
    least-loaded eligible disk (not already a holder; rack-distinct
    when possible).  The resulting copy set becomes a
    :class:`MigrationInstance` schedulable by any of the paper's
    algorithms.

    Raises:
        InvalidInstanceError: if an item has no surviving replica
            (data loss) or no eligible target disk.
    """
    fleet = {d.disk_id: d for d in surviving}
    if failed_disk in fleet:
        raise InvalidInstanceError("failed disk still listed as surviving")
    degraded = layout.drop_disk(failed_disk)

    load = layout.load()
    for d in fleet:
        load.setdefault(d, 0)

    graph = Multigraph(nodes=list(fleet))
    copy_of_edge: Dict[EdgeId, Tuple[ItemId, DiskId, DiskId]] = {}
    for item_id in degraded:
        holders = layout.holders(item_id) & set(fleet)
        if not holders:
            raise InvalidInstanceError(
                f"item {item_id!r} lost its last replica — unrecoverable"
            )
        holder_racks = {topology.rack(h) for h in holders} if topology else set()
        candidates = [
            d for d in fleet
            if d not in layout.holders(item_id)
        ]
        if topology:
            rack_distinct = [d for d in candidates if topology.rack(d) not in holder_racks]
            if rack_distinct:
                candidates = rack_distinct
        if not candidates:
            raise InvalidInstanceError(
                f"no disk can take a new replica of {item_id!r}"
            )
        target = min(candidates, key=lambda d: (load[d], repr(d)))
        source = min(holders, key=lambda d: (load[d], repr(d)))
        eid = graph.add_edge(source, target)
        copy_of_edge[eid] = (item_id, source, target)
        layout.place(item_id, target)
        load[target] += 1

    capacities = {d.disk_id: d.transfer_limit for d in fleet.values()}
    instance = MigrationInstance(graph, capacities)
    return RecoveryPlan(instance=instance, copy_of_edge=copy_of_edge, degraded_items=degraded)


def recovery_moves_balanced(
    layout: ReplicatedLayout,
    failed_disk: DiskId,
    surviving: Iterable[Disk],
    topology: Optional[FabricTopology] = None,
) -> RecoveryPlan:
    """Capability-aware recovery target assignment via min-cost flow.

    :func:`recovery_moves` picks targets greedily by storage load; this
    variant assigns all new replicas *jointly*, with convex per-disk
    costs whose k-th unit costs ``k / transfer_limit`` — so receive
    load lands in proportion to transfer capability, directly
    shrinking the re-replication makespan's receive term.  Sources are
    still the surviving holders (fixed at r = 2).

    Raises:
        InvalidInstanceError: on data loss or unassignable replicas.
    """
    from repro.graphs.mincost import convex_assignment

    fleet = {d.disk_id: d for d in surviving}
    if failed_disk in fleet:
        raise InvalidInstanceError("failed disk still listed as surviving")
    degraded = layout.drop_disk(failed_disk)
    if not degraded:
        graph = Multigraph(nodes=list(fleet))
        capacities = {d.disk_id: d.transfer_limit for d in fleet.values()}
        return RecoveryPlan(MigrationInstance(graph, capacities), {}, [])

    allowed: Dict = {}
    for item_id in degraded:
        holders = layout.holders(item_id) & set(fleet)
        if not holders:
            raise InvalidInstanceError(
                f"item {item_id!r} lost its last replica — unrecoverable"
            )
        holder_racks = {topology.rack(h) for h in holders} if topology else set()
        candidates = [d for d in fleet if d not in layout.holders(item_id)]
        if topology:
            rack_distinct = [
                d for d in candidates if topology.rack(d) not in holder_racks
            ]
            if rack_distinct:
                candidates = rack_distinct
        if not candidates:
            raise InvalidInstanceError(f"no disk can take a replica of {item_id!r}")
        allowed[item_id] = candidates

    n_copies = len(degraded)
    # Convex marginal costs: the k-th replica on disk d costs the
    # receive-rounds it forces, scaled to integers.
    scale = 1
    for d in fleet.values():
        scale = scale * d.transfer_limit // _gcd(scale, d.transfer_limit)
    marginal = {
        d: [(k + 1) * scale // fleet[d].transfer_limit for k in range(n_copies)]
        for d in fleet
    }
    assignment = convex_assignment(
        demands={i: 1 for i in degraded},
        suppliers={d: n_copies for d in fleet},
        allowed=allowed,
        marginal_cost=marginal,
    )

    load = layout.load()
    for d in fleet:
        load.setdefault(d, 0)
    graph = Multigraph(nodes=list(fleet))
    copy_of_edge: Dict[EdgeId, Tuple[ItemId, DiskId, DiskId]] = {}
    for item_id in degraded:
        (target,) = assignment[item_id]
        holders = layout.holders(item_id) & set(fleet)
        source = min(holders, key=lambda d: (load[d], repr(d)))
        eid = graph.add_edge(source, target)
        copy_of_edge[eid] = (item_id, source, target)
        layout.place(item_id, target)
        load[target] += 1

    capacities = {d.disk_id: d.transfer_limit for d in fleet.values()}
    instance = MigrationInstance(graph, capacities)
    return RecoveryPlan(instance=instance, copy_of_edge=copy_of_edge, degraded_items=degraded)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def validate_replication(
    layout: ReplicatedLayout,
    replicas: int,
    topology: Optional[FabricTopology] = None,
    racks_available: Optional[int] = None,
) -> None:
    """Every item has ``replicas`` copies on distinct disks (and racks
    when enough racks exist).

    Raises:
        ScheduleValidationError: on any violation.
    """
    for item_id in layout.items:
        holders = layout.holders(item_id)
        if len(holders) != replicas:
            raise ScheduleValidationError(
                f"item {item_id!r} has {len(holders)} replicas, wants {replicas}"
            )
        if topology is not None:
            racks = {topology.rack(d) for d in holders}
            enough = (racks_available or len(racks)) >= replicas
            if enough and len(racks) != replicas:
                raise ScheduleValidationError(
                    f"item {item_id!r} replicas share racks: {sorted(racks)}"
                )
