"""Network models: how fast does a round actually run?

The paper assumes "a very fast network connection dedicated to support
a storage system" (Section II), i.e. the disks are the bottleneck.
Real clusters sit on rack fabrics with oversubscribed cores, so the
simulator makes the rate computation pluggable:

* :class:`FairShareRates` — the paper's Figure 2 model (and the
  engine's default): each disk splits its bandwidth over the transfers
  it actually runs this round; a transfer's rate is the min of its
  endpoints' shares.
* :class:`ReservedLaneRates` — each disk statically partitions its
  bandwidth into ``c_v`` lanes regardless of use; matches the eager
  engine's assumption, enabling apples-to-apples comparison.
* :class:`FabricRates` — wraps another model and adds a two-level rack
  topology: transfers crossing racks additionally share each rack's
  uplink, whose capacity is ``rack_bandwidth / oversubscription``.
  ``bench_network`` sweeps the oversubscription factor.

A model's only obligation is :meth:`RateModel.round_duration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Protocol, Tuple

from repro.cluster.disk import DiskId
from repro.cluster.system import MigrationPlanContext, StorageCluster
from repro.graphs.multigraph import EdgeId


class RateModel(Protocol):
    """Strategy for turning a round of transfers into a duration."""

    def round_duration(
        self,
        cluster: StorageCluster,
        context: MigrationPlanContext,
        round_edges: List[EdgeId],
    ) -> float:
        """Simulated duration of executing ``round_edges`` together."""
        ...


def _concurrency(context: MigrationPlanContext, round_edges: List[EdgeId]) -> Dict[DiskId, int]:
    counts: Dict[DiskId, int] = {}
    graph = context.instance.graph
    for eid in round_edges:
        u, v = graph.endpoints(eid)
        counts[u] = counts.get(u, 0) + 1
        counts[v] = counts.get(v, 0) + 1
    return counts


class FairShareRates:
    """Figure 2 semantics: bandwidth splits over *actual* concurrency."""

    def round_duration(self, cluster, context, round_edges) -> float:
        if not round_edges:
            return 0.0
        graph = context.instance.graph
        counts = _concurrency(context, round_edges)
        duration = 0.0
        for eid in round_edges:
            u, v = graph.endpoints(eid)
            item = cluster.items[context.edge_items[eid]]
            rate = min(
                cluster.disk(u).per_transfer_rate(counts[u]),
                cluster.disk(v).per_transfer_rate(counts[v]),
            )
            duration = max(duration, item.size / rate)
        return duration


class ReservedLaneRates:
    """Static lanes: every transfer gets ``bandwidth / c_v`` at best."""

    def round_duration(self, cluster, context, round_edges) -> float:
        if not round_edges:
            return 0.0
        graph = context.instance.graph
        duration = 0.0
        for eid in round_edges:
            u, v = graph.endpoints(eid)
            item = cluster.items[context.edge_items[eid]]
            du, dv = cluster.disk(u), cluster.disk(v)
            rate = min(
                du.bandwidth / du.transfer_limit, dv.bandwidth / dv.transfer_limit
            )
            duration = max(duration, item.size / rate)
        return duration


@dataclass
class FabricTopology:
    """Two-level topology: disks live in racks behind shared uplinks.

    Attributes:
        rack_of: disk -> rack assignment (disks absent default to the
            ``default_rack``).
        uplink_bandwidth: per-rack uplink capacity in size units per
            time unit, *after* oversubscription is applied.
    """

    rack_of: Dict[DiskId, str] = field(default_factory=dict)
    uplink_bandwidth: float = 4.0
    default_rack: str = "rack0"

    def rack(self, disk_id: DiskId) -> str:
        return self.rack_of.get(disk_id, self.default_rack)

    def crosses_racks(self, u: DiskId, v: DiskId) -> bool:
        return self.rack(u) != self.rack(v)

    @classmethod
    def striped(cls, disk_ids: Iterable[DiskId], racks: int, uplink_bandwidth: float) -> "FabricTopology":
        """Assign disks to ``racks`` racks round-robin."""
        assignment = {
            d: f"rack{i % racks}" for i, d in enumerate(sorted(disk_ids, key=repr))
        }
        return cls(rack_of=assignment, uplink_bandwidth=uplink_bandwidth)


class FabricRates:
    """Endpoint shares capped by rack-uplink shares.

    A cross-rack transfer also consumes both racks' uplinks; each
    uplink splits its bandwidth evenly over the cross-rack transfers
    using it this round.
    """

    def __init__(self, topology: FabricTopology, inner: Optional[RateModel] = None):
        self.topology = topology
        self.inner = inner if inner is not None else FairShareRates()

    def round_duration(self, cluster, context, round_edges) -> float:
        if not round_edges:
            return 0.0
        graph = context.instance.graph
        counts = _concurrency(context, round_edges)
        # Cross-rack transfer count per rack uplink.
        uplink_load: Dict[str, int] = {}
        for eid in round_edges:
            u, v = graph.endpoints(eid)
            if self.topology.crosses_racks(u, v):
                for rack in (self.topology.rack(u), self.topology.rack(v)):
                    uplink_load[rack] = uplink_load.get(rack, 0) + 1

        duration = 0.0
        for eid in round_edges:
            u, v = graph.endpoints(eid)
            item = cluster.items[context.edge_items[eid]]
            rate = min(
                cluster.disk(u).per_transfer_rate(counts[u]),
                cluster.disk(v).per_transfer_rate(counts[v]),
            )
            if self.topology.crosses_racks(u, v):
                for rack in (self.topology.rack(u), self.topology.rack(v)):
                    share = self.topology.uplink_bandwidth / uplink_load[rack]
                    rate = min(rate, share)
            duration = max(duration, item.size / rate)
        return duration


def rack_locality(context: MigrationPlanContext, topology: FabricTopology) -> float:
    """Fraction of transfers that stay within a rack (0..1)."""
    graph = context.instance.graph
    edges = list(context.edge_items)
    if not edges:
        return 1.0
    local = sum(
        1
        for eid in edges
        if not topology.crosses_racks(*graph.endpoints(eid))
    )
    return local / len(edges)
