"""Event log for cluster simulations.

Everything the simulator does — round boundaries, individual item
transfers, disk arrivals/departures, replans after failures — is
recorded as a typed event with a timestamp, so tests can assert on
behaviour and traces can be serialized for replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional


@dataclass(frozen=True)
class Event:
    """Base event: ``time`` is simulated time."""

    time: float


@dataclass(frozen=True)
class RoundStarted(Event):
    round_index: int
    num_transfers: int


@dataclass(frozen=True)
class RoundCompleted(Event):
    round_index: int
    duration: float


@dataclass(frozen=True)
class ItemMigrated(Event):
    item_id: Hashable
    source: Hashable
    target: Hashable
    duration: float


@dataclass(frozen=True)
class DiskAdded(Event):
    disk_id: Hashable


@dataclass(frozen=True)
class DiskRemoved(Event):
    disk_id: Hashable


@dataclass(frozen=True)
class MigrationReplanned(Event):
    reason: str
    remaining_items: int


class EventLog:
    """Append-only, time-ordered event record."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, event: Event) -> None:
        if self._events and event.time < self._events[-1].time - 1e-9:
            raise ValueError(
                f"event at t={event.time} recorded after t={self._events[-1].time}"
            )
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def of_type(self, event_type: type) -> List[Event]:
        return [e for e in self._events if isinstance(e, event_type)]

    def last_time(self) -> float:
        return self._events[-1].time if self._events else 0.0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
