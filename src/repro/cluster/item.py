"""Data items stored and migrated by the cluster.

The paper assumes unit-size items ("each data item has the same
length"), so the default size is 1.0; the engine nevertheless carries
sizes through its time model so non-uniform experiments are possible
(they simply leave the paper's regime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

ItemId = Hashable


@dataclass(frozen=True)
class DataItem:
    """One migratable unit of data.

    Attributes:
        item_id: unique identifier.
        size: size in arbitrary units; the paper's model uses 1.0.
        demand: access popularity weight, used by demand-aware layout
            computation (e.g. Zipf-distributed in the VoD scenario).
    """

    item_id: ItemId
    size: float = 1.0
    demand: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"item {self.item_id!r} has non-positive size {self.size}")
        if self.demand < 0:
            raise ValueError(f"item {self.item_id!r} has negative demand {self.demand}")
