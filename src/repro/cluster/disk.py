"""Storage devices.

A disk's *transfer constraint* ``c_v`` — how many simultaneous
transfers it can take part in — is the paper's central heterogeneity
parameter.  The simulator additionally models total migration bandwidth
(split evenly across a round's concurrent transfers, matching the
Figure 2 arithmetic) and storage space, which the scheduling model
ignores but end-to-end experiments should not silently violate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

DiskId = Hashable


@dataclass
class Disk:
    """One storage device.

    Attributes:
        disk_id: unique identifier.
        transfer_limit: ``c_v`` — max simultaneous transfers.
        bandwidth: total migration bandwidth in size-units per time
            unit; shared evenly among the disk's concurrent transfers.
        space: storage capacity in size units (``inf`` = unlimited).
        generation: free-form tag for hardware cohorts ("2018-hdd",
            "2024-nvme", …); workload generators use it to assign
            heterogeneous ``c_v`` mixes.
    """

    disk_id: DiskId
    transfer_limit: int = 1
    bandwidth: float = 1.0
    space: float = float("inf")
    generation: str = "default"

    def __post_init__(self) -> None:
        if not isinstance(self.transfer_limit, int) or self.transfer_limit < 1:
            raise ValueError(
                f"disk {self.disk_id!r}: transfer_limit must be a positive int, "
                f"got {self.transfer_limit!r}"
            )
        if self.bandwidth <= 0:
            raise ValueError(f"disk {self.disk_id!r}: bandwidth must be positive")
        if self.space <= 0:
            raise ValueError(f"disk {self.disk_id!r}: space must be positive")

    def per_transfer_rate(self, concurrent: int) -> float:
        """Bandwidth each of ``concurrent`` simultaneous transfers gets."""
        if concurrent < 1:
            raise ValueError("concurrent must be >= 1")
        if concurrent > self.transfer_limit:
            raise ValueError(
                f"disk {self.disk_id!r} asked for {concurrent} concurrent transfers "
                f"but c_v = {self.transfer_limit}"
            )
        return self.bandwidth / concurrent
