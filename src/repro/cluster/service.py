"""Client-visible service degradation during a migration.

The paper's core motivation: "the storage system will perform
sub-optimally until migrations are finished."  This module quantifies
that: while disk ``v`` runs ``k`` of its ``c_v`` transfer lanes, a
``k / c_v`` fraction of its capability is unavailable to clients, and
the demand parked on ``v`` suffers proportionally.  Summing over rounds
(weighted by simulated round duration) gives a *degradation integral* —
demand-seconds of impaired service — the business number a shorter or
better-packed schedule improves.

Used by ``bench_qos`` to compare schedulers on the metric operators
actually feel, not just round counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.cluster.disk import DiskId
from repro.cluster.engine import MigrationEngine
from repro.cluster.system import MigrationPlanContext, StorageCluster
from repro.core.schedule import MigrationSchedule


@dataclass
class DegradationReport:
    """Demand-weighted service impairment of one schedule.

    Two components, reported separately and summed in :attr:`total`:

    * **interference** — while disk ``v`` runs ``k`` of its ``c_v``
      transfer lanes, the demand parked on it is impaired by ``k/c_v``;
    * **displacement** — until an item reaches its target it is served
      from the *wrong* place (the reason the layout is changing), so
      each pending item charges its demand per time unit until its
      round completes.  This is the paper's "the storage system will
      perform sub-optimally until migrations are finished".
    """

    interference: float = 0.0
    displacement: float = 0.0
    per_disk: Dict[DiskId, float] = field(default_factory=dict)
    duration: float = 0.0
    num_rounds: int = 0

    @property
    def total(self) -> float:
        return self.interference + self.displacement

    @property
    def mean_rate(self) -> float:
        """Average demand-impairment per time unit while migrating."""
        return self.total / self.duration if self.duration else 0.0


def disk_demand(cluster: StorageCluster) -> Dict[DiskId, float]:
    """Demand currently served by each disk (sum of resident items')."""
    demand: Dict[DiskId, float] = {d: 0.0 for d in cluster.disks}
    for item_id in cluster.layout.items:
        disk_id = cluster.layout.disk_of(item_id)
        if disk_id in demand:
            demand[disk_id] += cluster.items[item_id].demand
    return demand


def service_degradation(
    cluster: StorageCluster,
    context: MigrationPlanContext,
    schedule: MigrationSchedule,
    demand: Optional[Mapping[DiskId, float]] = None,
    engine: Optional[MigrationEngine] = None,
) -> DegradationReport:
    """Compute the degradation integral of a schedule.

    Per round: ``duration × Σ_v demand_v × (transfers_v / c_v)``.
    Demand defaults to the demand parked on each disk at migration
    start (conservative: items in flight keep charging their source).

    The cluster is *not* mutated — durations are computed from the
    plan, not by executing it.
    """
    dem = dict(demand) if demand is not None else disk_demand(cluster)
    eng = engine if engine is not None else MigrationEngine(cluster)
    graph = context.instance.graph
    report = DegradationReport(num_rounds=schedule.num_rounds)

    # Demand of items still awaiting migration (for displacement).
    pending_demand = sum(
        cluster.items[item_id].demand for item_id in context.edge_items.values()
    )

    for round_edges in schedule.rounds:
        duration = eng.round_duration(context, round_edges)
        report.duration += duration
        # Items in flight this round are still displaced during it.
        report.displacement += duration * pending_demand
        loads: Dict[DiskId, int] = {}
        for eid in round_edges:
            u, v = graph.endpoints(eid)
            loads[u] = loads.get(u, 0) + 1
            loads[v] = loads.get(v, 0) + 1
        for disk_id, k in loads.items():
            impairment = duration * dem.get(disk_id, 0.0) * (
                k / context.instance.capacity(disk_id)
            )
            report.per_disk[disk_id] = report.per_disk.get(disk_id, 0.0) + impairment
            report.interference += impairment
        for eid in round_edges:
            pending_demand -= cluster.items[context.edge_items[eid]].demand
    return report


def compare_degradation(
    cluster: StorageCluster,
    context: MigrationPlanContext,
    schedules: Mapping[str, MigrationSchedule],
) -> Dict[str, DegradationReport]:
    """Degradation report per named schedule (shared demand snapshot)."""
    demand = disk_demand(cluster)
    return {
        name: service_degradation(cluster, context, sched, demand=demand)
        for name, sched in schedules.items()
    }
