"""Integral maximum flow (Dinic's algorithm, plus Edmonds–Karp).

Lemma 4.1 of the paper proves that the ``c_v/2``-matching needed by the
even-capacity scheduler exists by exhibiting a *fractional* flow and
invoking the integrality theorem: an integral flow of the same value
can be found with any augmenting-path algorithm.  This module supplies
that machinery.  Dinic's algorithm is the workhorse (it is
``O(E · sqrt(V))`` on the unit-capacity bipartite networks we build);
Edmonds–Karp is kept as an independent implementation used by the test
suite to cross-check flow values.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

Node = Hashable


class FlowNetwork:
    """A directed flow network with integer capacities.

    Edges are stored in a flat adjacency structure with explicit
    residual twins (the classic Dinic layout).  ``add_edge`` returns an
    index with which the final flow on that edge can be queried after
    :meth:`max_flow` runs.
    """

    def __init__(self) -> None:
        self._index: Dict[Node, int] = {}
        self._names: List[Node] = []
        # Parallel arrays: for edge i, twin is i ^ 1.
        self._to: List[int] = []
        self._cap: List[int] = []
        self._adj: List[List[int]] = []

    def _node(self, v: Node) -> int:
        if v not in self._index:
            self._index[v] = len(self._names)
            self._names.append(v)
            self._adj.append([])
        return self._index[v]

    def add_node(self, v: Node) -> None:
        """Ensure node ``v`` exists."""
        self._node(v)

    def add_edge(self, u: Node, v: Node, capacity: int) -> int:
        """Add a directed edge ``u -> v``; return its handle.

        Raises:
            ValueError: if ``capacity`` is negative.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on edge {u!r}->{v!r}")
        ui, vi = self._node(u), self._node(v)
        handle = len(self._to)
        self._to.append(vi)
        self._cap.append(capacity)
        self._adj[ui].append(handle)
        self._to.append(ui)
        self._cap.append(0)
        self._adj[vi].append(handle + 1)
        return handle

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    def flow_on(self, handle: int) -> int:
        """Flow routed through the edge returned by :meth:`add_edge`."""
        # Flow equals the residual capacity accumulated on the twin.
        return self._cap[handle ^ 1]

    def capacity_of(self, handle: int) -> int:
        """Remaining (residual) capacity of the edge."""
        return self._cap[handle]

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def max_flow(self, source: Node, sink: Node) -> int:
        """Run Dinic's algorithm; return the maximum flow value.

        Subsequent :meth:`flow_on` calls report the per-edge flows of
        the computed maximum flow (which is integral because all
        capacities are integers).
        """
        s, t = self._node(source), self._node(sink)
        if s == t:
            raise ValueError("source and sink must differ")
        total = 0
        n = self.num_nodes
        while True:
            level = self._bfs_levels(s, t)
            if level[t] < 0:
                return total
            it = [0] * n
            infinity = sum(self._cap) + 1
            while True:
                pushed = self._dfs_push(s, t, infinity, level, it)
                if not pushed:
                    break
                total += pushed

    def _bfs_levels(self, s: int, t: int) -> List[int]:
        level = [-1] * self.num_nodes
        level[s] = 0
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for h in self._adj[v]:
                if self._cap[h] > 0 and level[self._to[h]] < 0:
                    level[self._to[h]] = level[v] + 1
                    queue.append(self._to[h])
        return level

    def _dfs_push(self, v: int, t: int, limit: int, level: List[int], it: List[int]) -> int:
        if v == t:
            return limit
        while it[v] < len(self._adj[v]):
            h = self._adj[v][it[v]]
            w = self._to[h]
            if self._cap[h] > 0 and level[w] == level[v] + 1:
                pushed = self._dfs_push(w, t, min(limit, self._cap[h]), level, it)
                if pushed:
                    self._cap[h] -= pushed
                    self._cap[h ^ 1] += pushed
                    return pushed
            it[v] += 1
        level[v] = -1
        return 0


def max_flow(
    edges: List[Tuple[Node, Node, int]], source: Node, sink: Node
) -> Tuple[int, Dict[int, int]]:
    """Convenience wrapper: build a network, run Dinic, return flows.

    Args:
        edges: list of ``(u, v, capacity)``.
        source / sink: endpoints.

    Returns:
        ``(value, flows)`` where ``flows[i]`` is the flow on the i-th
        input edge.
    """
    net = FlowNetwork()
    handles = [net.add_edge(u, v, c) for u, v, c in edges]
    net.add_node(source)
    net.add_node(sink)
    value = net.max_flow(source, sink)
    return value, {i: net.flow_on(h) for i, h in enumerate(handles)}


def edmonds_karp(
    edges: List[Tuple[Node, Node, int]], source: Node, sink: Node
) -> int:
    """Independent Edmonds–Karp implementation (value only).

    Used by the test suite to cross-validate :class:`FlowNetwork`; it
    shares no code with Dinic above.
    """
    # Build residual adjacency as nested dicts.
    residual: Dict[Node, Dict[Node, int]] = {}

    def ensure(v: Node) -> None:
        residual.setdefault(v, {})

    for u, v, c in edges:
        ensure(u)
        ensure(v)
        residual[u][v] = residual[u].get(v, 0) + c
        residual[v].setdefault(u, 0)
    ensure(source)
    ensure(sink)

    value = 0
    while True:
        # BFS for a shortest augmenting path.
        parent: Dict[Node, Optional[Node]] = {source: None}
        queue = deque([source])
        while queue and sink not in parent:
            x = queue.popleft()
            for y, cap in residual[x].items():
                if cap > 0 and y not in parent:
                    parent[y] = x
                    queue.append(y)
        if sink not in parent:
            return value
        # Bottleneck along the path.
        bottleneck: Optional[int] = None
        y = sink
        while (x := parent[y]) is not None:
            cap = residual[x][y]
            bottleneck = cap if bottleneck is None else min(bottleneck, cap)
            y = x
        assert bottleneck is not None  # sink reachable, so the path has an edge
        y = sink
        while (x := parent[y]) is not None:
            residual[x][y] -= bottleneck
            residual[y][x] += bottleneck
            y = x
        value += bottleneck
