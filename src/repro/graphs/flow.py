"""Integral maximum flow (Dinic's algorithm, plus Edmonds–Karp).

Lemma 4.1 of the paper proves that the ``c_v/2``-matching needed by the
even-capacity scheduler exists by exhibiting a *fractional* flow and
invoking the integrality theorem: an integral flow of the same value
can be found with any augmenting-path algorithm.  This module supplies
that machinery.  Dinic's algorithm is the workhorse (it is
``O(E · sqrt(V))`` on the unit-capacity bipartite networks we build);
Edmonds–Karp is kept as an independent implementation used by the test
suite to cross-check flow values.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

Node = Hashable


class FlowNetwork:
    """A directed flow network with integer capacities.

    Edges are stored in a flat adjacency structure with explicit
    residual twins (the classic Dinic layout).  ``add_edge`` returns an
    index with which the final flow on that edge can be queried after
    :meth:`max_flow` runs.
    """

    def __init__(self) -> None:
        self._index: Dict[Node, int] = {}
        self._names: List[Node] = []
        # Parallel arrays: for edge i, twin is i ^ 1.
        self._to: List[int] = []
        self._cap: List[int] = []
        self._adj: List[List[int]] = []

    def _node(self, v: Node) -> int:
        if v not in self._index:
            self._index[v] = len(self._names)
            self._names.append(v)
            self._adj.append([])
        return self._index[v]

    def add_node(self, v: Node) -> None:
        """Ensure node ``v`` exists."""
        self._node(v)

    def add_edge(self, u: Node, v: Node, capacity: int) -> int:
        """Add a directed edge ``u -> v``; return its handle.

        Raises:
            ValueError: if ``capacity`` is negative.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on edge {u!r}->{v!r}")
        ui, vi = self._node(u), self._node(v)
        handle = len(self._to)
        self._to.append(vi)
        self._cap.append(capacity)
        self._adj[ui].append(handle)
        self._to.append(ui)
        self._cap.append(0)
        self._adj[vi].append(handle + 1)
        return handle

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    def flow_on(self, handle: int) -> int:
        """Flow routed through the edge returned by :meth:`add_edge`."""
        # Flow equals the residual capacity accumulated on the twin.
        return self._cap[handle ^ 1]

    def capacity_of(self, handle: int) -> int:
        """Remaining (residual) capacity of the edge."""
        return self._cap[handle]

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def max_flow(self, source: Node, sink: Node) -> int:
        """Run Dinic's algorithm; return the maximum flow value.

        Subsequent :meth:`flow_on` calls report the per-edge flows of
        the computed maximum flow (which is integral because all
        capacities are integers).
        """
        s, t = self._node(source), self._node(sink)
        if s == t:
            raise ValueError("source and sink must differ")
        total = 0
        n = self.num_nodes
        while True:
            level = self._bfs_levels(s, t)
            if level[t] < 0:
                return total
            it = [0] * n
            infinity = sum(self._cap) + 1
            while True:
                pushed = self._dfs_push(s, t, infinity, level, it)
                if not pushed:
                    break
                total += pushed

    def _bfs_levels(self, s: int, t: int) -> List[int]:
        level = [-1] * self.num_nodes
        level[s] = 0
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for h in self._adj[v]:
                if self._cap[h] > 0 and level[self._to[h]] < 0:
                    level[self._to[h]] = level[v] + 1
                    queue.append(self._to[h])
        return level

    def _dfs_push(self, v: int, t: int, limit: int, level: List[int], it: List[int]) -> int:
        if v == t:
            return limit
        while it[v] < len(self._adj[v]):
            h = self._adj[v][it[v]]
            w = self._to[h]
            if self._cap[h] > 0 and level[w] == level[v] + 1:
                pushed = self._dfs_push(w, t, min(limit, self._cap[h]), level, it)
                if pushed:
                    self._cap[h] -= pushed
                    self._cap[h ^ 1] += pushed
                    return pushed
            it[v] += 1
        level[v] = -1
        return 0


class IntFlowNetwork:
    """Array-backend mirror of :class:`FlowNetwork` over dense int nodes.

    Same residual-twin layout (twin of handle ``h`` is ``h ^ 1``), same
    Dinic phase structure, same per-node arc order semantics — but
    nodes are preallocated dense ints (no interning dict, no hashable
    labels) and the BFS/DFS inner loops run on local bindings of the
    flat arrays.  Given the same arc insertion order and capacities it
    performs *exactly* the same augmentations as :class:`FlowNetwork`,
    which is what lets the compact solvers replicate the object
    engine's matchings bit for bit.

    Capacities are mutable via :meth:`set_capacity`, which the peeling
    engines use to reset quota arcs between peels instead of rebuilding
    the network (see ``repro.graphs.matching.QuotaPeeler``).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError(f"negative node count {num_nodes}")
        self._to: List[int] = []
        self._cap: List[int] = []
        self._adj: List[List[int]] = [[] for _ in range(num_nodes)]

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed arc ``u -> v``; return its handle."""
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on edge {u}->{v}")
        to, cap = self._to, self._cap
        handle = len(to)
        to.append(v)
        cap.append(capacity)
        self._adj[u].append(handle)
        to.append(u)
        cap.append(0)
        self._adj[v].append(handle + 1)
        return handle

    def flow_on(self, handle: int) -> int:
        """Flow routed through the arc (residual on the twin)."""
        return self._cap[handle ^ 1]

    def capacity_of(self, handle: int) -> int:
        """Remaining (residual) capacity of the arc."""
        return self._cap[handle]

    def set_capacity(self, handle: int, capacity: int) -> None:
        """Overwrite the residual capacity of one arc (twin untouched)."""
        self._cap[handle] = capacity

    def max_flow(self, s: int, t: int) -> int:
        """Dinic's algorithm, mirroring :meth:`FlowNetwork.max_flow`.

        The phase structure, level computation, current-arc (``it``)
        advancement, dead-node marking and augmentation order are all
        identical to the object implementation; only the constant
        factors differ (dense ints, locally bound arrays, no attribute
        lookups in the hot loops).
        """
        if s == t:
            raise ValueError("source and sink must differ")
        to = self._to
        cap = self._cap
        adj = self._adj
        n = len(adj)
        total = 0
        while True:
            # BFS levels.  Level assignment is order-independent (a
            # node's level is its residual BFS distance from s), so
            # this loop is free to differ cosmetically from the object
            # BFS — the resulting ``level`` array is the same.
            level = [-1] * n
            level[s] = 0
            frontier = [s]
            depth = 0
            while frontier:
                depth += 1
                nxt: List[int] = []
                for v in frontier:
                    for h in adj[v]:
                        if cap[h] > 0:
                            w = to[h]
                            if level[w] < 0:
                                level[w] = depth
                                nxt.append(w)
                frontier = nxt
            if level[t] < 0:
                return total
            it = [0] * n
            # Iterative blocking-flow DFS.  Behaviorally identical to
            # the object engine's repeated recursive ``_dfs_push``
            # calls: after an augmentation the recursion would unwind
            # to s and re-descend along the unchanged ``it`` pointers,
            # re-taking exactly the kept arcs (caps above the first
            # saturated arc are still positive, levels unchanged) — so
            # truncating the explicit path at that arc and continuing
            # visits the same arcs in the same order, without the
            # recursion depth limit on long zig-zag residual paths.
            path = [s]
            arcs: List[int] = []
            while path:
                v = path[-1]
                if v == t:
                    pushed = min(cap[h] for h in arcs)
                    cut = len(arcs)
                    for idx, h in enumerate(arcs):
                        c = cap[h] - pushed
                        cap[h] = c
                        cap[h ^ 1] += pushed
                        if c == 0 and idx < cut:
                            cut = idx
                    total += pushed
                    del path[cut + 1 :]
                    del arcs[cut:]
                    continue
                row = adj[v]
                nrow = len(row)
                i = it[v]
                lv = level[v] + 1
                advanced = False
                while i < nrow:
                    h = row[i]
                    if cap[h] > 0:
                        w = to[h]
                        if level[w] == lv:
                            it[v] = i
                            path.append(w)
                            arcs.append(h)
                            advanced = True
                            break
                    i += 1
                if advanced:
                    continue
                it[v] = i
                level[v] = -1
                path.pop()
                if path:
                    it[path[-1]] += 1
                    arcs.pop()


def max_flow(
    edges: List[Tuple[Node, Node, int]], source: Node, sink: Node
) -> Tuple[int, Dict[int, int]]:
    """Convenience wrapper: build a network, run Dinic, return flows.

    Args:
        edges: list of ``(u, v, capacity)``.
        source / sink: endpoints.

    Returns:
        ``(value, flows)`` where ``flows[i]`` is the flow on the i-th
        input edge.
    """
    net = FlowNetwork()
    handles = [net.add_edge(u, v, c) for u, v, c in edges]
    net.add_node(source)
    net.add_node(sink)
    value = net.max_flow(source, sink)
    return value, {i: net.flow_on(h) for i, h in enumerate(handles)}


def edmonds_karp(
    edges: List[Tuple[Node, Node, int]], source: Node, sink: Node
) -> int:
    """Independent Edmonds–Karp implementation (value only).

    Used by the test suite to cross-validate :class:`FlowNetwork`; it
    shares no code with Dinic above.
    """
    # Build residual adjacency as nested dicts.
    residual: Dict[Node, Dict[Node, int]] = {}

    def ensure(v: Node) -> None:
        residual.setdefault(v, {})

    for u, v, c in edges:
        ensure(u)
        ensure(v)
        residual[u][v] = residual[u].get(v, 0) + c
        residual[v].setdefault(u, 0)
    ensure(source)
    ensure(sink)

    value = 0
    while True:
        # BFS for a shortest augmenting path.
        parent: Dict[Node, Optional[Node]] = {source: None}
        queue = deque([source])
        while queue and sink not in parent:
            x = queue.popleft()
            for y, cap in residual[x].items():
                if cap > 0 and y not in parent:
                    parent[y] = x
                    queue.append(y)
        if sink not in parent:
            return value
        # Bottleneck along the path.
        bottleneck: Optional[int] = None
        y = sink
        while (x := parent[y]) is not None:
            cap = residual[x][y]
            bottleneck = cap if bottleneck is None else min(bottleneck, cap)
            y = x
        assert bottleneck is not None  # sink reachable, so the path has an edge
        y = sink
        while (x := parent[y]) is not None:
            residual[x][y] -= bottleneck
            residual[y][x] += bottleneck
            y = x
        value += bottleneck
