"""Edge-coloring algorithms.

All colorers return a dict ``edge_id -> color`` (colors are ints
``0..q-1``).  ``proper`` colorings allow each color at most once per
node (the classic notion, i.e. ``c_v = 1``); *capacitated* colorings —
the paper's notion — allow color ``c`` up to ``c_v`` times at node
``v`` and live in :mod:`repro.core`.

Available colorers, by guarantee:

========================  =========================  ====================
algorithm                 applies to                 colors used
========================  =========================  ====================
:func:`greedy_coloring`   any multigraph             ``<= 2Δ - 1``
:func:`vizing_coloring`   simple graphs              ``<= Δ + 1``
:func:`bipartite_coloring`  bipartite multigraphs    ``Δ`` (optimal)
:func:`euler_split_coloring`  any multigraph         ``<= 3·2^(⌈log2 Δ⌉-1)``
:func:`kempe_coloring`    any multigraph             heuristic, hard cap
                                                     ``2Δ - 1``
========================  =========================  ====================
"""

from repro.graphs.coloring.base import (
    num_colors_used,
    validate_proper_coloring,
)
from repro.graphs.coloring.greedy import greedy_coloring
from repro.graphs.coloring.vizing import vizing_coloring
from repro.graphs.coloring.bipartite import bipartite_coloring
from repro.graphs.coloring.euler_split import euler_split_coloring
from repro.graphs.coloring.kempe import kempe_coloring

__all__ = [
    "num_colors_used",
    "validate_proper_coloring",
    "greedy_coloring",
    "vizing_coloring",
    "bipartite_coloring",
    "euler_split_coloring",
    "kempe_coloring",
]
