"""Edge coloring by recursive Euler splitting.

The classical divide-and-conquer colorer: an Euler partition splits a
multigraph into two subgraphs whose degrees are (almost exactly)
halved; recursing until the parts are path/cycle systems (max degree
``<= 2``, 3-colorable) yields a proper coloring of roughly ``1.5Δ``
colors when ``Δ`` is a power of two.  It is the constructive engine
behind the Shannon-style bound used by Saia's 1.5-approximation
baseline (Section I of the paper) and a useful foil for the
Kempe-chain colorer in the benchmarks.

The split walks Euler circuits of the (evenized) graph and assigns
edges to the two parts alternately.  Circuits of odd length leave a +1
imbalance at their start node; we steer that imbalance onto the dummy
evenizing node whenever one exists, so real degrees stay within
``ceil(d/2) + 1`` and usually exactly ``ceil(d/2)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.graphs.array_backend import CompactGraph
from repro.graphs.coloring.base import inherit_palette
from repro.graphs.coloring.kempe import kempe_coloring
from repro.graphs.euler import compact_euler_circuits, euler_circuits
from repro.graphs.multigraph import EdgeId, Multigraph, Node

# Below this max degree we stop splitting and hand the part to the
# Kempe colorer, which is near-exact on such sparse leftovers.
_LEAF_DEGREE = 3

_DUMMY = ("__euler_split_dummy__",)


def euler_split_coloring(graph: Multigraph) -> Dict[EdgeId, int]:
    """Properly color a multigraph by recursive Euler splitting.

    Returns ``edge_id -> color``.  Self-loops are not colorable and
    raise ``ValueError``.
    """
    for eid, u, v in graph.edges():
        if u == v:
            raise ValueError(f"self-loop {eid} cannot be properly colored")
    if graph.num_edges == 0:
        return {}
    if graph.max_degree() <= _LEAF_DEGREE:
        return kempe_coloring(graph)
    part_a, part_b = euler_split(graph)
    return inherit_palette(
        {0: euler_split_coloring(part_a), 1: euler_split_coloring(part_b)}
    )


def euler_split(graph: Multigraph) -> Tuple[Multigraph, Multigraph]:
    """Partition edges into two subgraphs of roughly halved degree.

    Every node of degree ``d`` ends with degree in
    ``[floor(d/2) - 1, ceil(d/2) + 1]`` in each part; the off-by-one
    occurs only at start nodes of odd-length Euler circuits.
    Edge ids are preserved in the parts.
    """
    work = graph.copy()
    # Evenize: connect odd-degree nodes to a dummy hub (their count is
    # even, so the hub's degree is even too).
    odd_nodes = [v for v in work.nodes if work.degree(v) % 2 == 1]
    dummy_edges: Set[EdgeId] = set()
    if odd_nodes:
        work.add_node(_DUMMY)
        for v in odd_nodes:
            dummy_edges.add(work.add_edge(_DUMMY, v))

    assignment: Dict[EdgeId, int] = {}
    for circuit in euler_circuits(work):
        if not circuit:
            continue
        # Rotate the circuit so an odd-length wrap imbalance lands on
        # the dummy hub (whose edges are discarded) when possible.
        if len(circuit) % 2 == 1 and _DUMMY in work:
            for i, (_eid, u, _v) in enumerate(circuit):
                if u == _DUMMY:
                    circuit = circuit[i:] + circuit[:i]
                    break
        for i, (eid, _u, _v) in enumerate(circuit):
            assignment[eid] = i % 2

    part_a = graph.edge_subgraph(
        eid for eid in graph.edge_ids() if assignment.get(eid) == 0
    )
    part_b = graph.edge_subgraph(
        eid for eid in graph.edge_ids() if assignment.get(eid) == 1
    )
    return part_a, part_b


# ----------------------------------------------------------------------
# Array backend (byte-identical mirror of the recursion above)
# ----------------------------------------------------------------------

def compact_euler_split_coloring(graph: CompactGraph) -> Dict[EdgeId, int]:
    """Array-backend :func:`euler_split_coloring` (byte-identical).

    The split recursion — degree counting, evenizing hub, Hierholzer
    walk, alternate assignment, part extraction — runs on flat local
    index arrays; no object graph is materialized per level.  Children
    relabel nodes in first-touch order of their edge list, mirroring
    the object engine's ``edge_subgraph`` node insertion.  Leaves
    (max degree ``<= 3``) are lifted to exactly the object subgraph the
    object recursion would have built (same node order, edge ids, and
    ``next_edge_id``) and handed to the same Kempe colorer, so the
    returned ``edge_id -> color`` dict matches the object result key
    for key, value for value, in the same insertion order.
    """
    edges = list(zip(graph.edge_u, graph.edge_v))
    return _compact_split_rec(
        graph.nodes, edges, graph.edge_ids, graph.next_edge_id
    )


def _compact_split_rec(
    labels: List[Node],
    edges: List[Tuple[int, int]],
    eids: List[EdgeId],
    next_edge_id: EdgeId,
) -> Dict[EdgeId, int]:
    for k, (u, v) in enumerate(edges):
        if u == v:
            raise ValueError(f"self-loop {eids[k]} cannot be properly colored")
    if not edges:
        return {}
    n = len(labels)
    deg = [0] * n
    for u, v in edges:
        deg[u] += 1
        deg[v] += 1
    if max(deg) <= _LEAF_DEGREE:
        return kempe_coloring(_lift_part(labels, edges, eids, next_edge_id))
    part_a, part_b = _compact_euler_split(n, deg, edges)
    return inherit_palette(
        {
            0: _compact_split_rec(
                *_relabel_part(labels, edges, eids, part_a), next_edge_id
            ),
            1: _compact_split_rec(
                *_relabel_part(labels, edges, eids, part_b), next_edge_id
            ),
        }
    )


def _compact_euler_split(
    n: int, deg: Sequence[int], edges: List[Tuple[int, int]]
) -> Tuple[List[int], List[int]]:
    """Array mirror of :func:`euler_split`: partition edge positions.

    Local edge handles are positions in ``edges``; the evenizing hub is
    node ``n`` and its edges take handles ``len(edges)..``, appended to
    each odd node's row end and to the hub's row in odd-node order —
    the exact adjacency the object engine's ``work.add_edge(_DUMMY,
    v)`` calls produce.
    """
    m = len(edges)
    rows: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for k, (u, v) in enumerate(edges):
        rows[u].append((k, v))
        rows[v].append((k, u))
    odd = [v for v in range(n) if deg[v] % 2 == 1]
    degree = list(deg)
    num_handles = m
    dummy = n
    if odd:
        rows.append([])
        degree.append(len(odd))
        for v in odd:
            rows[v].append((num_handles, dummy))
            rows[dummy].append((num_handles, v))
            degree[v] += 1
            num_handles += 1

    indptr = [0]
    inc_edge: List[int] = []
    inc_other: List[int] = []
    for row in rows:
        for handle, other in row:
            inc_edge.append(handle)
            inc_other.append(other)
        indptr.append(len(inc_edge))

    assignment: Dict[int, int] = {}
    for circuit in compact_euler_circuits(
        indptr, inc_edge, inc_other, degree, num_handles
    ):
        if not circuit:
            continue
        if len(circuit) % 2 == 1 and odd:
            for i, (_e, u, _v) in enumerate(circuit):
                if u == dummy:
                    circuit = circuit[i:] + circuit[:i]
                    break
        for i, (e, _u, _v) in enumerate(circuit):
            assignment[e] = i % 2
    part_a = [k for k in range(m) if assignment.get(k) == 0]
    part_b = [k for k in range(m) if assignment.get(k) == 1]
    return part_a, part_b


def _relabel_part(
    labels: List[Node],
    edges: List[Tuple[int, int]],
    eids: List[EdgeId],
    picked: List[int],
) -> Tuple[List[Node], List[Tuple[int, int]], List[EdgeId]]:
    """Extract ``picked`` edge positions with first-touch relabeling.

    Mirrors ``edge_subgraph`` node insertion: per edge, tail first then
    head, keeping only touched nodes (children never carry isolated
    nodes, exactly like the object parts).
    """
    remap: Dict[int, int] = {}
    new_labels: List[Node] = []
    new_edges: List[Tuple[int, int]] = []
    new_eids: List[EdgeId] = []
    for k in picked:
        u, v = edges[k]
        for x in (u, v):
            if x not in remap:
                remap[x] = len(new_labels)
                new_labels.append(labels[x])
        new_edges.append((remap[u], remap[v]))
        new_eids.append(eids[k])
    return new_labels, new_edges, new_eids


def _lift_part(
    labels: List[Node],
    edges: List[Tuple[int, int]],
    eids: List[EdgeId],
    next_edge_id: EdgeId,
) -> Multigraph:
    """Rebuild the object subgraph this level stands for (leaf lift)."""
    g = Multigraph()
    for x in labels:
        g.add_node(x)
    for k, (u, v) in enumerate(edges):
        g.restore_edge(eids[k], labels[u], labels[v])
    g.reserve_edge_ids(next_edge_id)
    return g
