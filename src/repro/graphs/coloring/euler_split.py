"""Edge coloring by recursive Euler splitting.

The classical divide-and-conquer colorer: an Euler partition splits a
multigraph into two subgraphs whose degrees are (almost exactly)
halved; recursing until the parts are path/cycle systems (max degree
``<= 2``, 3-colorable) yields a proper coloring of roughly ``1.5Δ``
colors when ``Δ`` is a power of two.  It is the constructive engine
behind the Shannon-style bound used by Saia's 1.5-approximation
baseline (Section I of the paper) and a useful foil for the
Kempe-chain colorer in the benchmarks.

The split walks Euler circuits of the (evenized) graph and assigns
edges to the two parts alternately.  Circuits of odd length leave a +1
imbalance at their start node; we steer that imbalance onto the dummy
evenizing node whenever one exists, so real degrees stay within
``ceil(d/2) + 1`` and usually exactly ``ceil(d/2)``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graphs.coloring.base import inherit_palette
from repro.graphs.coloring.kempe import kempe_coloring
from repro.graphs.euler import euler_circuits
from repro.graphs.multigraph import EdgeId, Multigraph

# Below this max degree we stop splitting and hand the part to the
# Kempe colorer, which is near-exact on such sparse leftovers.
_LEAF_DEGREE = 3

_DUMMY = ("__euler_split_dummy__",)


def euler_split_coloring(graph: Multigraph) -> Dict[EdgeId, int]:
    """Properly color a multigraph by recursive Euler splitting.

    Returns ``edge_id -> color``.  Self-loops are not colorable and
    raise ``ValueError``.
    """
    for eid, u, v in graph.edges():
        if u == v:
            raise ValueError(f"self-loop {eid} cannot be properly colored")
    if graph.num_edges == 0:
        return {}
    if graph.max_degree() <= _LEAF_DEGREE:
        return kempe_coloring(graph)
    part_a, part_b = euler_split(graph)
    return inherit_palette(
        {0: euler_split_coloring(part_a), 1: euler_split_coloring(part_b)}
    )


def euler_split(graph: Multigraph) -> Tuple[Multigraph, Multigraph]:
    """Partition edges into two subgraphs of roughly halved degree.

    Every node of degree ``d`` ends with degree in
    ``[floor(d/2) - 1, ceil(d/2) + 1]`` in each part; the off-by-one
    occurs only at start nodes of odd-length Euler circuits.
    Edge ids are preserved in the parts.
    """
    work = graph.copy()
    # Evenize: connect odd-degree nodes to a dummy hub (their count is
    # even, so the hub's degree is even too).
    odd_nodes = [v for v in work.nodes if work.degree(v) % 2 == 1]
    dummy_edges: Set[EdgeId] = set()
    if odd_nodes:
        work.add_node(_DUMMY)
        for v in odd_nodes:
            dummy_edges.add(work.add_edge(_DUMMY, v))

    assignment: Dict[EdgeId, int] = {}
    for circuit in euler_circuits(work):
        if not circuit:
            continue
        # Rotate the circuit so an odd-length wrap imbalance lands on
        # the dummy hub (whose edges are discarded) when possible.
        if len(circuit) % 2 == 1 and _DUMMY in work:
            for i, (_eid, u, _v) in enumerate(circuit):
                if u == _DUMMY:
                    circuit = circuit[i:] + circuit[:i]
                    break
        for i, (eid, _u, _v) in enumerate(circuit):
            assignment[eid] = i % 2

    part_a = graph.edge_subgraph(
        eid for eid in graph.edge_ids() if assignment.get(eid) == 0
    )
    part_b = graph.edge_subgraph(
        eid for eid in graph.edge_ids() if assignment.get(eid) == 1
    )
    return part_a, part_b
