"""Kempe-chain proper edge coloring of multigraphs.

Within two fixed colors ``a``/``b``, a properly colored multigraph
decomposes into paths and cycles (each node carries at most one edge of
each color), exactly as in simple graphs, so Kempe-chain flips remain
sound.  :func:`kempe_coloring` runs iterative deepening on the palette
size ``q``: starting from the trivial lower bound ``Δ`` it tries to
complete a coloring with ``q`` colors using chain flips to resolve
conflicts, and widens the palette only when stuck.

Termination is unconditional: once ``q = 2Δ - 1`` every edge sees a
common free color at its endpoints, so first-fit alone succeeds.  In
practice the flips land at ``Δ`` or ``Δ + 1`` colors on the graphs in
this repository; the benchmark harness records the achieved palette
against Shannon's ``⌊3Δ/2⌋`` bound.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.graphs.multigraph import EdgeId, Multigraph, Node

# How many (a, b) color pairs to try per stuck edge before declaring
# the current palette size a failure.  Chains are cheap to walk, so a
# moderately aggressive budget pays for itself by avoiding q bumps.
_PAIR_BUDGET = 24


def kempe_coloring(
    graph: Multigraph,
    max_colors: Optional[int] = None,
    seed: int = 0,
    restarts: int = 2,
) -> Dict[EdgeId, int]:
    """Proper edge coloring via first-fit plus Kempe-chain repair.

    Args:
        graph: multigraph without self-loops.
        max_colors: optional hard palette cap; ``ValueError`` if the
            cap is below ``2Δ - 1`` and the search fails within it.
        seed: RNG seed for edge-order shuffles on restarts.
        restarts: random restarts per palette size before widening.

    Returns:
        ``edge_id -> color`` using colors ``0..q-1``.
    """
    delta = graph.max_degree()
    if graph.num_edges == 0:
        return {}
    rng = random.Random(seed)
    guaranteed = 2 * delta - 1
    ceiling = guaranteed if max_colors is None else max_colors

    q = delta
    while q <= ceiling:
        for _attempt in range(max(1, restarts)):
            order = graph.edge_ids()
            if _attempt > 0:
                rng.shuffle(order)
            else:
                order.sort(
                    key=lambda eid: -(
                        graph.degree(graph.endpoints(eid)[0])
                        + graph.degree(graph.endpoints(eid)[1])
                    )
                )
            coloring = _try_with_palette(graph, order, q, rng)
            if coloring is not None:
                return coloring
        q += 1
    raise ValueError(
        f"could not color within max_colors={max_colors} (needs <= {guaranteed})"
    )


def _try_with_palette(
    graph: Multigraph, order: List[EdgeId], q: int, rng: random.Random
) -> Optional[Dict[EdgeId, int]]:
    """Attempt a complete proper coloring with exactly ``q`` colors."""
    coloring: Dict[EdgeId, int] = {}
    # at[v][c] = edge id colored c at v (proper => at most one).
    at: Dict[Node, Dict[int, EdgeId]] = {v: {} for v in graph.nodes}

    def free_colors(v: Node) -> List[int]:
        return [c for c in range(q) if c not in at[v]]

    def assign(eid: EdgeId, c: int) -> None:
        u, v = graph.endpoints(eid)
        coloring[eid] = c
        at[u][c] = eid
        at[v][c] = eid

    for eid in order:
        u, v = graph.endpoints(eid)
        if u == v:
            raise ValueError(f"self-loop {eid} cannot be properly colored")
        fu = free_colors(u)
        fv = free_colors(v)
        common = set(fu) & set(fv)
        if common:
            assign(eid, min(common))
            continue
        if not fu or not fv:
            return None
        if not _repair_with_chains(graph, coloring, at, u, v, fu, fv, rng):
            return None
        # After a successful flip some color is free at both ends.
        common = set(free_colors(u)) & set(free_colors(v))
        if not common:
            return None
        assign(eid, min(common))
    return coloring


def _repair_with_chains(
    graph: Multigraph,
    coloring: Dict[EdgeId, int],
    at: Dict[Node, Dict[int, EdgeId]],
    u: Node,
    v: Node,
    free_u: List[int],
    free_v: List[int],
    rng: random.Random,
) -> bool:
    """Flip an ab-chain so ``u`` and ``v`` share a free color.

    For ``a`` free at ``u`` and ``b`` free at ``v``, flipping the
    ``a/b``-chain through ``u`` makes ``b`` free at ``u`` — unless the
    same chain ends at ``v``, in which case the flip also flips ``v``'s
    membership and we try the next pair.
    """
    pairs = [(a, b) for a in free_u for b in free_v if a != b]
    rng.shuffle(pairs)
    for a, b in pairs[:_PAIR_BUDGET]:
        chain = _chain_through(graph, at, u, a, b)
        if any(graph.endpoints(eid)[0] == v or graph.endpoints(eid)[1] == v for eid in chain):
            # v touches the chain: flipping could disturb b at v.  The
            # flip only hurts if v is a chain *endpoint*; checking
            # membership is cheap and conservative.
            continue
        _flip_chain(graph, coloring, at, chain, a, b)
        return True
    return False


def _chain_through(
    graph: Multigraph,
    at: Dict[Node, Dict[int, EdgeId]],
    start: Node,
    a: int,
    b: int,
) -> List[EdgeId]:
    """Edges of the a/b Kempe chain containing ``start``.

    ``start`` misses ``a``, so the chain is a path starting (if
    nonempty) with ``start``'s ``b``-edge.
    """
    chain: List[EdgeId] = []
    cur = start
    want = b
    prev_eid: Optional[EdgeId] = None
    while True:
        eid = at[cur].get(want)
        if eid is None or eid == prev_eid:
            return chain
        chain.append(eid)
        cur = graph.other_endpoint(eid, cur)
        prev_eid = eid
        want = a if want == b else b


def _flip_chain(
    graph: Multigraph,
    coloring: Dict[EdgeId, int],
    at: Dict[Node, Dict[int, EdgeId]],
    chain: List[EdgeId],
    a: int,
    b: int,
) -> None:
    """Swap colors ``a`` and ``b`` along ``chain``, updating indexes.

    Two passes: interior chain nodes carry one edge of each color, so
    removing all old index entries before inserting any new ones keeps
    the per-node color index consistent (a single interleaved pass
    would overwrite an entry and then delete it).
    """
    new_color: Dict[EdgeId, int] = {}
    for eid in chain:
        old = coloring[eid]
        new_color[eid] = a if old == b else b
        x, y = graph.endpoints(eid)
        for node in (x, y):
            if at[node].get(old) == eid:
                del at[node][old]
    for eid, new in new_color.items():
        coloring[eid] = new
        x, y = graph.endpoints(eid)
        for node in (x, y):
            at[node][new] = eid
