"""Shared helpers for proper (one-per-node) edge colorings."""

from __future__ import annotations

from typing import Dict, Optional

from repro.graphs.multigraph import EdgeId, Multigraph


class ImproperColoringError(AssertionError):
    """Raised by validators when a coloring violates its constraints."""


def num_colors_used(coloring: Dict[EdgeId, int]) -> int:
    """Number of distinct colors appearing in the coloring."""
    return len(set(coloring.values()))


def validate_proper_coloring(
    graph: Multigraph,
    coloring: Dict[EdgeId, int],
    max_colors: Optional[int] = None,
    require_complete: bool = True,
) -> None:
    """Check that ``coloring`` is a proper edge coloring of ``graph``.

    Proper means no two edges sharing a node have the same color.
    Self-loops are rejected outright: they can never be properly
    colored (both "ends" meet at the same node).

    Raises:
        ImproperColoringError: on any violation.
    """
    if require_complete:
        missing = [eid for eid in graph.edge_ids() if eid not in coloring]
        if missing:
            raise ImproperColoringError(f"{len(missing)} edges left uncolored: {missing[:5]}")
    for eid in coloring:
        if not graph.has_edge_id(eid):
            raise ImproperColoringError(f"colored edge {eid} not in graph")
        if graph.is_self_loop(eid):
            raise ImproperColoringError(f"self-loop {eid} cannot be properly colored")
        if max_colors is not None and not 0 <= coloring[eid] < max_colors:
            raise ImproperColoringError(
                f"edge {eid} uses color {coloring[eid]} outside [0, {max_colors})"
            )
    for v in graph.nodes:
        seen: Dict[int, EdgeId] = {}
        for eid in graph.incident_edges(v):
            if eid not in coloring:
                continue
            c = coloring[eid]
            if c in seen:
                raise ImproperColoringError(
                    f"node {v!r} has two edges ({seen[c]}, {eid}) with color {c}"
                )
            seen[c] = eid


def inherit_palette(colorings: Dict[int, Dict[EdgeId, int]]) -> Dict[EdgeId, int]:
    """Merge per-part colorings using disjoint palettes.

    ``colorings`` maps a part index to that part's coloring; part ``i``
    keeps its own colors shifted above all earlier parts' palettes.
    """
    merged: Dict[EdgeId, int] = {}
    offset = 0
    for _part, coloring in sorted(colorings.items()):
        width = max(coloring.values()) + 1 if coloring else 0
        for eid, c in coloring.items():
            merged[eid] = c + offset
        offset += width
    return merged
