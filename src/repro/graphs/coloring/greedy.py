"""First-fit greedy proper edge coloring.

The simplest colorer: process edges in order, give each the smallest
color absent at both endpoints.  An uncolored edge ``(u, v)`` sees at
most ``deg(u) - 1 + deg(v) - 1 <= 2Δ - 2`` blocked colors, so first-fit
never needs more than ``2Δ - 1`` colors.  It is the seed coloring for
the Kempe-chain improver and the baseline every other colorer must
beat.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graphs.multigraph import EdgeId, Multigraph


def greedy_coloring(
    graph: Multigraph, order: Optional[Iterable[EdgeId]] = None
) -> Dict[EdgeId, int]:
    """Color ``graph`` first-fit; returns ``edge_id -> color``.

    Args:
        graph: a multigraph with no self-loops.
        order: optional explicit edge processing order (defaults to
            insertion order).  Different orders can change the palette
            size; callers that care pass a high-degree-first order.

    Raises:
        ValueError: if the graph contains a self-loop.
    """
    coloring: Dict[EdgeId, int] = {}
    used_at: Dict[object, Set[int]] = {v: set() for v in graph.nodes}
    eids = list(order) if order is not None else graph.edge_ids()
    for eid in eids:
        u, v = graph.endpoints(eid)
        if u == v:
            raise ValueError(f"self-loop {eid} cannot be properly colored")
        blocked = used_at[u] | used_at[v]
        color = 0
        while color in blocked:
            color += 1
        coloring[eid] = color
        used_at[u].add(color)
        used_at[v].add(color)
    return coloring


def degree_descending_order(graph: Multigraph) -> List[EdgeId]:
    """Edges ordered by decreasing endpoint-degree sum.

    Coloring high-pressure edges first tends to shrink the first-fit
    palette; used as the default order by :func:`kempe_coloring`.
    """
    return sorted(
        graph.edge_ids(),
        key=lambda eid: -(graph.degree(graph.endpoints(eid)[0]) + graph.degree(graph.endpoints(eid)[1])),
    )
