"""Misra–Gries edge coloring: ``Δ + 1`` colors on simple graphs.

Phase 2 of the paper's general algorithm (Section V-C3) colors the
residual simple graph ``G₀`` with "Vizing's algorithm"; Misra & Gries
(1992) is the standard constructive form: fans, color rotations and
cd-path inversions yield a proper coloring with at most ``Δ + 1``
colors in ``O(|V|·|E|)`` time.

The implementation operates on :class:`~repro.graphs.multigraph.Multigraph`
inputs but requires them to be simple (no parallel edges, no
self-loops) — exactly what Phase 1 guarantees for ``G₀``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.multigraph import EdgeId, Multigraph, Node


class NotSimpleGraphError(ValueError):
    """Raised when the input multigraph has parallel edges or loops."""


def vizing_coloring(graph: Multigraph) -> Dict[EdgeId, int]:
    """Properly color a simple graph with at most ``Δ + 1`` colors.

    Raises:
        NotSimpleGraphError: if the graph is not simple.
    """
    _check_simple(graph)
    delta = graph.max_degree()
    if graph.num_edges == 0:
        return {}
    q = delta + 1
    coloring: Dict[EdgeId, int] = {}
    # at[v][c] -> edge id of color c at v (proper coloring invariant).
    at: Dict[Node, Dict[int, EdgeId]] = {v: {} for v in graph.nodes}

    def free_color(v: Node) -> int:
        for c in range(q):
            if c not in at[v]:
                return c
        raise AssertionError(f"no free color at {v!r} with q={q}")

    def is_free(v: Node, c: int) -> bool:
        return c not in at[v]

    def set_color(eid: EdgeId, c: Optional[int]) -> None:
        u, v = graph.endpoints(eid)
        old = coloring.pop(eid, None)
        if old is not None:
            del at[u][old]
            del at[v][old]
        if c is not None:
            coloring[eid] = c
            at[u][c] = eid
            at[v][c] = eid

    def edge_between(u: Node, x: Node) -> EdgeId:
        # Simple graph: unique edge.
        return graph.edges_between(u, x)[0]

    def maximal_fan(u: Node, v: Node) -> List[Node]:
        """Maximal fan of ``u`` starting at ``v`` (distinct neighbors)."""
        fan = [v]
        in_fan = {v}
        grown = True
        while grown:
            grown = False
            last = fan[-1]
            for x in sorted(graph.neighbors(u), key=repr):
                if x in in_fan:
                    continue
                eid = edge_between(u, x)
                c = coloring.get(eid)
                if c is not None and is_free(last, c):
                    fan.append(x)
                    in_fan.add(x)
                    grown = True
                    break
        return fan

    def invert_cd_path(u: Node, c: int, d: int) -> None:
        """Invert the maximal path of colors ``d, c, d, …`` from ``u``.

        ``c`` is free at ``u`` so ``u`` is an endpoint of its cd
        component, which is therefore a path; swapping ``c`` and ``d``
        along it keeps the coloring proper.
        """
        path: List[EdgeId] = []
        cur = u
        want = d
        prev: Optional[EdgeId] = None
        while True:
            eid = at[cur].get(want)
            if eid is None or eid == prev:
                break
            path.append(eid)
            cur = graph.other_endpoint(eid, cur)
            prev = eid
            want = c if want == d else d
        # Two passes: uncolor the whole path first, then recolor with
        # the swapped colors.  A single interleaved pass would corrupt
        # the per-node color index at interior path nodes (which carry
        # one edge of each color).
        swapped = {eid: (c if coloring[eid] == d else d) for eid in path}
        for eid in path:
            set_color(eid, None)
        for eid, new in swapped.items():
            set_color(eid, new)

    def rotate_fan(u: Node, fan_prefix: List[Node]) -> None:
        """Shift colors down the fan, leaving the last edge uncolored.

        Colors are captured first and the whole prefix uncolored before
        reassignment: shifting in place would overwrite index entries
        at ``u`` that later steps still need to delete.
        """
        fan_edges = [edge_between(u, x) for x in fan_prefix]
        shifted = {
            fan_edges[i]: coloring[fan_edges[i + 1]]
            for i in range(len(fan_edges) - 1)
        }
        for eid in fan_edges:
            if eid in coloring:
                set_color(eid, None)
        for eid, new in shifted.items():
            set_color(eid, new)

    def fan_prefix_valid(u: Node, fan: List[Node], j: int) -> bool:
        """Is ``fan[0..j]`` still a fan under the current coloring?"""
        for i in range(1, j + 1):
            c = coloring.get(edge_between(u, fan[i]))
            if c is None or not is_free(fan[i - 1], c):
                return False
        return True

    for eid0 in graph.edge_ids():
        u, v = graph.endpoints(eid0)
        fan = maximal_fan(u, v)
        c = free_color(u)
        d = free_color(fan[-1])
        invert_cd_path(u, c, d)
        # After inversion, some prefix fan[0..w] is a fan with d free
        # at its tip (Misra–Gries invariant guarantees existence).
        w: Optional[int] = None
        for j in range(len(fan) - 1, -1, -1):
            if is_free(fan[j], d) and fan_prefix_valid(u, fan, j):
                w = j
                break
        if w is None:
            raise AssertionError("Misra-Gries invariant violated: no rotatable prefix")
        prefix = fan[: w + 1]
        rotate_fan(u, prefix)
        set_color(edge_between(u, prefix[-1]), d)
    return coloring


def _check_simple(graph: Multigraph) -> None:
    seen: set = set()
    for eid, u, v in graph.edges():
        if u == v:
            raise NotSimpleGraphError(f"self-loop {eid} at {u!r}")
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if key in seen:
            raise NotSimpleGraphError(f"parallel edges between {u!r} and {v!r}")
        seen.add(key)
