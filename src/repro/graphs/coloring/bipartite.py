"""Optimal (``Δ``-color) edge coloring of bipartite multigraphs.

König's edge-coloring theorem: a bipartite multigraph is ``Δ``-edge-
colorable.  The constructive route used here is the classical
regularize-then-peel method:

1. pad both sides to equal size and greedily add dummy edges between
   degree-deficient nodes until the graph is ``Δ``-regular;
2. a ``Δ``-regular bipartite multigraph has a perfect matching (Hall);
   extract one with max-flow, give it a color, delete it, and recurse
   on the now ``(Δ-1)``-regular remainder;
3. report only the colors of real edges.

This exact colorer backs the tests of the even-capacity scheduler
(whose Step 4 is, in essence, a capacitated bipartite coloring) and is
part of the baseline suite.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.array_backend import CompactGraph
from repro.graphs.matching import QuotaPeeler, degree_constrained_subgraph
from repro.graphs.multigraph import EdgeId, Multigraph, Node


class NotBipartiteError(ValueError):
    """Raised when the input multigraph is not bipartite."""


def bipartite_sides(graph: Multigraph) -> Tuple[Set[Node], Set[Node]]:
    """2-color the nodes; raise :class:`NotBipartiteError` otherwise."""
    side: Dict[Node, int] = {}
    for start in graph.nodes:
        if start in side:
            continue
        side[start] = 0
        stack = [start]
        while stack:
            x = stack.pop()
            if graph.edges_between(x, x):
                raise NotBipartiteError(f"self-loop at {x!r}")
            # The 2-coloring of a component is unique given its anchor's
            # side, so visit order cannot change the resulting sides.
            for y in graph.neighbors(x):  # repro: allow-set-iter
                if y not in side:
                    side[y] = 1 - side[x]
                    stack.append(y)
                elif side[y] == side[x]:
                    raise NotBipartiteError(f"odd cycle through {x!r}-{y!r}")
    left = {v for v, s in side.items() if s == 0}
    right = {v for v, s in side.items() if s == 1}
    return left, right


def bipartite_coloring(graph: Multigraph) -> Dict[EdgeId, int]:
    """Color a bipartite multigraph with exactly ``Δ`` colors.

    Raises:
        NotBipartiteError: if the graph is not bipartite.
    """
    if graph.num_edges == 0:
        return {}
    left, right = bipartite_sides(graph)
    delta = graph.max_degree()

    # Working edge list: (u, v, real_eid or None).
    edges: List[Tuple[Node, Node, Optional[EdgeId]]] = []
    for eid, u, v in graph.edges():
        if u in left:
            edges.append((u, v, eid))
        else:
            edges.append((v, u, eid))

    # Pad to equal-size sides with fresh dummy nodes.  Sides come back
    # as sets; sort them so the regularization wiring (and hence the
    # peeled matchings) is identical across processes regardless of
    # hash randomization — schedules must be reproducible byte for
    # byte from a seed alone.
    lefts = sorted(left, key=repr)
    rights = sorted(right, key=repr)
    fresh = count()
    while len(lefts) < len(rights):
        lefts.append(("__pad_left__", next(fresh)))
    while len(rights) < len(lefts):
        rights.append(("__pad_right__", next(fresh)))

    # Regularize: greedily wire deficient pairs with dummy edges.
    deg: Dict[Node, int] = {v: 0 for v in lefts + rights}
    for u, v, _ in edges:
        deg[u] += 1
        deg[v] += 1
    deficient_left = [v for v in lefts if deg[v] < delta]
    deficient_right = [v for v in rights if deg[v] < delta]
    li, ri = 0, 0
    while li < len(deficient_left):
        u = deficient_left[li]
        if deg[u] == delta:
            li += 1
            continue
        w = deficient_right[ri]
        if deg[w] == delta:
            ri += 1
            continue
        edges.append((u, w, None))
        deg[u] += 1
        deg[w] += 1

    # Peel Δ perfect matchings.
    coloring: Dict[EdgeId, int] = {}
    remaining = list(range(len(edges)))
    for color in range(delta):
        quota_left = {v: 1 for v in lefts}
        quota_right = {v: 1 for v in rights}
        sub = [(edges[i][0], edges[i][1]) for i in remaining]
        picked = degree_constrained_subgraph(sub, quota_left, quota_right)
        picked_ids = {remaining[i] for i in picked}
        for i in sorted(picked_ids):
            real = edges[i][2]
            if real is not None:
                coloring[real] = color
        remaining = [i for i in remaining if i not in picked_ids]
    assert not remaining, "regular graph should decompose into Δ matchings"
    return coloring


# ----------------------------------------------------------------------
# Array backend (byte-identical mirrors of the functions above)
# ----------------------------------------------------------------------

def compact_bipartite_sides(graph: CompactGraph) -> List[int]:
    """Array mirror of :func:`bipartite_sides` over a CSR snapshot.

    Returns ``side[v] in {0, 1}`` per node index, with the anchor of
    each component (first unvisited node in index order, which is the
    object engine's node insertion order) on side 0 — the same sides
    the object function computes.  Traversal order differs from the
    object's set-iteration DFS, which is fine: the 2-coloring of a
    component is unique given its anchor's side.  On non-bipartite
    input the raised :class:`NotBipartiteError` may cite a different
    witness edge than the object engine (error paths are not part of
    the byte-identity contract).
    """
    side = [-1] * graph.num_nodes
    indptr, inc_other = graph.indptr, graph.inc_other
    reprs = graph.node_reprs()
    for start in range(graph.num_nodes):
        if side[start] >= 0:
            continue
        side[start] = 0
        stack = [start]
        while stack:
            x = stack.pop()
            sx = side[x]
            for h in range(indptr[x], indptr[x + 1]):
                y = inc_other[h]
                if y == x:
                    raise NotBipartiteError(f"self-loop at {reprs[x]}")
                if side[y] < 0:
                    side[y] = 1 - sx
                    stack.append(y)
                elif side[y] == sx:
                    raise NotBipartiteError(
                        f"odd cycle through {reprs[x]}-{reprs[y]}"
                    )
    return side


def compact_konig_coloring(
    num_nodes: int,
    edges: List[Tuple[int, int]],
    node_repr: Sequence[str],
) -> List[int]:
    """Array mirror of :func:`bipartite_coloring` (byte-identical).

    Nodes are dense ints ``0..num_nodes-1`` standing for the object
    graph's nodes; ``node_repr[v]`` must be ``repr`` of the node ``v``
    stands for, because the object function sorts sides by label repr
    and the mirror must reproduce that order exactly (reprs are assumed
    unique, the same precondition the canonical fingerprint imposes).
    ``edges[i]`` is the endpoint pair of the i-th edge in the object
    graph's ``edges()`` enumeration order, so the result — the color of
    edge ``i`` at position ``i`` — aligns with the object coloring dict
    keyed by edge id.

    The ``Δ`` matching peels run on one persistent
    :class:`~repro.graphs.matching.QuotaPeeler` (unit quotas reset per
    peel) instead of a fresh flow network per color; the peeler's
    contract guarantees the same matchings as the object engine's
    per-color ``degree_constrained_subgraph`` calls.
    """
    m = len(edges)
    if m == 0:
        return []

    # Sides, mirroring bipartite_sides over an adjacency built in edge
    # order (anchor-per-component on side 0, component anchors in node
    # index order).
    adj: List[List[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    side = [-1] * num_nodes
    for start in range(num_nodes):
        if side[start] >= 0:
            continue
        side[start] = 0
        stack = [start]
        while stack:
            x = stack.pop()
            sx = side[x]
            for y in adj[x]:
                if y == x:
                    raise NotBipartiteError(f"self-loop at {node_repr[x]}")
                if side[y] < 0:
                    side[y] = 1 - sx
                    stack.append(y)
                elif side[y] == sx:
                    raise NotBipartiteError(
                        f"odd cycle through {node_repr[x]}-{node_repr[y]}"
                    )

    deg = [0] * num_nodes
    for u, v in edges:
        deg[u] += 1
        deg[v] += 1
    delta = max(deg)

    # Working edge list, left-oriented; index < m is the real edge i.
    work: List[Tuple[int, int]] = [
        (u, v) if side[u] == 0 else (v, u) for u, v in edges
    ]

    # Sides sorted by label repr — exactly the object's
    # ``sorted(left, key=repr)`` (stable index tie-break is moot when
    # reprs are unique).  Pad nodes take fresh indices >= num_nodes and
    # are appended *after* the sort, like the object's fresh pad labels.
    lefts = sorted((v for v in range(num_nodes) if side[v] == 0),
                   key=node_repr.__getitem__)
    rights = sorted((v for v in range(num_nodes) if side[v] == 1),
                    key=node_repr.__getitem__)
    while len(lefts) < len(rights):
        lefts.append(len(deg))
        deg.append(0)
    while len(rights) < len(lefts):
        rights.append(len(deg))
        deg.append(0)

    # Regularize: greedily wire deficient pairs with dummy edges.
    deficient_left = [v for v in lefts if deg[v] < delta]
    deficient_right = [v for v in rights if deg[v] < delta]
    li, ri = 0, 0
    while li < len(deficient_left):
        u = deficient_left[li]
        if deg[u] == delta:
            li += 1
            continue
        w = deficient_right[ri]
        if deg[w] == delta:
            ri += 1
            continue
        work.append((u, w))
        deg[u] += 1
        deg[w] += 1

    # Peel Δ perfect matchings on one persistent network.
    left_pos = {v: i for i, v in enumerate(lefts)}
    right_pos = {v: i for i, v in enumerate(rights)}
    peeler = QuotaPeeler(
        [1] * len(lefts),
        [1] * len(rights),
        [left_pos[u] for u, _ in work],
        [right_pos[w] for _, w in work],
    )
    color_of = [-1] * m
    remaining = np.arange(len(work), dtype=np.int64)
    for color in range(delta):
        picked = peeler.peel(remaining)
        picked_np = np.asarray(picked, dtype=np.int64)
        for i in remaining[picked_np].tolist():
            if i < m:
                color_of[i] = color
        keep = np.ones(remaining.shape[0], dtype=bool)
        keep[picked_np] = False
        remaining = remaining[keep]
    assert not remaining.size, "regular graph should decompose into Δ matchings"
    return color_of
