"""Optimal (``Δ``-color) edge coloring of bipartite multigraphs.

König's edge-coloring theorem: a bipartite multigraph is ``Δ``-edge-
colorable.  The constructive route used here is the classical
regularize-then-peel method:

1. pad both sides to equal size and greedily add dummy edges between
   degree-deficient nodes until the graph is ``Δ``-regular;
2. a ``Δ``-regular bipartite multigraph has a perfect matching (Hall);
   extract one with max-flow, give it a color, delete it, and recurse
   on the now ``(Δ-1)``-regular remainder;
3. report only the colors of real edges.

This exact colorer backs the tests of the even-capacity scheduler
(whose Step 4 is, in essence, a capacitated bipartite coloring) and is
part of the baseline suite.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional, Set, Tuple

from repro.graphs.matching import degree_constrained_subgraph
from repro.graphs.multigraph import EdgeId, Multigraph, Node


class NotBipartiteError(ValueError):
    """Raised when the input multigraph is not bipartite."""


def bipartite_sides(graph: Multigraph) -> Tuple[Set[Node], Set[Node]]:
    """2-color the nodes; raise :class:`NotBipartiteError` otherwise."""
    side: Dict[Node, int] = {}
    for start in graph.nodes:
        if start in side:
            continue
        side[start] = 0
        stack = [start]
        while stack:
            x = stack.pop()
            if graph.edges_between(x, x):
                raise NotBipartiteError(f"self-loop at {x!r}")
            # The 2-coloring of a component is unique given its anchor's
            # side, so visit order cannot change the resulting sides.
            for y in graph.neighbors(x):  # repro: allow-set-iter
                if y not in side:
                    side[y] = 1 - side[x]
                    stack.append(y)
                elif side[y] == side[x]:
                    raise NotBipartiteError(f"odd cycle through {x!r}-{y!r}")
    left = {v for v, s in side.items() if s == 0}
    right = {v for v, s in side.items() if s == 1}
    return left, right


def bipartite_coloring(graph: Multigraph) -> Dict[EdgeId, int]:
    """Color a bipartite multigraph with exactly ``Δ`` colors.

    Raises:
        NotBipartiteError: if the graph is not bipartite.
    """
    if graph.num_edges == 0:
        return {}
    left, right = bipartite_sides(graph)
    delta = graph.max_degree()

    # Working edge list: (u, v, real_eid or None).
    edges: List[Tuple[Node, Node, Optional[EdgeId]]] = []
    for eid, u, v in graph.edges():
        if u in left:
            edges.append((u, v, eid))
        else:
            edges.append((v, u, eid))

    # Pad to equal-size sides with fresh dummy nodes.  Sides come back
    # as sets; sort them so the regularization wiring (and hence the
    # peeled matchings) is identical across processes regardless of
    # hash randomization — schedules must be reproducible byte for
    # byte from a seed alone.
    lefts = sorted(left, key=repr)
    rights = sorted(right, key=repr)
    fresh = count()
    while len(lefts) < len(rights):
        lefts.append(("__pad_left__", next(fresh)))
    while len(rights) < len(lefts):
        rights.append(("__pad_right__", next(fresh)))

    # Regularize: greedily wire deficient pairs with dummy edges.
    deg: Dict[Node, int] = {v: 0 for v in lefts + rights}
    for u, v, _ in edges:
        deg[u] += 1
        deg[v] += 1
    deficient_left = [v for v in lefts if deg[v] < delta]
    deficient_right = [v for v in rights if deg[v] < delta]
    li, ri = 0, 0
    while li < len(deficient_left):
        u = deficient_left[li]
        if deg[u] == delta:
            li += 1
            continue
        w = deficient_right[ri]
        if deg[w] == delta:
            ri += 1
            continue
        edges.append((u, w, None))
        deg[u] += 1
        deg[w] += 1

    # Peel Δ perfect matchings.
    coloring: Dict[EdgeId, int] = {}
    remaining = list(range(len(edges)))
    for color in range(delta):
        quota_left = {v: 1 for v in lefts}
        quota_right = {v: 1 for v in rights}
        sub = [(edges[i][0], edges[i][1]) for i in remaining]
        picked = degree_constrained_subgraph(sub, quota_left, quota_right)
        picked_ids = {remaining[i] for i in picked}
        for i in sorted(picked_ids):
            real = edges[i][2]
            if real is not None:
                coloring[real] = color
        remaining = [i for i in remaining if i not in picked_ids]
    assert not remaining, "regular graph should decompose into Δ matchings"
    return coloring
