"""Minimum-cost maximum flow (successive shortest paths).

Used where plain max-flow finds *a* feasible assignment but we want
the *cheapest* one — e.g. recovery placement
(:func:`repro.cluster.replication.recovery_moves_balanced`) assigns
new replicas to disks with convex per-disk costs so receive load
spreads in proportion to transfer capability.

Implementation: successive shortest augmenting paths with Johnson
potentials (Bellman–Ford once for initialization, Dijkstra with
reduced costs afterwards).  Capacities and costs are integers; the
returned flow is integral and cost-optimal for its value.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

Node = Hashable
_INF = float("inf")


class MinCostFlow:
    """A directed network with integer capacities and costs."""

    def __init__(self) -> None:
        self._index: Dict[Node, int] = {}
        self._names: List[Node] = []
        # Edge arrays; twin of arc i is i ^ 1.
        self._to: List[int] = []
        self._cap: List[int] = []
        self._cost: List[int] = []
        self._adj: List[List[int]] = []

    def _node(self, v: Node) -> int:
        if v not in self._index:
            self._index[v] = len(self._names)
            self._names.append(v)
            self._adj.append([])
        return self._index[v]

    def add_edge(self, u: Node, v: Node, capacity: int, cost: int) -> int:
        """Add ``u -> v`` with capacity and per-unit cost; returns a handle."""
        if capacity < 0:
            raise ValueError(f"negative capacity on {u!r}->{v!r}")
        ui, vi = self._node(u), self._node(v)
        handle = len(self._to)
        self._to.append(vi)
        self._cap.append(capacity)
        self._cost.append(cost)
        self._adj[ui].append(handle)
        self._to.append(ui)
        self._cap.append(0)
        self._cost.append(-cost)
        self._adj[vi].append(handle + 1)
        return handle

    def flow_on(self, handle: int) -> int:
        return self._cap[handle ^ 1]

    def min_cost_flow(
        self, source: Node, sink: Node, max_flow: Optional[int] = None
    ) -> Tuple[int, int]:
        """Send up to ``max_flow`` units (default: maximum) cheaply.

        Returns ``(flow_value, total_cost)``.  Costs may be negative on
        input edges; the first potential pass uses Bellman–Ford so
        reduced costs are non-negative thereafter.
        """
        s, t = self._node(source), self._node(sink)
        if s == t:
            raise ValueError("source and sink must differ")
        n = len(self._names)
        limit = max_flow if max_flow is not None else sum(self._cap)

        # Bellman–Ford initial potentials (handles negative costs).
        potential = [0.0] * n
        for _ in range(n - 1):
            changed = False
            for u in range(n):
                for h in self._adj[u]:
                    if self._cap[h] > 0 and potential[u] + self._cost[h] < potential[self._to[h]]:
                        potential[self._to[h]] = potential[u] + self._cost[h]
                        changed = True
            if not changed:
                break

        total_flow = 0
        total_cost = 0
        while total_flow < limit:
            dist, parent_arc = self._dijkstra(s, potential)
            if dist[t] == _INF:
                break
            for i in range(n):
                if dist[i] < _INF:
                    potential[i] += dist[i]
            # Bottleneck along the path.
            push = limit - total_flow
            v = t
            while v != s:
                arc = parent_arc[v]
                push = min(push, self._cap[arc])
                v = self._to[arc ^ 1]
            v = t
            while v != s:
                arc = parent_arc[v]
                self._cap[arc] -= push
                self._cap[arc ^ 1] += push
                total_cost += push * self._cost[arc]
                v = self._to[arc ^ 1]
            total_flow += push
        return total_flow, total_cost

    def _dijkstra(self, s: int, potential: List[float]) -> Tuple[List[float], List[int]]:
        n = len(self._names)
        dist = [_INF] * n
        parent_arc = [-1] * n
        dist[s] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for h in self._adj[u]:
                if self._cap[h] <= 0:
                    continue
                v = self._to[h]
                nd = d + self._cost[h] + potential[u] - potential[v]
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    parent_arc[v] = h
                    heapq.heappush(heap, (nd, v))
        return dist, parent_arc


def convex_assignment(
    demands: Dict[Node, int],
    suppliers: Dict[Node, int],
    allowed: Dict[Node, List[Node]],
    marginal_cost: Dict[Node, List[int]],
) -> Dict[Node, List[Node]]:
    """Assign each demand unit to an allowed supplier at convex cost.

    Args:
        demands: units each demand node needs (usually 1).
        suppliers: max units each supplier can take.
        allowed: demand node -> eligible suppliers.
        marginal_cost: supplier -> cost of its 1st, 2nd, … unit
            (non-decreasing for a convex objective; length >=
            ``suppliers[s]``).

    Returns:
        demand node -> list of suppliers (length = its demand).

    Raises:
        ValueError: if the demand cannot be fully assigned.
    """
    net = MinCostFlow()
    source, sink = ("__src__",), ("__snk__",)
    for d, units in demands.items():
        net.add_edge(source, ("D", d), units, 0)
    handles: Dict[Tuple[Node, Node], int] = {}
    for d, options in allowed.items():
        for s in options:
            handles[(d, s)] = net.add_edge(("D", d), ("S", s), demands[d], 0)
    for s, units in suppliers.items():
        costs = marginal_cost[s]
        if len(costs) < units:
            raise ValueError(f"supplier {s!r} needs {units} marginal costs")
        for k in range(units):
            net.add_edge(("S", s), sink, 1, costs[k])
    want = sum(demands.values())
    flow, _cost = net.min_cost_flow(source, sink, max_flow=want)
    if flow < want:
        raise ValueError(f"only {flow} of {want} demand units assignable")
    out: Dict[Node, List[Node]] = {d: [] for d in demands}
    for (d, s), h in handles.items():
        for _ in range(net.flow_on(h)):
            out[d].append(s)
    return out
