"""Euler circuits and Euler orientations of multigraphs.

Section IV of the paper augments the transfer graph so every degree is
even, finds an Euler cycle, and uses the direction in which the cycle
traverses each edge to split every node's incident edges into equal
"in" and "out" halves.  This module provides both pieces:

* :func:`euler_circuits` — one Euler circuit per connected component
  (Hierholzer's algorithm, linear time), requiring all degrees even.
* :func:`euler_orientation` — the induced orientation ``eid -> (tail,
  head)``; each node of degree ``d`` ends up with exactly ``d/2``
  outgoing and ``d/2`` incoming edge-ends (self-loops contribute one
  of each).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.graphs.array_backend import CompactGraph
from repro.graphs.multigraph import EdgeId, Multigraph, Node


class NotEulerianError(ValueError):
    """Raised when an Euler circuit is requested on an odd-degree graph."""


def euler_circuits(graph: Multigraph) -> List[List[Tuple[EdgeId, Node, Node]]]:
    """Decompose ``graph`` into Euler circuits, one per component.

    Every node must have even degree (self-loops count twice).  Each
    returned circuit is a list of ``(edge_id, from_node, to_node)``
    steps; consecutive steps share a node and the circuit closes on its
    starting node.  Isolated nodes yield no circuit.

    Raises:
        NotEulerianError: if some node has odd degree.
    """
    for v in graph.nodes:
        if graph.degree(v) % 2 != 0:
            raise NotEulerianError(f"node {v!r} has odd degree {graph.degree(v)}")

    # Per-node cursor over incident edges plus a shared "used" set
    # yields iterative Hierholzer in O(|E|) overall.
    incident: Dict[Node, List[EdgeId]] = {v: graph.incident_edges(v) for v in graph.nodes}
    cursor: Dict[Node, int] = {v: 0 for v in graph.nodes}
    used: Set[EdgeId] = set()
    circuits: List[List[Tuple[EdgeId, Node, Node]]] = []

    def next_unused(v: Node) -> EdgeId:
        lst = incident[v]
        i = cursor[v]
        while i < len(lst) and lst[i] in used:
            i += 1
        cursor[v] = i
        return lst[i] if i < len(lst) else -1

    for start in graph.nodes:
        if next_unused(start) == -1:
            continue
        # Walk from `start`, emitting each edge as the walk retreats;
        # reversing at the end gives one contiguous closed circuit that
        # covers the whole component (standard iterative Hierholzer).
        stack: List[Node] = [start]
        path_edges: List[Tuple[EdgeId, Node, Node]] = []
        tour: List[Tuple[EdgeId, Node, Node]] = []
        while stack:
            v = stack[-1]
            eid = next_unused(v)
            if eid == -1:
                stack.pop()
                if path_edges:
                    tour.append(path_edges.pop())
            else:
                used.add(eid)
                w = graph.other_endpoint(eid, v)
                path_edges.append((eid, v, w))
                stack.append(w)
        circuits.append(tour[::-1])
    return circuits


def compact_euler_circuits(
    indptr: Sequence[int],
    inc_edge: Sequence[int],
    inc_other: Sequence[int],
    degree: Sequence[int],
    num_edges: int,
) -> List[List[Tuple[int, int, int]]]:
    """Array-backend Hierholzer over raw CSR rows.

    The arrays describe a multigraph over dense node indices exactly as
    :class:`~repro.graphs.array_backend.CompactGraph` lays them out
    (row ``indptr[v]:indptr[v+1]`` lists incident edge indices in the
    object engine's ``incident_edges(v)`` order; self-loops appear once
    per row but count 2 in ``degree``).  Taking raw rows rather than a
    ``CompactGraph`` lets the even-capacity solver walk its *augmented*
    graph (original edges plus evenizing self-loops and pairing edges)
    without materializing object edges for the augmentation.

    Step-for-step mirror of :func:`euler_circuits`: same per-node
    cursor advancement, same start-node order (node index order ==
    object insertion order), same emit-on-retreat walk — so circuit
    ``k`` of this function traverses exactly the edges, directions and
    order of circuit ``k`` of the object function.

    Raises:
        NotEulerianError: if some node has odd degree.
    """
    n = len(degree)
    for v in range(n):
        if degree[v] % 2 != 0:
            raise NotEulerianError(f"node index {v} has odd degree {degree[v]}")

    cursor = [0] * n
    used = bytearray(num_edges)
    circuits: List[List[Tuple[int, int, int]]] = []

    for start in range(n):
        # Inline next_unused(start): skip already-used row entries.
        i = cursor[start]
        row_end = indptr[start + 1]
        base = indptr[start]
        while base + i < row_end and used[inc_edge[base + i]]:
            i += 1
        cursor[start] = i
        if base + i >= row_end:
            continue
        stack: List[int] = [start]
        path_edges: List[Tuple[int, int, int]] = []
        tour: List[Tuple[int, int, int]] = []
        while stack:
            v = stack[-1]
            base = indptr[v]
            row_end = indptr[v + 1]
            i = cursor[v]
            while base + i < row_end and used[inc_edge[base + i]]:
                i += 1
            cursor[v] = i
            if base + i >= row_end:
                stack.pop()
                if path_edges:
                    tour.append(path_edges.pop())
            else:
                e = inc_edge[base + i]
                used[e] = 1
                w = inc_other[base + i]
                path_edges.append((e, v, w))
                stack.append(w)
        circuits.append(tour[::-1])
    return circuits


def compact_euler_orientation(
    indptr: Sequence[int],
    inc_edge: Sequence[int],
    inc_other: Sequence[int],
    degree: Sequence[int],
    num_edges: int,
) -> Tuple[List[int], List[int], List[int]]:
    """Array-backend :func:`euler_orientation`.

    Returns ``(order, tail, head)``: ``order`` lists edge indices in
    the same sequence the object orientation dict would insert them
    (circuit discovery order), and ``tail[e]``/``head[e]`` give the
    traversal direction of edge ``e`` (``-1`` for edges not reached,
    which cannot happen on an Eulerian input).
    """
    order: List[int] = []
    tail = [-1] * num_edges
    head = [-1] * num_edges
    for circuit in compact_euler_circuits(indptr, inc_edge, inc_other, degree, num_edges):
        for e, u, v in circuit:
            order.append(e)
            tail[e] = u
            head[e] = v
    return order, tail, head


def euler_circuits_of(graph: CompactGraph) -> List[List[Tuple[int, int, int]]]:
    """:func:`compact_euler_circuits` over a :class:`CompactGraph`."""
    return compact_euler_circuits(
        graph.indptr, graph.inc_edge, graph.inc_other, graph.degree, graph.num_edges
    )


def euler_orientation(graph: Multigraph) -> Dict[EdgeId, Tuple[Node, Node]]:
    """Orient every edge along an Euler circuit of its component.

    Returns ``{edge_id: (tail, head)}``.  Because each circuit enters
    and leaves every node the same number of times, each node ``v``
    receives exactly ``degree(v)/2`` tails and ``degree(v)/2`` heads
    (a self-loop contributes one of each).

    Raises:
        NotEulerianError: if some node has odd degree.
    """
    orientation: Dict[EdgeId, Tuple[Node, Node]] = {}
    for circuit in euler_circuits(graph):
        for eid, u, v in circuit:
            orientation[eid] = (u, v)
    return orientation
