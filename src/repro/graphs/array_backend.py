"""Flat CSR array backend for the solver hot kernels.

The object engine (:class:`~repro.graphs.multigraph.Multigraph` plus the
dict-of-dict structures built on top of it) is the *reference*
implementation: easy to audit against the paper, but every adjacency
step costs a hash lookup and every temporary subgraph costs thousands
of small dict allocations.  On 100k+-edge transfer multigraphs those
constant factors dominate the near-linear algorithm of Theorem 5.1.

This module is the representation layer of the raw-speed engine:

* :class:`CompactGraph` — an immutable CSR (compressed sparse row)
  snapshot of a ``Multigraph``.  Node indices are dense ints in the
  graph's insertion order; edge indices are dense ints in ``edges()``
  enumeration order; per-node incident rows replicate
  ``incident_edges(v)`` order exactly.  Because every iteration order
  of the object engine is preserved as an array order, kernels written
  against ``CompactGraph`` can mirror the object kernels *step for
  step* and produce byte-identical schedules.
* :class:`CompactInstance` — a lowered migration instance: a
  ``CompactGraph`` plus a capacity array aligned to node indices and a
  reference to the source object instance (for the cold paths —
  lower bounds, validation — that stay on the reference engine).
* Lossless round-trip: ``CompactGraph.from_multigraph`` followed by
  :meth:`CompactGraph.to_multigraph` reproduces the original graph
  exactly — same node order, same edge ids, same per-node adjacency
  slot order, same ``next_edge_id`` high-water mark.

Iteration-order contract (load-bearing, relied on by every compact
kernel):

* ``nodes[i]`` is the i-th node of ``graph.nodes`` (dict insertion
  order of the object graph).
* ``edge_ids[e]`` is the e-th edge of ``graph.edges()`` (``_edges``
  dict insertion order).
* Row ``inc_edge[indptr[v]:indptr[v+1]]`` lists incident edge indices
  in ``graph.incident_edges(v)`` order, which the ``Multigraph``
  invariant guarantees equals the global ``edges()`` order filtered to
  the edges incident to ``v``.  Self-loops appear once per row but
  contribute 2 to ``degree``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.graphs.multigraph import EdgeId, Multigraph, Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.problem import MigrationInstance


class CompactGraph:
    """Immutable CSR snapshot of a :class:`Multigraph`.

    All structure lives in flat arrays of ints; the only objects kept
    are the original node labels and edge ids needed to lift results
    back.  Instances are snapshots: mutating the source graph after
    :meth:`from_multigraph` does not affect them, and they expose no
    mutators themselves.
    """

    __slots__ = (
        "nodes",
        "index_of",
        "num_nodes",
        "num_edges",
        "edge_ids",
        "edge_index_of",
        "edge_u",
        "edge_v",
        "indptr",
        "inc_edge",
        "inc_other",
        "degree",
        "next_edge_id",
        "_node_reprs",
        "_repr_order",
        "_repr_rank",
    )

    def __init__(
        self,
        nodes: List[Node],
        edge_ids: List[EdgeId],
        edge_u: List[int],
        edge_v: List[int],
        indptr: List[int],
        inc_edge: List[int],
        inc_other: List[int],
        degree: List[int],
        next_edge_id: EdgeId,
    ) -> None:
        self.nodes: List[Node] = nodes
        self.index_of: Dict[Node, int] = {v: i for i, v in enumerate(nodes)}
        self.num_nodes: int = len(nodes)
        self.num_edges: int = len(edge_ids)
        self.edge_ids: List[EdgeId] = edge_ids
        self.edge_index_of: Dict[EdgeId, int] = {
            eid: e for e, eid in enumerate(edge_ids)
        }
        self.edge_u: List[int] = edge_u
        self.edge_v: List[int] = edge_v
        self.indptr: List[int] = indptr
        self.inc_edge: List[int] = inc_edge
        self.inc_other: List[int] = inc_other
        self.degree: List[int] = degree
        self.next_edge_id: EdgeId = next_edge_id
        self._node_reprs: Optional[List[str]] = None
        self._repr_order: Optional[List[int]] = None
        self._repr_rank: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_multigraph(cls, graph: Multigraph) -> "CompactGraph":
        """Snapshot ``graph`` into CSR arrays, preserving every order."""
        nodes = graph.nodes
        index_of = {v: i for i, v in enumerate(nodes)}
        edge_ids: List[EdgeId] = []
        edge_index_of: Dict[EdgeId, int] = {}
        edge_u: List[int] = []
        edge_v: List[int] = []
        for eid, u, v in graph.edges():
            edge_index_of[eid] = len(edge_ids)
            edge_ids.append(eid)
            edge_u.append(index_of[u])
            edge_v.append(index_of[v])
        indptr: List[int] = [0]
        inc_edge: List[int] = []
        inc_other: List[int] = []
        degree: List[int] = []
        for v in nodes:
            vi = index_of[v]
            for eid in graph.incident_edges(v):
                e = edge_index_of[eid]
                inc_edge.append(e)
                inc_other.append(edge_v[e] if edge_u[e] == vi else edge_u[e])
            indptr.append(len(inc_edge))
            degree.append(graph.degree(v))
        return cls(
            nodes=nodes,
            edge_ids=edge_ids,
            edge_u=edge_u,
            edge_v=edge_v,
            indptr=indptr,
            inc_edge=inc_edge,
            inc_other=inc_other,
            degree=degree,
            next_edge_id=graph.next_edge_id,
        )

    def to_multigraph(self) -> Multigraph:
        """Lossless inverse of :meth:`from_multigraph`.

        Rebuilds the object graph with the original node order, edge
        ids, per-node adjacency slot order, degrees, and
        ``next_edge_id``.  Relies on the ``Multigraph`` invariant that
        per-node adjacency order equals the global edge enumeration
        order filtered to that node, so inserting edges in enumeration
        order reproduces both dict orders exactly.
        """
        g = Multigraph()
        for v in self.nodes:
            g.add_node(v)
        edge_u, edge_v, nodes = self.edge_u, self.edge_v, self.nodes
        for e, eid in enumerate(self.edge_ids):
            u = nodes[edge_u[e]]
            v = nodes[edge_v[e]]
            g.restore_edge(eid, u, v)
        g.reserve_edge_ids(self.next_edge_id)
        return g

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def incident_row(self, v: int) -> List[int]:
        """Edge indices incident to node index ``v`` (loops once)."""
        return self.inc_edge[self.indptr[v] : self.indptr[v + 1]]

    def is_self_loop(self, e: int) -> bool:
        return self.edge_u[e] == self.edge_v[e]

    def other_endpoint(self, e: int, v: int) -> int:
        u, w = self.edge_u[e], self.edge_v[e]
        if v == u:
            return w
        if v == w:
            return u
        raise ValueError(f"node index {v} is not an endpoint of edge index {e}")

    def max_degree(self) -> int:
        return max(self.degree, default=0)

    # ------------------------------------------------------------------
    # repr machinery (mirrors ``sorted(..., key=repr)`` object idiom)
    # ------------------------------------------------------------------
    def node_reprs(self) -> List[str]:
        """``repr`` of every node, cached, aligned to node indices."""
        if self._node_reprs is None:
            self._node_reprs = [repr(v) for v in self.nodes]
        return self._node_reprs

    def repr_order(self) -> List[int]:
        """Node indices stably sorted by ``repr`` string.

        Mirrors the object engine's ``sorted(nodes, key=repr)`` idiom;
        the stable tie-break on index matches the object engine
        whenever node reprs are unique (the same precondition the
        canonical fingerprint imposes).
        """
        if self._repr_order is None:
            reprs = self.node_reprs()
            self._repr_order = sorted(range(self.num_nodes), key=reprs.__getitem__)
        return self._repr_order

    def repr_rank(self) -> List[int]:
        """Rank of each node index in :meth:`repr_order`."""
        if self._repr_rank is None:
            rank = [0] * self.num_nodes
            for pos, v in enumerate(self.repr_order()):
                rank[v] = pos
            self._repr_rank = rank
        return self._repr_rank

    def parallel_edge_groups(self) -> Dict[Tuple[int, int], List[int]]:
        """Edge indices grouped by (repr-min, repr-max) endpoint pair.

        The flat-array analogue of the object engine's parallel-edge
        grouping (``max_multiplicity`` / bad-edge orbit machinery).
        Group keys use node indices ordered by ``repr`` rank; the list
        per group is in edge enumeration order.
        """
        rank = self.repr_rank()
        groups: Dict[Tuple[int, int], List[int]] = {}
        for e in range(self.num_edges):
            u, v = self.edge_u[e], self.edge_v[e]
            key = (u, v) if rank[u] <= rank[v] else (v, u)
            groups.setdefault(key, []).append(e)
        return groups

    def max_multiplicity(self) -> int:
        """Largest parallel-edge group size (self-loops group too)."""
        groups = self.parallel_edge_groups()
        return max((len(g) for g in groups.values()), default=0)

    def __repr__(self) -> str:
        return f"CompactGraph(nodes={self.num_nodes}, edges={self.num_edges})"


@dataclass(frozen=True)
class CompactInstance:
    """A migration instance lowered onto the array representation.

    ``capacities[i]`` is the capacity of ``graph.nodes[i]``.  The
    ``source`` reference keeps the object instance reachable for the
    cold paths that intentionally stay on the reference engine (lower
    bounds, schedule validation, the residual Vizing pass) and for
    lifting results back into edge-id space.
    """

    graph: CompactGraph
    capacities: List[int]
    source: "MigrationInstance"

    def delta_prime(self) -> int:
        """``max_v ceil(degree(v) / c_v)`` — equals the object value."""
        best = 0
        caps = self.capacities
        for i, deg in enumerate(self.graph.degree):
            need = -(-deg // caps[i])
            if need > best:
                best = need
        return best

    def all_even(self) -> bool:
        return all(c % 2 == 0 for c in self.capacities)


def lower_instance(instance: "MigrationInstance") -> CompactInstance:
    """Lower an object instance to the array representation once.

    The pipeline's solve stage calls this per component; every compact
    kernel then works on dense int arrays and lifts only the final
    schedule back through ``graph.edge_ids``.
    """
    graph = CompactGraph.from_multigraph(instance.graph)
    capacities = [instance.capacity(v) for v in graph.nodes]
    return CompactInstance(graph=graph, capacities=capacities, source=instance)


def lift_rounds(graph: CompactGraph, rounds: List[List[int]]) -> List[List[EdgeId]]:
    """Map rounds of edge *indices* back to rounds of edge *ids*."""
    edge_ids = graph.edge_ids
    return [[edge_ids[e] for e in rnd] for rnd in rounds]


def lift_coloring(graph: CompactGraph, color: Dict[int, int]) -> Dict[EdgeId, int]:
    """Map an edge-index-keyed coloring to edge ids, preserving order.

    Dict insertion order is preserved so downstream bucket fills (for
    example ``MigrationSchedule.from_coloring``) see the same sequence
    as the object engine.
    """
    edge_ids = graph.edge_ids
    return {edge_ids[e]: c for e, c in color.items()}
