"""Degree-constrained bipartite subgraphs via maximum flow.

This is the "Figure 3" machinery of the paper: Step (4) of the
even-capacity algorithm repeatedly extracts from the oriented bipartite
graph ``H`` a subgraph in which each copy ``v_out``/``v_in`` is matched
*exactly* ``c_v/2`` times.  Feasibility follows from a fractional
argument (Lemma 4.1) and integrality of max-flow.

The entry point is :func:`degree_constrained_subgraph`, which is
deliberately generic (quotas per left node and per right node) so it is
reusable for other ``b``-matching needs (e.g. the Saia baseline's edge
spreading is validated against it in tests).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.flow import FlowNetwork, IntFlowNetwork

Node = Hashable

#: Below this many frontier-incident arcs a BFS step runs as a scalar
#: Python loop; above it, as a vectorized numpy gather.  Both compute
#: the same (order-independent) level assignment.
_BFS_VECTOR_THRESHOLD = 4096

#: The DFS current-arc scan tries this many entries as a scalar loop
#: before falling back to a vectorized scan of the rest of the row.
#: The admissible arc is usually within the first few slots (quota
#: arcs sit at the front of their rows, and early in a phase most unit
#: arcs are admissible), but saturated phases scan deep into rows of
#: tens of thousands of arcs, where numpy argmax wins by ~50x.
_DFS_SCALAR_PREFIX = 6

#: Minimum remaining-row length for the vectorized DFS scan; shorter
#: tails stay scalar (numpy call overhead would dominate).
_DFS_VECTOR_THRESHOLD = 64


class InfeasibleMatchingError(ValueError):
    """Raised when no subgraph meets every quota exactly."""


def degree_constrained_subgraph(
    edges: Sequence[Tuple[Node, Node]],
    left_quota: Dict[Node, int],
    right_quota: Dict[Node, int],
) -> List[int]:
    """Select edge indices so each node is matched exactly its quota.

    Args:
        edges: bipartite edges ``(left, right)``; parallel edges are
            allowed and are distinguished by their index.
        left_quota: required number of selected edges at each left node.
        right_quota: required number of selected edges at each right
            node.  ``sum(left_quota.values())`` must equal
            ``sum(right_quota.values())``.

    Returns:
        Indices into ``edges`` of the selected subgraph.

    Raises:
        InfeasibleMatchingError: if no exact-quota subgraph exists.
    """
    demand_left = sum(left_quota.values())
    demand_right = sum(right_quota.values())
    if demand_left != demand_right:
        raise InfeasibleMatchingError(
            f"total left quota {demand_left} != total right quota {demand_right}"
        )

    net = FlowNetwork()
    source, sink = ("__source__",), ("__sink__",)
    for left, quota in left_quota.items():
        net.add_edge(source, ("L", left), quota)
    for right, quota in right_quota.items():
        net.add_edge(("R", right), sink, quota)
    handles = [net.add_edge(("L", u), ("R", v), 1) for u, v in edges]

    value = net.max_flow(source, sink)
    if value != demand_left:
        raise InfeasibleMatchingError(
            f"max flow {value} < required {demand_left}: quotas are infeasible"
        )
    return [i for i, h in enumerate(handles) if net.flow_on(h) == 1]


class QuotaPeeler:
    """Repeated exact-quota peels over one persistent flow network.

    The array-backend replacement for calling
    :func:`degree_constrained_subgraph` once per peel: the object
    engine rebuilds a :class:`FlowNetwork` from scratch for every peel
    (re-interning every node label and re-allocating every arc), while
    this engine builds the network **once** over dense int node
    indices and between peels only resets the quota arcs and retires
    the arcs of edges picked by the previous peel.

    Byte-identity argument: a retired or reset arc is
    indistinguishable from an absent arc to Dinic — zero-capacity arcs
    are skipped by both the BFS level computation and the DFS
    current-arc scan, and ``sum(cap)`` (the ``infinity`` bound) is
    unchanged by zero entries.  Arc order per node is the insertion
    order, which matches the order ``degree_constrained_subgraph``
    would use for the same ``remaining`` subset (quota arc first, then
    unit arcs in edge order).  Hence every peel performs exactly the
    augmentations the object engine performs on its freshly built
    network, and :meth:`peel` returns exactly the same selection.

    Usage contract: ``peel`` must be called with monotonically
    shrinking ``remaining`` lists — each call's ``remaining`` must be
    the previous call's ``remaining`` minus the positions it returned
    (this is precisely the peel loop structure of the even-capacity
    and König solvers).
    """

    def __init__(
        self,
        left_quota: Sequence[int],
        right_quota: Sequence[int],
        edge_left: Sequence[int],
        edge_right: Sequence[int],
    ) -> None:
        """Build the persistent network.

        Args:
            left_quota: quota per left node index.
            right_quota: quota per right node index.
            edge_left / edge_right: endpoint indices of unit edge ``k``.
        """
        num_left = len(left_quota)
        num_right = len(right_quota)
        self._left_quota = list(left_quota)
        self._right_quota = list(right_quota)
        self._sink = 1 + num_left + num_right
        self._demand = sum(self._left_quota)
        if self._demand != sum(self._right_quota):
            raise InfeasibleMatchingError(
                f"total left quota {self._demand} != "
                f"total right quota {sum(self._right_quota)}"
            )
        # Arc layout (twin of handle h is h ^ 1), in the insertion
        # order degree_constrained_subgraph uses: source->L quota arcs,
        # R->sink quota arcs, then unit arcs in edge order.
        num_units = len(edge_left)
        self._num_units = num_units
        self._unit_base = 2 * (num_left + num_right)
        to: List[int] = []
        cap: List[int] = []
        adj: List[List[int]] = [[] for _ in range(self._sink + 1)]
        for i, q in enumerate(self._left_quota):
            h = len(to)
            to.extend((1 + i, 0))
            cap.extend((q, 0))
            adj[0].append(h)
            adj[1 + i].append(h + 1)
        for j, q in enumerate(self._right_quota):
            h = len(to)
            to.extend((self._sink, 1 + num_left + j))
            cap.extend((q, 0))
            adj[1 + num_left + j].append(h)
            adj[self._sink].append(h + 1)
        for l, r in zip(edge_left, edge_right):
            h = len(to)
            to.extend((1 + num_left + r, 1 + l))
            cap.extend((1, 0))
            adj[1 + l].append(h)
            adj[1 + num_left + r].append(h + 1)
        self._to = to
        self._cap = cap
        self._adj = adj
        self._head_np = np.array(to, dtype=np.int64)
        self._pos_np = (np.array(cap, dtype=np.int64) > 0).astype(np.uint8)
        self._retired = bytearray(num_units)
        self._retired_total = 0
        self._last_compact_retired = 0
        self._rebuild_csr()
        self._fresh = True

    def _rebuild_csr(self) -> None:
        """(Re)build the numpy row gather arrays from the Python rows.

        ``_row_arc_np`` lists every live arc handle exactly once (each
        handle sits in its tail node's row); ``_row_tail_np`` and
        ``_row_head_np`` are its parallel endpoint arrays, precomputed
        here so a BFS step is three flat vector ops instead of a
        per-row gather construction.
        """
        adj = self._adj
        ptr = [0]
        flat: List[int] = []
        tails: List[int] = []
        for v, row in enumerate(adj):
            flat.extend(row)
            tails.extend([v] * len(row))
            ptr.append(len(flat))
        self._row_ptr_np = np.array(ptr, dtype=np.int64)
        self._row_arc_np = np.array(flat, dtype=np.int64)
        self._row_tail_np = np.array(tails, dtype=np.int64)
        self._row_head_np = self._head_np[self._row_arc_np]

    def _compact(self) -> None:
        """Drop retired unit arcs from every row.

        Retired arcs have zero capacity in both directions, so they are
        invisible to the Dinic search; removing them (preserving the
        relative order of the surviving arcs) changes nothing about the
        computation except the time spent skipping dead entries.
        """
        base = self._unit_base
        retired = self._retired
        for v in range(len(self._adj)):
            row = self._adj[v]
            self._adj[v] = [
                h for h in row if h < base or not retired[(h - base) >> 1]
            ]
        self._rebuild_csr()
        self._last_compact_retired = self._retired_total

    def _dinic(self) -> int:
        """Dinic mirror specialized for the persistent quota network.

        BFS levels are computed with a vectorized numpy gather when the
        frontier is large (levels are a pure function of the residual
        graph, so any BFS implementation yields the same array); the
        blocking-flow DFS is the same iterative exact mirror as
        :meth:`IntFlowNetwork.max_flow`, with the capacity-positivity
        numpy mirror (``_pos_np``) kept in sync on every 0 <-> positive
        transition so the next BFS sees the residual arcs.
        """
        to = self._to
        cap = self._cap
        adj = self._adj
        t = self._sink
        n = t + 1
        row_ptr = self._row_ptr_np
        row_arc = self._row_arc_np
        row_tail = self._row_tail_np
        row_head = self._row_head_np
        pos = self._pos_np
        num_slots = len(row_arc)
        total = 0
        while True:
            # BFS levels.  The level of a node is its residual BFS
            # distance from the source — a pure function of the
            # residual graph — so the scalar and vectorized variants
            # below produce the same array and the choice between them
            # is purely a constant-factor decision.
            if num_slots < _BFS_VECTOR_THRESHOLD:
                level = [-1] * n
                level[0] = 0
                frontier = [0]
                depth = 0
                while frontier:
                    depth += 1
                    nxt: List[int] = []
                    for v in frontier:
                        for h in adj[v]:
                            if cap[h] > 0:
                                w = to[h]
                                if level[w] < 0:
                                    level[w] = depth
                                    nxt.append(w)
                    frontier = nxt
                level_np = np.array(level, dtype=np.int64)
            else:
                pos_row = pos[row_arc] != 0
                level_np = np.full(n, -1, dtype=np.int64)
                level_np[0] = 0
                fmask = np.zeros(n, dtype=bool)
                fmask[0] = True
                depth = 0
                while fmask.any():
                    depth += 1
                    heads = row_head[pos_row & fmask[row_tail]]
                    seen = np.zeros(n, dtype=bool)
                    seen[heads] = True
                    fmask = seen & (level_np < 0)
                    level_np[fmask] = depth
                level = level_np.tolist()
            if level[t] < 0:
                return total
            # ``level`` (list) serves the scalar DFS scan, ``level_np``
            # the vectorized one; dead-end markings update both.
            it = [0] * n
            # Iterative blocking-flow DFS; see IntFlowNetwork.max_flow
            # for the equivalence argument to the recursive object DFS.
            # The current-arc scan is hybrid: a short scalar prefix,
            # then a vectorized first-admissible-arc search (argmax on
            # the same cap>0 / level==lv predicate over the CSR row
            # slice) — both find the *same* first admissible arc, so
            # the augmentation sequence is unchanged.
            path = [0]
            arcs_stack: List[int] = []
            while path:
                v = path[-1]
                if v == t:
                    pushed = min(cap[h] for h in arcs_stack)
                    cut = len(arcs_stack)
                    for idx, h in enumerate(arcs_stack):
                        c = cap[h] - pushed
                        cap[h] = c
                        if c == 0:
                            pos[h] = 0
                            if idx < cut:
                                cut = idx
                        tw = h ^ 1
                        if cap[tw] == 0:
                            pos[tw] = 1
                        cap[tw] += pushed
                    total += pushed
                    del path[cut + 1 :]
                    del arcs_stack[cut:]
                    continue
                row = adj[v]
                nrow = len(row)
                i = it[v]
                lv = level[v] + 1
                found = -1
                scan_end = i + _DFS_SCALAR_PREFIX
                if scan_end > nrow:
                    scan_end = nrow
                while i < scan_end:
                    h = row[i]
                    if cap[h] > 0 and level[to[h]] == lv:
                        found = h
                        break
                    i += 1
                if found < 0 and i < nrow:
                    if nrow - i >= _DFS_VECTOR_THRESHOLD:
                        start = int(row_ptr[v]) + i
                        end = start + (nrow - i)
                        seg = row_arc[start:end]
                        cand = (pos[seg] != 0) & (level_np[row_head[start:end]] == lv)
                        j = int(cand.argmax())
                        if cand[j]:
                            i += j
                            found = row[i]
                        else:
                            i = nrow
                    else:
                        while i < nrow:
                            h = row[i]
                            if cap[h] > 0 and level[to[h]] == lv:
                                found = h
                                break
                            i += 1
                if found >= 0:
                    it[v] = i
                    path.append(to[found])
                    arcs_stack.append(found)
                    continue
                it[v] = i
                level[v] = -1
                level_np[v] = -1
                path.pop()
                if path:
                    it[path[-1]] += 1
                    arcs_stack.pop()

    def _set_cap(self, h: int, c: int) -> None:
        self._cap[h] = c
        self._pos_np[h] = 1 if c > 0 else 0

    def peel(self, remaining: Sequence[int]) -> List[int]:
        """Extract one exact-quota subgraph from the live edges.

        Args:
            remaining: edge positions still live, in their original
                relative order (see the usage contract above).

        Returns:
            Indices *into* ``remaining`` of the selected edges —
            the same value ``degree_constrained_subgraph`` returns for
            the equivalent freshly built subproblem.

        Raises:
            InfeasibleMatchingError: if the quotas cannot be met.
        """
        if not self._fresh:
            for i, q in enumerate(self._left_quota):
                h = 2 * i
                self._set_cap(h, q)
                self._set_cap(h ^ 1, 0)
            right_base = 2 * len(self._left_quota)
            for j, q in enumerate(self._right_quota):
                h = right_base + 2 * j
                self._set_cap(h, q)
                self._set_cap(h ^ 1, 0)
            live = self._num_units - self._retired_total
            if self._retired_total - self._last_compact_retired > max(live, 1024):
                self._compact()
        self._fresh = False
        value = self._dinic()
        if value != self._demand:
            raise InfeasibleMatchingError(
                f"max flow {value} < required {self._demand}: quotas are infeasible"
            )
        base = self._unit_base
        retired = self._retired
        # A live unit arc ends a peel at residual (1, 0) if unpicked or
        # (0, 1) if picked, so "picked" is exactly "forward residual is
        # zero" — one vectorized positivity lookup per remaining edge.
        rem = np.asarray(remaining, dtype=np.int64)
        mask = self._pos_np[base + 2 * rem] == 0
        picked_pos = np.flatnonzero(mask)
        for k in rem[picked_pos].tolist():
            h = base + 2 * k
            # Retire the edge: both directions dead from now on, so
            # later peels see it exactly as the object engine sees an
            # edge dropped from its rebuilt network.
            self._set_cap(h, 0)
            self._set_cap(h ^ 1, 0)
            retired[k] = 1
        self._retired_total += len(picked_pos)
        return picked_pos.tolist()


def maximum_bipartite_matching(
    edges: Sequence[Tuple[Node, Node]]
) -> List[int]:
    """Maximum cardinality matching of a bipartite edge list.

    A thin convenience built on the same flow core (quota 1 per node,
    but quotas need not be met exactly).  Returns selected edge
    indices.
    """
    net = FlowNetwork()
    source, sink = ("__source__",), ("__sink__",)
    # Sorted so network construction (and thus the returned matching)
    # does not depend on hash randomization.
    lefts = sorted({u for u, _ in edges}, key=repr)
    rights = sorted({v for _, v in edges}, key=repr)
    for left in lefts:
        net.add_edge(source, ("L", left), 1)
    for right in rights:
        net.add_edge(("R", right), sink, 1)
    handles = [net.add_edge(("L", u), ("R", v), 1) for u, v in edges]
    net.max_flow(source, sink)
    return [i for i, h in enumerate(handles) if net.flow_on(h) == 1]
