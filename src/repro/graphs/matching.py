"""Degree-constrained bipartite subgraphs via maximum flow.

This is the "Figure 3" machinery of the paper: Step (4) of the
even-capacity algorithm repeatedly extracts from the oriented bipartite
graph ``H`` a subgraph in which each copy ``v_out``/``v_in`` is matched
*exactly* ``c_v/2`` times.  Feasibility follows from a fractional
argument (Lemma 4.1) and integrality of max-flow.

The entry point is :func:`degree_constrained_subgraph`, which is
deliberately generic (quotas per left node and per right node) so it is
reusable for other ``b``-matching needs (e.g. the Saia baseline's edge
spreading is validated against it in tests).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graphs.flow import FlowNetwork

Node = Hashable


class InfeasibleMatchingError(ValueError):
    """Raised when no subgraph meets every quota exactly."""


def degree_constrained_subgraph(
    edges: Sequence[Tuple[Node, Node]],
    left_quota: Dict[Node, int],
    right_quota: Dict[Node, int],
) -> List[int]:
    """Select edge indices so each node is matched exactly its quota.

    Args:
        edges: bipartite edges ``(left, right)``; parallel edges are
            allowed and are distinguished by their index.
        left_quota: required number of selected edges at each left node.
        right_quota: required number of selected edges at each right
            node.  ``sum(left_quota.values())`` must equal
            ``sum(right_quota.values())``.

    Returns:
        Indices into ``edges`` of the selected subgraph.

    Raises:
        InfeasibleMatchingError: if no exact-quota subgraph exists.
    """
    demand_left = sum(left_quota.values())
    demand_right = sum(right_quota.values())
    if demand_left != demand_right:
        raise InfeasibleMatchingError(
            f"total left quota {demand_left} != total right quota {demand_right}"
        )

    net = FlowNetwork()
    source, sink = ("__source__",), ("__sink__",)
    for left, quota in left_quota.items():
        net.add_edge(source, ("L", left), quota)
    for right, quota in right_quota.items():
        net.add_edge(("R", right), sink, quota)
    handles = [net.add_edge(("L", u), ("R", v), 1) for u, v in edges]

    value = net.max_flow(source, sink)
    if value != demand_left:
        raise InfeasibleMatchingError(
            f"max flow {value} < required {demand_left}: quotas are infeasible"
        )
    return [i for i, h in enumerate(handles) if net.flow_on(h) == 1]


def maximum_bipartite_matching(
    edges: Sequence[Tuple[Node, Node]]
) -> List[int]:
    """Maximum cardinality matching of a bipartite edge list.

    A thin convenience built on the same flow core (quota 1 per node,
    but quotas need not be met exactly).  Returns selected edge
    indices.
    """
    net = FlowNetwork()
    source, sink = ("__source__",), ("__sink__",)
    # Sorted so network construction (and thus the returned matching)
    # does not depend on hash randomization.
    lefts = sorted({u for u, _ in edges}, key=repr)
    rights = sorted({v for _, v in edges}, key=repr)
    for left in lefts:
        net.add_edge(source, ("L", left), 1)
    for right in rights:
        net.add_edge(("R", right), sink, 1)
    handles = [net.add_edge(("L", u), ("R", v), 1) for u, v in edges]
    net.max_flow(source, sink)
    return [i for i, h in enumerate(handles) if net.flow_on(h) == 1]
