"""An undirected multigraph with stable edge identities.

The transfer graphs of the paper are multigraphs: several data items may
move between the same pair of disks, so parallel edges are first-class
citizens, and the even-capacity algorithm of Section IV temporarily adds
self-loops.  ``networkx.MultiGraph`` could represent this, but the
coloring and orbit algorithms need O(1) access to per-edge identities,
degrees and parallel-edge groups, so we keep a small dedicated
structure and convert to networkx only at the boundaries.

Edges are identified by integer ids that are stable across removals;
every algorithm in this package talks about edges by id, never by
``(u, v)`` pair (which would be ambiguous in a multigraph).

Edge-id stability contract (relied on by the array backend and the
plan cache):

* ``add_edge`` assigns strictly increasing ids from a high-water mark
  (``next_edge_id``) that **never decreases** — removing an edge does
  not recycle its id, so any ``remove_edge``/re-add interleaving keeps
  old ids valid and new ids fresh.
* Enumeration order: ``edges()`` / ``edge_ids()`` yield edges in
  insertion order.  For graphs built through ``add_edge`` alone this
  is ascending-id order; ``edge_subgraph`` inserts in the caller-given
  order, so consumers that need ascending ids must sort.
* Adjacency-order invariant: for every node ``v``,
  ``incident_edges(v)`` equals the global ``edges()`` order filtered
  to the edges incident to ``v``.  This holds under any sequence of
  ``add_edge``/``remove_edge`` (both dicts delete and append
  together) and is preserved by ``copy``/``subgraph``/
  ``edge_subgraph``/``restore_edge``.  The CSR conversion boundary
  (``CompactGraph.from_multigraph``) snapshots exactly this order and
  its inverse rebuilds it, so conversion round-trips ids and orders
  exactly.
* Self-loop accounting: a self-loop appears **once** in
  ``incident_edges(v)`` (one adjacency slot) but contributes **2** to
  ``degree(v)``; ``sum(degree) == 2 * num_edges`` always.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable
EdgeId = int


class Multigraph:
    """Undirected multigraph with parallel edges and self-loops.

    Degrees follow the usual convention: a self-loop contributes 2 to
    the degree of its endpoint.
    """

    def __init__(
        self, nodes: Iterable[Node] = (), edges: Iterable[Tuple[Node, Node]] = ()
    ) -> None:
        self._adj: Dict[Node, Dict[EdgeId, Node]] = {}
        self._edges: Dict[EdgeId, Tuple[Node, Node]] = {}
        self._degree: Dict[Node, int] = {}
        self._next_id: EdgeId = 0
        for n in nodes:
            self.add_node(n)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Add an isolated node (no-op if present)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._degree[v] = 0

    def add_edge(self, u: Node, v: Node) -> EdgeId:
        """Add an undirected edge between ``u`` and ``v``; return its id.

        ``u == v`` creates a self-loop, which counts 2 toward the degree
        of the node.
        """
        self.add_node(u)
        self.add_node(v)
        eid = self._next_id
        self._next_id += 1
        self._edges[eid] = (u, v)
        self._adj[u][eid] = v
        if u != v:
            self._adj[v][eid] = u
            self._degree[u] += 1
            self._degree[v] += 1
        else:
            self._degree[u] += 2
        return eid

    def restore_edge(self, eid: EdgeId, u: Node, v: Node) -> None:
        """Insert an edge under a caller-chosen id.

        The conversion-boundary inverse of enumeration: rebuilding a
        graph by calling ``restore_edge`` in ``edges()`` order
        reproduces the original ``_edges`` and per-node adjacency
        orders exactly (see the adjacency-order invariant in the
        module docstring).  The id high-water mark is advanced past
        ``eid`` so later ``add_edge`` calls never collide.

        Raises:
            ValueError: if ``eid`` is already present.
        """
        if eid in self._edges:
            raise ValueError(f"edge id {eid} already present")
        self.add_node(u)
        self.add_node(v)
        self._edges[eid] = (u, v)
        self._adj[u][eid] = v
        if u != v:
            self._adj[v][eid] = u
            self._degree[u] += 1
            self._degree[v] += 1
        else:
            self._degree[u] += 2
        if eid >= self._next_id:
            self._next_id = eid + 1

    def reserve_edge_ids(self, next_id: EdgeId) -> None:
        """Raise the id high-water mark to at least ``next_id``.

        Lets a reconstructed graph (e.g. ``CompactGraph.to_multigraph``)
        keep allocating fresh ids exactly where the source graph would
        have, even when the source had removed its highest-id edges.
        The mark never decreases.
        """
        if next_id > self._next_id:
            self._next_id = next_id

    def remove_edge(self, eid: EdgeId) -> Tuple[Node, Node]:
        """Remove edge ``eid``; return its endpoints.

        The id is retired, never reused: a later ``add_edge`` still
        allocates from the high-water mark, so removal/re-add
        interleavings can never alias two distinct edges.
        """
        u, v = self._edges.pop(eid)
        del self._adj[u][eid]
        if u != v:
            del self._adj[v][eid]
            self._degree[u] -= 1
            self._degree[v] -= 1
        else:
            self._degree[u] -= 2
        return (u, v)

    def remove_node(self, v: Node) -> None:
        """Remove node ``v`` and every edge incident to it."""
        for eid in list(self._adj[v]):
            self.remove_edge(eid)
        del self._adj[v]
        del self._degree[v]

    def copy(self) -> "Multigraph":
        """Deep structural copy preserving node names and edge ids."""
        g = Multigraph()
        g._adj = {v: dict(inc) for v, inc in self._adj.items()}
        g._edges = dict(self._edges)
        g._degree = dict(self._degree)
        g._next_id = self._next_id
        return g

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def next_edge_id(self) -> EdgeId:
        """The id the next ``add_edge`` will assign (never decreases)."""
        return self._next_id

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def has_node(self, v: Node) -> bool:
        return v in self._adj

    def has_edge_id(self, eid: EdgeId) -> bool:
        return eid in self._edges

    def edge_ids(self) -> List[EdgeId]:
        return list(self._edges)

    def edges(self) -> Iterator[Tuple[EdgeId, Node, Node]]:
        """Iterate over ``(edge_id, u, v)`` triples."""
        for eid, (u, v) in self._edges.items():
            yield eid, u, v

    def endpoints(self, eid: EdgeId) -> Tuple[Node, Node]:
        return self._edges[eid]

    def other_endpoint(self, eid: EdgeId, v: Node) -> Node:
        u, w = self._edges[eid]
        if v == u:
            return w
        if v == w:
            return u
        raise ValueError(f"node {v!r} is not an endpoint of edge {eid}")

    def is_self_loop(self, eid: EdgeId) -> bool:
        u, v = self._edges[eid]
        return u == v

    def degree(self, v: Node) -> int:
        """Degree of ``v`` (self-loops count twice)."""
        return self._degree[v]

    def max_degree(self) -> int:
        return max(self._degree.values(), default=0)

    def incident_edges(self, v: Node) -> List[EdgeId]:
        """Ids of all edges incident to ``v`` (self-loops appear once)."""
        return list(self._adj[v])

    def neighbors(self, v: Node) -> Set[Node]:
        return set(self._adj[v].values())

    def edges_between(self, u: Node, v: Node) -> List[EdgeId]:
        """All parallel edge ids between ``u`` and ``v``."""
        if u not in self._adj or v not in self._adj:
            return []
        if self.degree(u) > self.degree(v):
            u, v = v, u
        return [eid for eid, other in self._adj[u].items() if other == v]

    def multiplicity(self, u: Node, v: Node) -> int:
        """Number of parallel edges between ``u`` and ``v``."""
        return len(self.edges_between(u, v))

    def max_multiplicity(self) -> int:
        """Largest number of parallel edges between any node pair."""
        counts: Dict[Tuple[Node, Node], int] = {}
        for _eid, u, v in self.edges():
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values(), default=0)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def connected_components(self) -> List[Set[Node]]:
        """Components of the underlying graph (isolated nodes included)."""
        seen: Set[Node] = set()
        components: List[Set[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            seen.add(start)
            while stack:
                x = stack.pop()
                for other in self._adj[x].values():
                    if other not in seen:
                        seen.add(other)
                        comp.add(other)
                        stack.append(other)
            components.append(comp)
        return components

    def subgraph(self, nodes: Iterable[Node]) -> "Multigraph":
        """Node-induced subgraph; edge ids are preserved."""
        keep = set(nodes)
        g = Multigraph()
        for v in sorted(keep, key=repr):
            if v in self._adj:
                g.add_node(v)
        g._next_id = self._next_id
        for eid, (u, v) in self._edges.items():
            if u in keep and v in keep:
                g._edges[eid] = (u, v)
                g._adj[u][eid] = v
                if u != v:
                    g._adj[v][eid] = u
                    g._degree[u] += 1
                    g._degree[v] += 1
                else:
                    g._degree[u] += 2
        return g

    def edge_subgraph(self, eids: Iterable[EdgeId]) -> "Multigraph":
        """Subgraph containing exactly the given edges (ids preserved)."""
        g = Multigraph()
        g._next_id = self._next_id
        for eid in eids:
            u, v = self._edges[eid]
            g.add_node(u)
            g.add_node(v)
            g._edges[eid] = (u, v)
            g._adj[u][eid] = v
            if u != v:
                g._adj[v][eid] = u
                g._degree[u] += 1
                g._degree[v] += 1
            else:
                g._degree[u] += 2
        return g

    def to_networkx(self) -> Any:
        """Export as ``networkx.MultiGraph`` with edge ids as keys."""
        import networkx as nx

        g = nx.MultiGraph()
        g.add_nodes_from(self._adj)
        for eid, (u, v) in self._edges.items():
            g.add_edge(u, v, key=eid)
        return g

    @classmethod
    def from_networkx(cls, g: Any) -> "Multigraph":
        """Import from any networkx (multi)graph; edge keys are ignored."""
        mg = cls()
        for v in g.nodes:
            mg.add_node(v)
        for u, v in g.edges():
            mg.add_edge(u, v)
        return mg

    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"Multigraph(nodes={self.num_nodes}, edges={self.num_edges})"
