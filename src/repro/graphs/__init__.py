"""Graph substrates used by the migration scheduler.

This subpackage is self-contained: it provides the multigraph data
structure, Euler circuits, maximum flow, degree-constrained bipartite
subgraphs (``b``-matchings) and a family of edge-coloring algorithms.
The scheduling algorithms in :mod:`repro.core` are built on top of it.
"""

from repro.graphs.multigraph import Multigraph
from repro.graphs.euler import euler_circuits, euler_orientation
from repro.graphs.flow import FlowNetwork, max_flow
from repro.graphs.matching import degree_constrained_subgraph

__all__ = [
    "Multigraph",
    "euler_circuits",
    "euler_orientation",
    "FlowNetwork",
    "max_flow",
    "degree_constrained_subgraph",
]
