"""Metrics and reporting for the benchmark harness."""

from repro.analysis.metrics import (
    ScheduleQuality,
    compare_methods,
    schedule_quality,
)
from repro.analysis.tables import Table

__all__ = ["ScheduleQuality", "schedule_quality", "compare_methods", "Table"]
