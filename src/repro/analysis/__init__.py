"""Metrics and reporting for the benchmark harness."""

from repro.analysis.metrics import (
    ScheduleQuality,
    TraceStats,
    aggregate_trace,
    compare_methods,
    schedule_quality,
    summarize_runtime_trace,
)
from repro.analysis.tables import Table

__all__ = [
    "ScheduleQuality",
    "TraceStats",
    "aggregate_trace",
    "schedule_quality",
    "compare_methods",
    "summarize_runtime_trace",
    "Table",
]
