"""Schedule-quality metrics.

Everything the experiment tables report is computed here:
rounds, the certified lower bound, the ratio between them (an upper
bound on the true approximation ratio, since ``LB <= OPT``), and the
Theorem 5.1 budget ``LB + 2⌈√LB⌉``.

Also consumes the structured JSONL traces written by
:mod:`repro.runtime.telemetry` (:func:`load_runtime_trace` /
:func:`summarize_runtime_trace`) — the trace format is plain JSON, so
this module needs no runtime import and works on archived traces.
"""

from __future__ import annotations

import json
import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.lower_bounds import lb1, lower_bound
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.obs import names
from repro.pipeline.planner import plan


@dataclass(frozen=True)
class ScheduleQuality:
    """Quality summary of one schedule on one instance."""

    method: str
    rounds: int
    lower_bound: int
    delta_prime: int

    @property
    def ratio(self) -> float:
        """Rounds over the certified lower bound.

        Since ``LB <= OPT``, this is an upper bound on the schedule's
        true approximation ratio.
        """
        return self.rounds / self.lower_bound if self.lower_bound else 1.0

    @property
    def excess(self) -> int:
        """Rounds above the lower bound."""
        return self.rounds - self.lower_bound

    @property
    def theorem_budget(self) -> int:
        """``LB + 2⌈√LB⌉ + 2`` — the Theorem 5.1 yardstick."""
        return self.lower_bound + 2 * math.isqrt(max(self.lower_bound, 0)) + 2

    @property
    def within_theorem_budget(self) -> bool:
        return self.rounds <= self.theorem_budget


def schedule_quality(
    instance: MigrationInstance,
    schedule: MigrationSchedule,
    precomputed_lb: Optional[int] = None,
) -> ScheduleQuality:
    """Compute the quality record for a (validated) schedule."""
    lb = precomputed_lb if precomputed_lb is not None else lower_bound(instance)
    return ScheduleQuality(
        method=schedule.method,
        rounds=schedule.num_rounds,
        lower_bound=lb,
        delta_prime=lb1(instance),
    )


def compare_methods(
    instance: MigrationInstance,
    methods: Sequence[str] = ("general", "saia", "greedy", "homogeneous"),
    seed: int = 0,
) -> Dict[str, ScheduleQuality]:
    """Run several schedulers on one instance; return quality per method."""
    lb = lower_bound(instance)
    out: Dict[str, ScheduleQuality] = {}
    for method in methods:
        schedule = plan(instance, method=method, seed=seed).schedule
        out[method] = schedule_quality(instance, schedule, precomputed_lb=lb)
    return out


@dataclass(frozen=True)
class RuntimeSummary:
    """Aggregate view of one supervised run's JSONL trace."""

    completion_time: float
    rounds: int
    attempts: int
    delivered: int
    failures: Dict[str, int]
    retries: int
    defers: int
    replans: int
    stranded: int
    crashes: int
    finished: bool

    @property
    def failed(self) -> int:
        return sum(self.failures.values())

    @property
    def goodput(self) -> float:
        """Delivered transfers per attempted transfer (1.0 = no waste)."""
        return self.delivered / self.attempts if self.attempts else 1.0


def load_runtime_trace(path: str) -> List[Dict[str, Any]]:
    """Read a runtime JSONL trace back into records."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_runtime_trace(records: Sequence[Mapping[str, Any]]) -> RuntimeSummary:
    """Fold a runtime trace into the headline numbers.

    Consumes both trace dialects:

    * the executor's event records (``--trace``: ``type`` per record,
      one ``transfer`` record per attempt);
    * the :mod:`repro.obs` span schema (``--trace-out``: ``kind`` per
      record, ``runtime.round`` spans carrying attempt counts in their
      attrs plus flushed ``counter``/``gauge`` records).

    Works on a full trace or on the concatenation a resumed run
    appends to — records are folded, not assumed contiguous.  The two
    dialects land in different files, so nothing is double-counted:
    event records never carry ``kind`` and span records never carry
    ``type``.
    """
    attempts = delivered = retries = defers = replans = 0
    stranded = crashes = rounds = 0
    failures: Dict[str, int] = {}
    completion_time = 0.0
    finished = False
    for record in records:
        completion_time = max(completion_time, float(record.get("t", 0.0)))
        kind = record.get("type")
        if kind == "transfer":
            attempts += 1
            if record.get("outcome") == "done":
                delivered += 1
            else:
                reason = record.get("reason", "unknown")
                failures[reason] = failures.get(reason, 0) + 1
                action = record.get("action")
                if action == "retry":
                    retries += 1
                elif action == "defer":
                    defers += 1
        elif kind == "delivered_in_place":
            delivered += 1
        elif kind == "round_completed":
            rounds += 1
        elif kind == "replanned":
            replans += 1
        elif kind == "stranded":
            stranded += 1
        elif kind == "disk_crashed":
            crashes += 1
        elif kind == "run_completed":
            finished = True
        elif kind is None:
            obs_kind = record.get("kind")
            if obs_kind == "span":
                attrs = record.get("attrs", {})
                if record.get("name") == names.SPAN_ROUND:
                    rounds += 1
                    attempts += int(attrs.get("attempted", 0))
                    delivered += int(attrs.get("succeeded", 0))
                    completion_time = max(
                        completion_time,
                        float(attrs.get("sim_start", 0.0))
                        + float(attrs.get("sim_duration", 0.0)),
                    )
                elif record.get("name") == names.SPAN_REPLAN:
                    replans += 1
            elif obs_kind == "counter":
                name = record.get("name", "")
                value = int(record.get("value", 0))
                if name.startswith(names.FAILURE_PREFIX):
                    reason = name[len(names.FAILURE_PREFIX):]
                    failures[reason] = failures.get(reason, 0) + value
                elif name == names.RETRIES:
                    retries += value
                elif name == names.DEFERS:
                    defers += value
                elif name == names.ITEMS_STRANDED:
                    stranded += value
                elif name == names.DISK_CRASHES:
                    crashes += value
                elif name == names.ITEMS_RETARGETED_IN_PLACE:
                    delivered += value
            elif obs_kind == "gauge":
                if record.get("name") == names.RUNTIME_FINISHED and record.get(
                    "value"
                ):
                    finished = True
    return RuntimeSummary(
        completion_time=completion_time,
        rounds=rounds,
        attempts=attempts,
        delivered=delivered,
        failures={k: failures[k] for k in sorted(failures)},
        retries=retries,
        defers=defers,
        replans=replans,
        stranded=stranded,
        crashes=crashes,
        finished=finished,
    )


@dataclass
class TraceStats:
    """Aggregate view of one :mod:`repro.obs` JSONL trace.

    The backing store of ``repro-migrate stats``: per-pipeline-stage
    and per-solver wall/CPU totals, per-round execution numbers, and
    the flushed metric instruments.  All mappings are sorted by key so
    rendering is deterministic.
    """

    spans: int = 0
    #: stage name -> {"wall", "cpu", "calls"} for ``pipeline.stage.*``.
    stages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: solver method -> {"wall", "cpu", "calls"} for ``pipeline.solve``
    #: (pool solves land under ``"pool"``).
    solvers: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: one row per ``runtime.round`` span, in trace order.
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    plans: int = 0
    replans: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)


def _fold_timing(
    into: Dict[str, Dict[str, float]], key: str, record: Mapping[str, Any]
) -> None:
    slot = into.setdefault(key, {"wall": 0.0, "cpu": 0.0, "calls": 0})
    slot["wall"] += float(record.get("wall", 0.0))
    slot["cpu"] += float(record.get("cpu", 0.0))
    slot["calls"] += 1


def aggregate_trace(records: Sequence[Mapping[str, Any]]) -> TraceStats:
    """Fold an obs-schema trace into :class:`TraceStats`."""
    stats = TraceStats()
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            stats.spans += 1
            name = str(record.get("name", ""))
            attrs = record.get("attrs", {})
            if name.startswith(names.SPAN_STAGE_PREFIX):
                _fold_timing(
                    stats.stages, name[len(names.SPAN_STAGE_PREFIX):], record
                )
            elif name == names.SPAN_SOLVE:
                _fold_timing(stats.solvers, str(attrs.get("method", "?")), record)
            elif name == names.SPAN_SOLVE_POOL:
                _fold_timing(stats.solvers, "pool", record)
            elif name == names.SPAN_PLAN:
                stats.plans += 1
            elif name == names.SPAN_REPLAN:
                stats.replans += 1
            elif name == names.SPAN_ROUND:
                stats.rounds.append(
                    {
                        "round": attrs.get("round"),
                        "wall": float(record.get("wall", 0.0)),
                        "attempted": int(attrs.get("attempted", 0)),
                        "succeeded": int(attrs.get("succeeded", 0)),
                        "failed": int(attrs.get("failed", 0)),
                        "sim_start": float(attrs.get("sim_start", 0.0)),
                        "sim_duration": float(attrs.get("sim_duration", 0.0)),
                    }
                )
        elif kind == "counter":
            name = str(record.get("name", ""))
            stats.counters[name] = stats.counters.get(name, 0) + int(
                record.get("value", 0)
            )
        elif kind == "gauge":
            stats.gauges[str(record.get("name", ""))] = float(
                record.get("value", 0.0)
            )
    stats.stages = {k: stats.stages[k] for k in sorted(stats.stages)}
    stats.solvers = {k: stats.solvers[k] for k in sorted(stats.solvers)}
    stats.counters = {k: stats.counters[k] for k in sorted(stats.counters)}
    stats.gauges = {k: stats.gauges[k] for k in sorted(stats.gauges)}
    return stats


def summarize_ratios(qualities: Iterable[ScheduleQuality]) -> Dict[str, float]:
    """Mean / max / p95 of ratio-to-LB over a batch of runs."""
    ratios = [q.ratio for q in qualities]
    if not ratios:
        return {"mean": 1.0, "max": 1.0, "p95": 1.0}
    ratios.sort()
    p95_index = min(len(ratios) - 1, math.ceil(0.95 * len(ratios)) - 1)
    return {
        "mean": statistics.fmean(ratios),
        "max": ratios[-1],
        "p95": ratios[p95_index],
    }
