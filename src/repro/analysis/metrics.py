"""Schedule-quality metrics.

Everything the experiment tables report is computed here:
rounds, the certified lower bound, the ratio between them (an upper
bound on the true approximation ratio, since ``LB <= OPT``), and the
Theorem 5.1 budget ``LB + 2⌈√LB⌉``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.lower_bounds import lb1, lower_bound
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.core.solver import plan_migration


@dataclass(frozen=True)
class ScheduleQuality:
    """Quality summary of one schedule on one instance."""

    method: str
    rounds: int
    lower_bound: int
    delta_prime: int

    @property
    def ratio(self) -> float:
        """Rounds over the certified lower bound.

        Since ``LB <= OPT``, this is an upper bound on the schedule's
        true approximation ratio.
        """
        return self.rounds / self.lower_bound if self.lower_bound else 1.0

    @property
    def excess(self) -> int:
        """Rounds above the lower bound."""
        return self.rounds - self.lower_bound

    @property
    def theorem_budget(self) -> int:
        """``LB + 2⌈√LB⌉ + 2`` — the Theorem 5.1 yardstick."""
        return self.lower_bound + 2 * math.isqrt(max(self.lower_bound, 0)) + 2

    @property
    def within_theorem_budget(self) -> bool:
        return self.rounds <= self.theorem_budget


def schedule_quality(
    instance: MigrationInstance,
    schedule: MigrationSchedule,
    precomputed_lb: Optional[int] = None,
) -> ScheduleQuality:
    """Compute the quality record for a (validated) schedule."""
    lb = precomputed_lb if precomputed_lb is not None else lower_bound(instance)
    return ScheduleQuality(
        method=schedule.method,
        rounds=schedule.num_rounds,
        lower_bound=lb,
        delta_prime=lb1(instance),
    )


def compare_methods(
    instance: MigrationInstance,
    methods: Sequence[str] = ("general", "saia", "greedy", "homogeneous"),
    seed: int = 0,
) -> Dict[str, ScheduleQuality]:
    """Run several schedulers on one instance; return quality per method."""
    lb = lower_bound(instance)
    out: Dict[str, ScheduleQuality] = {}
    for method in methods:
        schedule = plan_migration(instance, method=method, seed=seed)
        out[method] = schedule_quality(instance, schedule, precomputed_lb=lb)
    return out


def summarize_ratios(qualities: Iterable[ScheduleQuality]) -> Dict[str, float]:
    """Mean / max / p95 of ratio-to-LB over a batch of runs."""
    ratios = [q.ratio for q in qualities]
    if not ratios:
        return {"mean": 1.0, "max": 1.0, "p95": 1.0}
    ratios.sort()
    p95_index = min(len(ratios) - 1, math.ceil(0.95 * len(ratios)) - 1)
    return {
        "mean": statistics.fmean(ratios),
        "max": ratios[-1],
        "p95": ratios[p95_index],
    }
