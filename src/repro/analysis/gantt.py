"""Text Gantt charts of migration schedules.

A schedule is a per-round edge partition; the Gantt view shows each
disk's lane usage per round, which makes capacity slack and stragglers
visible at a glance:

```
disk     |c_v| rounds ------------------------>
old-0    | 1 | ##.#
nvme-3   | 4 | 4321
```

Cells show the number of transfers a disk runs that round (``#`` for
single-capacity disks, the digit for larger ones, ``.`` for idle).
Pure-stdlib rendering, used by tests and the CLI's ``--gantt`` flag.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.multigraph import Node


def _cell(load: int, capacity: int) -> str:
    if load == 0:
        return "."
    if capacity == 1:
        return "#"
    return str(load) if load < 10 else "+"


def render_gantt(
    instance: MigrationInstance,
    schedule: MigrationSchedule,
    max_rounds: Optional[int] = None,
    only_busy: bool = True,
) -> str:
    """Render the per-disk per-round load matrix as text.

    Args:
        max_rounds: truncate wide schedules (an ellipsis marks it).
        only_busy: hide disks that never transfer.
    """
    loads: Dict[Node, List[int]] = {v: [] for v in instance.graph.nodes}
    for i in range(schedule.num_rounds):
        round_loads = schedule.round_loads(instance, i)
        for v in loads:
            loads[v].append(round_loads.get(v, 0))

    shown_rounds = schedule.num_rounds
    truncated = False
    if max_rounds is not None and shown_rounds > max_rounds:
        shown_rounds = max_rounds
        truncated = True

    rows = []
    disks = sorted(loads, key=repr)
    name_width = max((len(str(d)) for d in disks), default=4)
    header = f"{'disk'.ljust(name_width)} |c_v| rounds 0..{schedule.num_rounds - 1}"
    rows.append(header)
    rows.append("-" * len(header))
    for v in disks:
        series = loads[v]
        if only_busy and not any(series):
            continue
        cap = instance.capacity(v)
        cells = "".join(_cell(x, cap) for x in series[:shown_rounds])
        suffix = "…" if truncated else ""
        rows.append(f"{str(v).ljust(name_width)} | {cap} | {cells}{suffix}")
    return "\n".join(rows)


def utilization(instance: MigrationInstance, schedule: MigrationSchedule) -> Dict[Node, float]:
    """Fraction of a disk's slot-rounds actually used (0..1 per disk)."""
    if schedule.num_rounds == 0:
        return {v: 0.0 for v in instance.graph.nodes}
    out: Dict[Node, float] = {}
    totals: Dict[Node, int] = {v: 0 for v in instance.graph.nodes}
    for i in range(schedule.num_rounds):
        for v, load in schedule.round_loads(instance, i).items():
            totals[v] += load
    for v in instance.graph.nodes:
        out[v] = totals[v] / (instance.capacity(v) * schedule.num_rounds)
    return out
