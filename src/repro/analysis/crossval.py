"""Independent cross-validation of schedules and schedulers.

Defense in depth for the correctness story: the schedulers validate
their own output via :meth:`MigrationSchedule.validate`, and this
module re-checks with a deliberately different implementation (numpy
incidence counting instead of per-edge dict walks), then provides a
fuzz harness that runs *all* schedulers on randomized instances and
cross-checks:

* every schedule passes both validators;
* no scheduler beats the certified lower bound (that would expose a
  lower-bound bug, the scariest kind);
* the guaranteed orderings hold (optimal methods ≤ approximations ≤
  their proven caps).

``tests/integration/test_fuzz.py`` runs the harness on every CI pass;
it is also usable standalone for longer soaks::

    python -m repro.analysis.crossval --trials 500
"""

from __future__ import annotations

import argparse
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import ScheduleValidationError
from repro.core.lower_bounds import lb1, lower_bound
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.pipeline.planner import plan
from repro.workloads.generators import random_instance


def independent_validate(
    instance: MigrationInstance, schedule: MigrationSchedule
) -> None:
    """Re-validate a schedule with a matrix formulation.

    Builds the (rounds × nodes) incidence-count matrix with numpy and
    checks coverage and capacity rowwise — sharing no code with the
    dict-based validator in :mod:`repro.core.schedule`.

    Raises:
        ScheduleValidationError: on any violation.
    """
    graph = instance.graph
    nodes = sorted(graph.nodes, key=repr)
    index = {v: i for i, v in enumerate(nodes)}
    caps = np.array([instance.capacity(v) for v in nodes], dtype=np.int64)

    seen: Dict[int, int] = {}
    rounds = schedule.rounds
    loads = np.zeros((max(len(rounds), 1), len(nodes)), dtype=np.int64)
    for r, round_edges in enumerate(rounds):
        for eid in round_edges:
            if eid in seen:
                raise ScheduleValidationError(f"edge {eid} scheduled twice")
            seen[eid] = r
            u, v = graph.endpoints(eid)
            loads[r, index[u]] += 1
            loads[r, index[v]] += 1
    if len(seen) != graph.num_edges:
        raise ScheduleValidationError(
            f"covered {len(seen)} of {graph.num_edges} edges"
        )
    over = loads > caps[np.newaxis, :]
    if over.any():
        r, i = map(int, np.argwhere(over)[0])
        raise ScheduleValidationError(
            f"round {r}: disk {nodes[i]!r} exceeds c_v={caps[i]} ({loads[r, i]})"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    trials: int = 0
    per_method_rounds: Dict[str, List[int]] = field(default_factory=dict)
    worst_ratio: float = 1.0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


DEFAULT_METHODS = ("auto", "general", "saia", "greedy", "homogeneous")


def fuzz_schedulers(
    trials: int = 50,
    methods: Sequence[str] = DEFAULT_METHODS,
    seed: int = 0,
    max_disks: int = 14,
    max_items: int = 120,
) -> FuzzReport:
    """Run all schedulers on randomized instances and cross-check.

    Never raises for scheduler misbehaviour — failures are collected in
    the report so a fuzz run surfaces *all* problems at once.
    """
    rng = random.Random(seed)
    report = FuzzReport(trials=trials)
    for trial in range(trials):
        n = rng.randint(3, max_disks)
        m = rng.randint(1, max_items)
        mix_choices = [
            {1: 1.0},
            {2: 0.5, 4: 0.5},
            {1: 0.4, 3: 0.6},
            {1: 0.2, 2: 0.3, 5: 0.5},
        ]
        inst = random_instance(
            n, m, capacities=rng.choice(mix_choices), seed=rng.randrange(1 << 30)
        )
        lb = lower_bound(inst)
        rounds_by_method: Dict[str, int] = {}
        for method in methods:
            tag = f"trial {trial} method {method}"
            try:
                sched = plan(inst, method=method, seed=trial).schedule
                sched.validate(inst)
                independent_validate(inst, sched)
            except Exception as exc:  # noqa: BLE001 - fuzz collects everything
                report.failures.append(f"{tag}: {type(exc).__name__}: {exc}")
                continue
            rounds_by_method[method] = sched.num_rounds
            report.per_method_rounds.setdefault(method, []).append(sched.num_rounds)
            if lb and sched.num_rounds < lb:
                report.failures.append(
                    f"{tag}: {sched.num_rounds} rounds beats lower bound {lb}"
                )
            if lb:
                report.worst_ratio = max(report.worst_ratio, sched.num_rounds / lb)

        # Cross-method invariants.
        if "general" in rounds_by_method and lb:
            budget = lb + 2 * math.isqrt(lb) + 2
            if rounds_by_method["general"] > budget:
                report.failures.append(
                    f"trial {trial}: general used {rounds_by_method['general']} "
                    f"> theorem budget {budget}"
                )
        if "greedy" in rounds_by_method:
            cap = max(1, 2 * lb1(inst) - 1)
            if rounds_by_method["greedy"] > cap:
                report.failures.append(
                    f"trial {trial}: greedy {rounds_by_method['greedy']} > cap {cap}"
                )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="scheduler fuzz harness")
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    report = fuzz_schedulers(trials=args.trials, seed=args.seed)
    print(f"trials: {report.trials}, worst ratio vs LB: {report.worst_ratio:.3f}")
    for method, rounds in sorted(report.per_method_rounds.items()):
        print(f"  {method:12s} mean rounds {sum(rounds) / len(rounds):7.2f}")
    if report.failures:
        print(f"\n{len(report.failures)} FAILURES:")
        for failure in report.failures[:20]:
            print(" -", failure)
        return 1
    print("all cross-checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
