"""Round balancing: evening out round sizes at fixed makespan.

The schedulers optimize the *number* of rounds; nothing makes the
rounds similar in size, and under bandwidth-splitting execution a
lopsided schedule alternates long, crowded rounds with near-empty
ones.  :func:`equalize_rounds` is a post-pass that migrates edges from
over-full rounds into under-full ones whenever both endpoints have
slack there — makespan and feasibility preserved by construction, the
size variance monotonically non-increasing.

Balanced rounds matter operationally: the per-round interference spike
(see :mod:`repro.cluster.service`) is proportional to the round's
concurrency, so flattening sizes flattens the impact on clients.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.multigraph import EdgeId, Node


def round_size_stats(schedule: MigrationSchedule) -> Dict[str, float]:
    """min / max / stdev of round sizes (0s for empty schedules)."""
    sizes = [len(r) for r in schedule.rounds]
    if not sizes:
        return {"min": 0.0, "max": 0.0, "stdev": 0.0}
    return {
        "min": float(min(sizes)),
        "max": float(max(sizes)),
        "stdev": statistics.pstdev(sizes) if len(sizes) > 1 else 0.0,
    }


def equalize_rounds(
    schedule: MigrationSchedule,
    instance: MigrationInstance,
    passes: int = 4,
) -> MigrationSchedule:
    """Move edges from the largest rounds into the smallest.

    Each pass scans rounds largest-first and, for every edge, looks
    for a strictly smaller round where both endpoints still have
    transfer slots; the first such move is applied.  Terminates after
    ``passes`` sweeps or when a sweep makes no move.
    """
    rounds = [list(r) for r in schedule.rounds]
    if len(rounds) <= 1:
        return MigrationSchedule(rounds, method=f"{schedule.method}+balanced")
    graph = instance.graph

    loads: List[Dict[Node, int]] = []
    for rnd in rounds:
        load: Dict[Node, int] = {}
        for eid in rnd:
            u, v = graph.endpoints(eid)
            load[u] = load.get(u, 0) + 1
            load[v] = load.get(v, 0) + 1
        loads.append(load)

    for _sweep in range(passes):
        moved = False
        order = sorted(range(len(rounds)), key=lambda i: -len(rounds[i]))
        for src_idx in order:
            for eid in list(rounds[src_idx]):
                u, v = graph.endpoints(eid)
                targets = sorted(
                    (i for i in range(len(rounds)) if len(rounds[i]) + 1 < len(rounds[src_idx])),
                    key=lambda i: len(rounds[i]),
                )
                for dst_idx in targets:
                    if (
                        loads[dst_idx].get(u, 0) < instance.capacity(u)
                        and loads[dst_idx].get(v, 0) < instance.capacity(v)
                    ):
                        rounds[src_idx].remove(eid)
                        rounds[dst_idx].append(eid)
                        for node in (u, v):
                            loads[src_idx][node] -= 1
                            loads[dst_idx][node] = loads[dst_idx].get(node, 0) + 1
                        moved = True
                        break
        if not moved:
            break

    balanced = MigrationSchedule(rounds, method=f"{schedule.method}+balanced")
    balanced.validate(instance)
    return balanced
