"""Plain-text tables for the benchmark harness.

The benches print the same rows a paper table would carry; this tiny
renderer keeps them aligned and dependency-free.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


class Table:
    """Column-aligned ASCII table with a title."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self._rows: List[List[str]] = []

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([self._fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", header, sep]
        for row in self._rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, reads naturally
        print()
        print(self.render())

    @property
    def rows(self) -> List[List[str]]:
        return [list(r) for r in self._rows]
