"""Pluggable fault injection for runtime executions.

Three fault families, all deterministic under a seeded RNG:

* **transfer faults** — each attempted transfer independently fails
  with probability ``transfer_failure_rate`` (one RNG draw per
  attempt, in round order, so a seed fully determines the outcome
  sequence);
* **disk crashes** — a disk leaves the fleet once simulated time
  reaches ``at_time``; its stored items become unrecoverable sources
  and pending moves targeting it must be re-aimed (the executor
  replans);
* **network partitions** — during ``[start, end)`` transfers crossing
  between ``group`` and the rest of the fleet fail transiently; the
  transfer itself is healthy and succeeds once retried after the
  partition heals.

The :class:`FaultPlan` is plain data (JSON round-trippable so the CLI
can embed it in checkpoints and refuse to resume under a different
fault configuration); :class:`FaultInjector` is the tiny amount of
behaviour on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.cluster.disk import DiskId


class FaultPlanError(ValueError):
    """A fault plan is malformed (bad shape or impossible values).

    Raised by the dataclass validators and by :meth:`FaultPlan.from_json`,
    so callers deserializing untrusted checkpoints can catch one typed
    error instead of a grab-bag of ``TypeError``/``ValueError``/
    ``KeyError`` from deep inside construction.
    """


@dataclass(frozen=True)
class DiskCrash:
    """Disk ``disk_id`` fails permanently at simulated time ``at_time``."""

    disk_id: DiskId
    at_time: float

    def __post_init__(self) -> None:
        if self.at_time < 0.0:
            raise FaultPlanError(
                f"crash time must be >= 0, got {self.at_time} "
                f"for disk {self.disk_id!r}"
            )


@dataclass(frozen=True)
class NetworkPartition:
    """A transient split: ``group`` vs. everyone else during ``[start, end)``."""

    start: float
    end: float
    group: Tuple[DiskId, ...]

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise FaultPlanError(
                f"partition start must be >= 0, got {self.start}"
            )
        if self.end <= self.start:
            raise FaultPlanError(
                f"partition window is empty: [{self.start}, {self.end})"
            )
        if len(self.group) == 0:
            raise FaultPlanError("partition group must name at least one disk")
        if len(set(self.group)) != len(self.group):
            raise FaultPlanError(
                f"partition group has duplicate disks: {self.group}"
            )

    def severs(self, u: DiskId, v: DiskId, now: float) -> bool:
        """Does this partition block a ``u -> v`` transfer at ``now``?"""
        if not self.start <= now < self.end:
            return False
        members = set(self.group)
        return (u in members) != (v in members)


@dataclass
class FaultPlan:
    """Everything that can go wrong during a run, as plain data."""

    transfer_failure_rate: float = 0.0
    crashes: Tuple[DiskCrash, ...] = ()
    partitions: Tuple[NetworkPartition, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.transfer_failure_rate < 1.0:
            raise FaultPlanError(
                f"transfer_failure_rate must be in [0, 1), "
                f"got {self.transfer_failure_rate}"
            )
        self.crashes = tuple(self.crashes)
        self.partitions = tuple(self.partitions)
        seen: Set[DiskId] = set()
        for crash in self.crashes:
            if crash.disk_id in seen:
                raise FaultPlanError(
                    f"duplicate crash target {crash.disk_id!r}: a disk "
                    f"fails permanently, it cannot crash twice"
                )
            seen.add(crash.disk_id)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "transfer_failure_rate": self.transfer_failure_rate,
            "crashes": [[c.disk_id, c.at_time] for c in self.crashes],
            "partitions": [
                [p.start, p.end, list(p.group)] for p in self.partitions
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Reconstruct a plan, raising :class:`FaultPlanError` on bad input.

        Every shape problem (wrong arity, wrong type) and every value
        problem (negative time, duplicate crash target, empty partition
        window or group) surfaces as ``FaultPlanError`` with a message
        naming the offending entry.
        """
        rate = data.get("transfer_failure_rate", 0.0)
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            raise FaultPlanError(
                f"transfer_failure_rate must be a number, got {rate!r}"
            )

        crashes = []
        for i, entry in enumerate(data.get("crashes", [])):
            try:
                disk_id, at_time = entry
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(
                    f"crashes[{i}] must be a [disk_id, at_time] pair, "
                    f"got {entry!r}"
                ) from exc
            if not isinstance(disk_id, str):
                raise FaultPlanError(
                    f"crashes[{i}] disk id must be a string, got {disk_id!r}"
                )
            if not isinstance(at_time, (int, float)) or isinstance(at_time, bool):
                raise FaultPlanError(
                    f"crashes[{i}] time must be a number, got {at_time!r}"
                )
            crashes.append(DiskCrash(disk_id=disk_id, at_time=float(at_time)))

        partitions = []
        for i, entry in enumerate(data.get("partitions", [])):
            try:
                start, end, group = entry
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(
                    f"partitions[{i}] must be a [start, end, group] "
                    f"triple, got {entry!r}"
                ) from exc
            if isinstance(group, str) or not isinstance(group, (list, tuple)):
                raise FaultPlanError(
                    f"partitions[{i}] group must be a list of disk ids, "
                    f"got {group!r}"
                )
            for num in (start, end):
                if not isinstance(num, (int, float)) or isinstance(num, bool):
                    raise FaultPlanError(
                        f"partitions[{i}] bounds must be numbers, "
                        f"got {entry!r}"
                    )
            partitions.append(
                NetworkPartition(
                    start=float(start), end=float(end), group=tuple(group)
                )
            )

        return cls(
            transfer_failure_rate=rate,
            crashes=tuple(crashes),
            partitions=tuple(partitions),
        )


class FaultInjector:
    """Evaluates a :class:`FaultPlan` during execution.

    The injector is stateless; the executor owns the RNG (so its state
    can be checkpointed) and the already-triggered crash set.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def transfer_fails(self, rng, now: float) -> bool:
        """One seeded draw per attempted transfer; order defines the run."""
        if self.plan.transfer_failure_rate <= 0.0:
            return False
        return rng.random() < self.plan.transfer_failure_rate

    def severed(self, u: DiskId, v: DiskId, now: float) -> bool:
        return any(p.severs(u, v, now) for p in self.plan.partitions)

    def due_crashes(self, now: float, triggered: Set[DiskId]) -> List[DiskCrash]:
        """Crashes whose time has come, in plan order, not yet fired."""
        return [
            c
            for c in self.plan.crashes
            if c.at_time <= now and c.disk_id not in triggered
        ]
