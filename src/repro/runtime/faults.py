"""Pluggable fault injection for runtime executions.

Three fault families, all deterministic under a seeded RNG:

* **transfer faults** — each attempted transfer independently fails
  with probability ``transfer_failure_rate`` (one RNG draw per
  attempt, in round order, so a seed fully determines the outcome
  sequence);
* **disk crashes** — a disk leaves the fleet once simulated time
  reaches ``at_time``; its stored items become unrecoverable sources
  and pending moves targeting it must be re-aimed (the executor
  replans);
* **network partitions** — during ``[start, end)`` transfers crossing
  between ``group`` and the rest of the fleet fail transiently; the
  transfer itself is healthy and succeeds once retried after the
  partition heals.

The :class:`FaultPlan` is plain data (JSON round-trippable so the CLI
can embed it in checkpoints and refuse to resume under a different
fault configuration); :class:`FaultInjector` is the tiny amount of
behaviour on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.cluster.disk import DiskId


@dataclass(frozen=True)
class DiskCrash:
    """Disk ``disk_id`` fails permanently at simulated time ``at_time``."""

    disk_id: DiskId
    at_time: float


@dataclass(frozen=True)
class NetworkPartition:
    """A transient split: ``group`` vs. everyone else during ``[start, end)``."""

    start: float
    end: float
    group: Tuple[DiskId, ...]

    def severs(self, u: DiskId, v: DiskId, now: float) -> bool:
        """Does this partition block a ``u -> v`` transfer at ``now``?"""
        if not self.start <= now < self.end:
            return False
        members = set(self.group)
        return (u in members) != (v in members)


@dataclass
class FaultPlan:
    """Everything that can go wrong during a run, as plain data."""

    transfer_failure_rate: float = 0.0
    crashes: Tuple[DiskCrash, ...] = ()
    partitions: Tuple[NetworkPartition, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.transfer_failure_rate < 1.0:
            raise ValueError(
                f"transfer_failure_rate must be in [0, 1), "
                f"got {self.transfer_failure_rate}"
            )
        self.crashes = tuple(self.crashes)
        self.partitions = tuple(self.partitions)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "transfer_failure_rate": self.transfer_failure_rate,
            "crashes": [[c.disk_id, c.at_time] for c in self.crashes],
            "partitions": [
                [p.start, p.end, list(p.group)] for p in self.partitions
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            transfer_failure_rate=data.get("transfer_failure_rate", 0.0),
            crashes=tuple(
                DiskCrash(disk_id=d, at_time=t) for d, t in data.get("crashes", [])
            ),
            partitions=tuple(
                NetworkPartition(start=s, end=e, group=tuple(g))
                for s, e, g in data.get("partitions", [])
            ),
        )


class FaultInjector:
    """Evaluates a :class:`FaultPlan` during execution.

    The injector is stateless; the executor owns the RNG (so its state
    can be checkpointed) and the already-triggered crash set.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def transfer_fails(self, rng, now: float) -> bool:
        """One seeded draw per attempted transfer; order defines the run."""
        if self.plan.transfer_failure_rate <= 0.0:
            return False
        return rng.random() < self.plan.transfer_failure_rate

    def severed(self, u: DiskId, v: DiskId, now: float) -> bool:
        return any(p.severs(u, v, now) for p in self.plan.partitions)

    def due_crashes(self, now: float, triggered: Set[DiskId]) -> List[DiskCrash]:
        """Crashes whose time has come, in plan order, not yet fired."""
        return [
            c
            for c in self.plan.crashes
            if c.at_time <= now and c.disk_id not in triggered
        ]
