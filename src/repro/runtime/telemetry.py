"""Runtime telemetry: counters, per-round timings, JSONL traces.

The executor reports what happened through three channels:

* the :class:`~repro.cluster.events.EventLog` (typed events, reused so
  Gantt rendering and existing metrics work unchanged);
* a :class:`RuntimeTelemetry` aggregate — named counters plus one
  record per executed round — that is part of the checkpoint, so
  resumed runs keep accumulating the same totals;
* an optional :class:`JsonlTraceWriter` — one JSON object per line,
  keys sorted, suitable for offline analysis via
  :func:`repro.analysis.metrics.summarize_runtime_trace`.

Telemetry is deliberately dumb: it never influences execution, so a
run with tracing disabled is bit-for-bit identical to one with it on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry


class RuntimeTelemetry:
    """Named counters and per-round timing records.

    A thin adapter over :class:`repro.obs.metrics.MetricsRegistry`
    that adds the per-round record list and checkpoint round-tripping.
    Counter names are the module-level constants of
    :mod:`repro.obs.names` (``TRANSFERS_ATTEMPTED``,
    ``FAILURES_FAULT``, ``RETRIES``, ``REPLANS``, ...) — the executor,
    the metrics summarizers and the CLI all import the same constants,
    so a typo cannot silently zero a counter.
    """

    def __init__(self) -> None:
        self._metrics = MetricsRegistry()
        self._rounds: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self._metrics.counter(name).inc(n)

    @property
    def metrics(self) -> MetricsRegistry:
        """The underlying typed registry (for Prometheus export etc.)."""
        return self._metrics

    def record_round(
        self,
        round_index: int,
        start: float,
        duration: float,
        attempted: int,
        succeeded: int,
        failed: int,
    ) -> None:
        self._rounds.append(
            {
                "round": round_index,
                "start": start,
                "duration": duration,
                "attempted": attempted,
                "succeeded": succeeded,
                "failed": failed,
            }
        )

    # ------------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, int]:
        """Counters in name order (deterministic)."""
        return self._metrics.counters

    @property
    def rounds(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._rounds]

    def totals(self) -> Dict[str, Any]:
        """The comparison-stable summary of a run.

        Two runs of the same seeded configuration — interrupted/resumed
        or not — must produce equal ``totals()``.
        """
        return {
            "counters": self.counters,
            "rounds_executed": len(self._rounds),
            "total_duration": sum(r["duration"] for r in self._rounds),
        }

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        return {"counters": self.counters, "rounds": self.rounds}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "RuntimeTelemetry":
        telemetry = cls()
        for name, value in state.get("counters", {}).items():
            telemetry.count(name, int(value))
        telemetry._rounds = [dict(r) for r in state.get("rounds", [])]
        return telemetry


class JsonlTraceWriter:
    """Structured trace: one sorted-key JSON object per line.

    Every record carries at least ``type`` and ``t`` (simulated time).
    The writer appends when resuming from a checkpoint so the combined
    file covers the whole logical run.
    """

    def __init__(self, path: str, append: bool = False):
        self.path = str(path)
        self._handle = open(self.path, "a" if append else "w")

    def emit(self, record: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(dict(record), sort_keys=True, default=str))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of records."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
