"""Checkpointing: JSON snapshot/restore of executor state.

A checkpoint captures everything a killed run needs to resume exactly
— round index, the remaining work queue, completed moves (as the full
layout), retry/defer counters, triggered crashes, telemetry totals and
the RNG state — plus an opaque ``config`` block the caller uses to
refuse resuming under a different run configuration (the CLI stores
scenario, seed, method and the fault plan there).

Files are schema-versioned and written atomically (temp file + rename)
so a crash *during checkpointing* leaves the previous checkpoint
intact.

The determinism contract (see :mod:`repro.runtime.executor`) makes
this strong: a seeded run killed at any round boundary and resumed
from its checkpoint produces the same final layout and telemetry
totals as the same run executed uninterrupted.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cluster.system import StorageCluster
from repro.runtime.executor import MigrationExecutor

SCHEMA_VERSION = 1


class CheckpointError(Exception):
    """A checkpoint file is missing, malformed, or incompatible."""


def save_checkpoint(
    path: str,
    executor: MigrationExecutor,
    config: Optional[Mapping[str, Any]] = None,
) -> None:
    """Atomically write ``executor``'s state (plus ``config``) to ``path``."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "config": dict(config or {}),
        "state": executor.get_state(),
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".checkpoint-", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Read and validate a checkpoint; returns ``(config, state)``."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError as exc:
        raise CheckpointError(f"no checkpoint at {path}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or "schema_version" not in payload:
        raise CheckpointError(f"{path} is not a runtime checkpoint")
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise CheckpointError(
            f"{path} uses checkpoint schema {version}; "
            f"this build reads schema {SCHEMA_VERSION}"
        )
    if "state" not in payload:
        raise CheckpointError(f"{path} has no state block")
    return payload.get("config", {}), payload["state"]


def restore_executor(
    cluster: StorageCluster,
    state: Mapping[str, Any],
    **kwargs: Any,
) -> MigrationExecutor:
    """Rebuild an executor from a loaded checkpoint state.

    ``cluster`` must be reconstructed the same way as the interrupted
    run built it (same scenario and seed); remaining keyword arguments
    are forwarded to :meth:`MigrationExecutor.from_state` (faults,
    policy, time model, trace, ...) and must also match the original
    run for the determinism guarantee to hold — which is why callers
    should persist them in the ``config`` block and compare before
    resuming.
    """
    try:
        return MigrationExecutor.from_state(cluster, state, **kwargs)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"cannot restore executor state: {exc}") from exc
