"""repro.runtime — checkpointed, failure-tolerant migration execution.

The planner (:mod:`repro.core`) answers *what to move when*; the
simulator engine (:mod:`repro.cluster.engine`) replays that answer in
one synchronous sweep.  This package is the layer the paper's setting
actually demands — migrations run while the storage system is degraded
— so it *supervises* the plan over time:

* :class:`MigrationExecutor` drives rounds transfer-by-transfer with
  explicit per-transfer states, through the existing rate models;
* :class:`FaultPlan` injects transfer faults, disk crashes and
  transient network partitions, deterministically under a seed;
* :class:`RetryPolicy` climbs the retry → defer → replan ladder,
  replanning via the canonical :func:`repro.plan` pipeline on the
  residual transfer graph;
* :mod:`~repro.runtime.checkpoint` snapshots the whole run to JSON so
  a killed run resumes exactly;
* :class:`RuntimeTelemetry` and the JSONL trace feed
  :mod:`repro.analysis.metrics` (and the shared
  :class:`~repro.cluster.events.EventLog` keeps Gantt/metrics tooling
  working unchanged).

Quickstart::

    from repro import plan
    from repro.runtime import FaultPlan, MigrationExecutor
    from repro.workloads.scenarios import decommission_scenario

    scenario = decommission_scenario(seed=1)
    schedule = plan(scenario.instance).schedule
    executor = MigrationExecutor(
        scenario.cluster, scenario.context, schedule,
        faults=FaultPlan(transfer_failure_rate=0.1), seed=1,
    )
    report = executor.run()
    assert report.finished

The CLI front-end is ``repro-migrate run`` (resumable via
``--checkpoint``).
"""

from repro.runtime.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    load_checkpoint,
    restore_executor,
    save_checkpoint,
)
from repro.runtime.executor import (
    DONE,
    FAILED,
    IN_FLIGHT,
    PENDING,
    TRANSFER_STATES,
    MigrationExecutor,
    RunReport,
)
from repro.runtime.faults import (
    DiskCrash,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    NetworkPartition,
)
from repro.runtime.policy import EscalationAction, RetryPolicy
from repro.runtime.telemetry import JsonlTraceWriter, RuntimeTelemetry, read_trace

__all__ = [
    "MigrationExecutor",
    "RunReport",
    "FaultPlan",
    "FaultPlanError",
    "FaultInjector",
    "DiskCrash",
    "NetworkPartition",
    "RetryPolicy",
    "EscalationAction",
    "RuntimeTelemetry",
    "JsonlTraceWriter",
    "read_trace",
    "save_checkpoint",
    "load_checkpoint",
    "restore_executor",
    "CheckpointError",
    "SCHEMA_VERSION",
    "PENDING",
    "IN_FLIGHT",
    "DONE",
    "FAILED",
    "TRANSFER_STATES",
]
