"""Failure-handling policy: the retry → defer → replan ladder.

When a transfer attempt fails, the executor asks the policy what to do
next, based on how often this item has already failed:

1. **retry** — up to ``max_retries`` consecutive failures are retried
   with exponential backoff (measured in *rounds*, with seeded jitter
   so retry storms decorrelate deterministically);
2. **defer** — once retries are exhausted the transfer is pushed to
   the end of the schedule (``max_defers`` times, each with a fresh
   retry budget), giving transient conditions — e.g. a network
   partition — time to clear;
3. **replan** — a transfer that survives neither retries nor deferrals
   escalates: the executor rebuilds the residual transfer graph and
   asks the canonical :func:`repro.plan` pipeline for a new schedule.

A per-attempt ``transfer_timeout`` (simulated time) turns pathological
slow transfers into failures that climb the same ladder.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional


class EscalationAction(enum.Enum):
    """What to do with a transfer that just failed."""

    RETRY = "retry"
    DEFER = "defer"
    REPLAN = "replan"


@dataclass
class RetryPolicy:
    """Tunable knobs of the escalation ladder.

    Attributes:
        max_retries: consecutive failed attempts before the transfer
            is deferred instead of retried.
        max_defers: deferrals before the transfer escalates to a
            replan.  Each deferral resets the retry budget.
        backoff_base: backoff after the first failure, in rounds.
        backoff_factor: multiplicative growth per consecutive failure.
        backoff_cap: upper bound on the deterministic part, in rounds.
        jitter: adds ``uniform(0, jitter)`` rounds from the executor's
            seeded RNG; 0 disables.
        transfer_timeout: per-attempt simulated-time budget; an
            attempt whose modelled duration exceeds it counts as a
            failure with reason ``"timeout"``.  ``None`` disables.
    """

    max_retries: int = 3
    max_defers: int = 1
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0
    jitter: float = 0.5
    transfer_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.max_defers < 0:
            raise ValueError("max_retries and max_defers must be >= 0")
        if self.backoff_base <= 0 or self.backoff_factor < 1 or self.backoff_cap <= 0:
            raise ValueError("backoff parameters must be positive (factor >= 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.transfer_timeout is not None and self.transfer_timeout <= 0:
            raise ValueError("transfer_timeout must be positive or None")

    # ------------------------------------------------------------------
    def decide(self, attempts: int, defers: int) -> EscalationAction:
        """Next rung of the ladder after the ``attempts``-th failure.

        ``attempts`` counts consecutive failures since the last
        deferral (the executor resets it on defer); ``defers`` counts
        deferrals over the transfer's whole life.
        """
        if attempts <= self.max_retries:
            return EscalationAction.RETRY
        if defers < self.max_defers:
            return EscalationAction.DEFER
        return EscalationAction.REPLAN

    def backoff_rounds(self, attempts: int, rng) -> int:
        """How many rounds to wait before retry number ``attempts``."""
        raw = min(
            self.backoff_base * self.backoff_factor ** max(attempts - 1, 0),
            self.backoff_cap,
        )
        if self.jitter > 0:
            raw += rng.uniform(0.0, self.jitter)
        return max(1, math.ceil(raw))
