"""The migration orchestrator: supervised, resumable execution.

:class:`MigrationExecutor` turns a planned :class:`MigrationSchedule`
into a run that survives faults.  Where
:class:`~repro.cluster.engine.MigrationEngine` replays a schedule in
one synchronous sweep, the executor drives a *work queue* of rounds
transfer-by-transfer through the existing rate models, with explicit
per-transfer states (``pending → in-flight → done/failed``), so that:

* individual transfer failures climb the policy ladder
  (retry with backoff → defer → replan, see :mod:`repro.runtime.policy`);
* disk crashes at a simulated time strand unrecoverable items and
  trigger a replan via :func:`repro.pipeline.plan` on the residual
  transfer graph — with an optional plan cache, only the components
  the crash actually touched are re-solved;
* execution can stop after any round (``run(max_rounds=...)``) and the
  full state — queue, retry counters, RNG, telemetry — snapshots to
  JSON (:mod:`repro.runtime.checkpoint`) and resumes bit-for-bit.

Determinism contract: the same (cluster construction, schedule,
faults, policy, seed) always yields the same final layout, event
sequence and telemetry totals, interrupted or not.  All randomness
flows through one ``random.Random`` owned by the executor; all
iteration follows queue order, which is itself derived
deterministically from the planner's output.

Internally the executor addresses work by *item id*, not edge id:
replans rebuild the transfer graph (and its edge ids) but items
persist, as do their retry counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.cluster.disk import DiskId
from repro.cluster.engine import MigrationEngine
from repro.cluster.events import (
    DiskRemoved,
    EventLog,
    ItemMigrated,
    MigrationReplanned,
    RoundCompleted,
    RoundStarted,
)
from repro.cluster.item import ItemId
from repro.cluster.system import MigrationPlanContext, StorageCluster
from repro.core.schedule import MigrationSchedule
from repro.obs import names
from repro.obs.trace import Tracer, ensure_tracer
from repro.pipeline.cache import PlanCache
from repro.pipeline.planner import plan
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.policy import EscalationAction, RetryPolicy
from repro.runtime.telemetry import JsonlTraceWriter, RuntimeTelemetry

#: Per-transfer lifecycle states.
PENDING = "pending"
IN_FLIGHT = "in_flight"
DONE = "done"
FAILED = "failed"

TRANSFER_STATES = (PENDING, IN_FLIGHT, DONE, FAILED)


@dataclass
class RunReport:
    """Outcome of (part of) a supervised run.

    ``finished`` means the work queue drained: every move was either
    delivered or stranded.  A run paused by ``max_rounds`` is not
    finished; calling :meth:`MigrationExecutor.run` again continues it.
    """

    delivered: List[ItemId] = field(default_factory=list)
    stranded: List[ItemId] = field(default_factory=list)
    total_time: float = 0.0
    rounds_executed: int = 0
    replans: int = 0
    finished: bool = False
    log: EventLog = field(default_factory=EventLog)
    telemetry: RuntimeTelemetry = field(default_factory=RuntimeTelemetry)

    @property
    def fully_delivered(self) -> bool:
        return self.finished and not self.stranded


class MigrationExecutor:
    """Drives a migration schedule to completion under faults.

    Args:
        cluster: the cluster to mutate (as with the engine, the
            executor owns no hidden copies).
        context: the plan context the schedule was computed for.
        schedule: a validated schedule for ``context.instance``.
        faults: what goes wrong (default: nothing).
        policy: the retry/defer/replan ladder (default knobs).
        time_model: ``"unit"`` or ``"bandwidth_split"`` (as in the
            engine).
        rate_model: overrides ``time_model`` with any
            :class:`~repro.cluster.network.RateModel`.
        method: planner method used for replans (``repro.plan``'s
            ``method=``).
        seed: seeds the executor RNG (fault draws + backoff jitter).
        trace: optional :class:`JsonlTraceWriter`.
        cache: optional :class:`~repro.pipeline.cache.PlanCache`
            shared with the planning pipeline.  When a crash touches
            one connected component of the residual transfer graph,
            replanning re-solves only that component and serves the
            rest from cache (see the ``replan_components_*`` telemetry
            counters).  Plans are byte-identical with or without the
            cache, so the checkpoint/resume determinism contract is
            unaffected.
        tracer: optional :class:`repro.obs.Tracer`.  Each executed
            round and each replan becomes a span; telemetry counters
            are mirrored into the tracer's metrics registry.  The
            default no-op tracer costs nothing and changes nothing.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        context: MigrationPlanContext,
        schedule: MigrationSchedule,
        *,
        faults: Optional[FaultPlan] = None,
        policy: Optional[RetryPolicy] = None,
        time_model: str = "bandwidth_split",
        rate_model=None,
        method: str = "auto",
        seed: int = 0,
        trace: Optional[JsonlTraceWriter] = None,
        cache: Optional[PlanCache] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.cluster = cluster
        self.faults = FaultInjector(faults if faults is not None else FaultPlan())
        self.policy = policy if policy is not None else RetryPolicy()
        self.method = method
        self.seed = seed
        self.plan_cache = cache
        self.tracer = ensure_tracer(tracer)
        self._engine = MigrationEngine(cluster, time_model=time_model, rate_model=rate_model)
        self.time_model = time_model
        self._rng = random.Random(seed)
        self.telemetry = RuntimeTelemetry()
        self.log = EventLog()
        self._trace = trace

        self._now: float = 0.0
        self._round_index: int = 0
        self._replans: int = 0
        self._delivered: List[ItemId] = []
        self._stranded: List[ItemId] = []
        self._attempts: Dict[ItemId, int] = {}
        self._defers: Dict[ItemId, int] = {}
        self._escalated: Set[ItemId] = set()
        self._crashed: Set[DiskId] = set()

        if context is not None and schedule is not None:
            schedule.validate(context.instance)
            self._install_plan(context)
            self._targets: Dict[ItemId, DiskId] = {}
            graph = context.instance.graph
            for eid, item_id in context.edge_items.items():
                _src, dst = graph.endpoints(eid)
                self._targets[item_id] = dst
            self._queue: List[List[ItemId]] = [
                [context.edge_items[eid] for eid in rnd] for rnd in schedule.rounds
            ]
            self._states: Dict[ItemId, str] = {
                item: PENDING for rnd in self._queue for item in rnd
            }
            self._emit(
                type="run_started",
                t=self._now,
                moves=context.num_moves,
                rounds=len(self._queue),
                method=schedule.method,
                seed=seed,
            )

    # ------------------------------------------------------------------
    # plan installation (init / replan / resume share this)
    # ------------------------------------------------------------------
    def _install_plan(self, context: MigrationPlanContext) -> None:
        self._context = context
        self._edge_of: Dict[ItemId, int] = {
            item: eid for eid, item in context.edge_items.items()
        }

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def rounds_executed(self) -> int:
        return self._round_index

    @property
    def pending_items(self) -> List[ItemId]:
        """Items not yet delivered or stranded, in queue order."""
        return [
            item
            for rnd in self._queue
            for item in rnd
            if self._states.get(item) == PENDING
        ]

    @property
    def finished(self) -> bool:
        return not self.pending_items

    def run(self, max_rounds: Optional[int] = None) -> RunReport:
        """Execute until the queue drains or ``max_rounds`` pass.

        Empty rounds (everything in them already resolved) are skipped
        without consuming the budget or advancing the clock.
        """
        executed = 0
        while True:
            self._trigger_due_crashes()
            while self._queue and not any(
                self._states.get(i) == PENDING for i in self._queue[0]
            ):
                self._queue.pop(0)
            if not self._queue:
                break
            if max_rounds is not None and executed >= max_rounds:
                break
            self._execute_round()
            executed += 1
        report = self._report()
        if report.finished:
            self.tracer.gauge(names.RUNTIME_FINISHED, 1.0)
            self._emit(
                type="run_completed",
                t=self._now,
                delivered=len(self._delivered),
                stranded=len(self._stranded),
                replans=self._replans,
            )
        return report

    def _count(self, name: str, n: int = 1) -> None:
        """Bump a checkpointed telemetry counter and mirror it into the
        tracer's metrics registry (a no-op for the default tracer)."""
        self.telemetry.count(name, n)
        self.tracer.count(name, n)

    # ------------------------------------------------------------------
    # crash handling
    # ------------------------------------------------------------------
    def _trigger_due_crashes(self) -> None:
        for crash in self.faults.due_crashes(self._now, self._crashed):
            self._crashed.add(crash.disk_id)
            if crash.disk_id in self.cluster.disks:
                self.cluster.remove_disk(crash.disk_id)
            self.log.record(DiskRemoved(time=self._now, disk_id=crash.disk_id))
            self._count(names.DISK_CRASHES)
            self._emit(type="disk_crashed", t=self._now, disk=crash.disk_id)
            needs_replan = False
            for item in self.pending_items:
                src = self.cluster.layout.disk_of(item)
                if src == crash.disk_id:
                    self._strand(item, reason=f"source disk {crash.disk_id!r} crashed")
                elif self._targets[item] == crash.disk_id:
                    needs_replan = True
            if needs_replan:
                self._replan(reason=f"disk {crash.disk_id!r} crashed")

    def _strand(self, item: ItemId, reason: str) -> None:
        self._states[item] = FAILED
        self._stranded.append(item)
        self._count(names.ITEMS_STRANDED)
        self._emit(type="stranded", t=self._now, item=item, reason=reason)

    # ------------------------------------------------------------------
    # replanning
    # ------------------------------------------------------------------
    def _replan(self, reason: str) -> None:
        """Rebuild plan + schedule for every still-pending move.

        Moves whose target died are re-aimed round-robin over the
        surviving fleet (skipping the item's current disk when
        possible); an item re-aimed at its own disk is delivered in
        place.  Retry counters survive the replan — they belong to the
        item, not the plan.
        """
        with self.tracer.span(names.SPAN_REPLAN, reason=reason) as span:
            pending = self.pending_items
            survivors = sorted(self.cluster.disks, key=repr)
            if not survivors:
                for item in pending:
                    self._strand(item, reason="no surviving disks")
                self._queue = []
                span.set(remaining=0, rounds=0)
                return
            cursor = 0
            new_target = self.cluster.layout.copy()
            for item in pending:
                dst = self._targets[item]
                src = self.cluster.layout.disk_of(item)
                if dst not in self.cluster.disks:
                    dst = survivors[cursor % len(survivors)]
                    cursor += 1
                    if dst == src and len(survivors) > 1:
                        dst = survivors[cursor % len(survivors)]
                        cursor += 1
                    self._targets[item] = dst
                if dst == src:
                    # Re-aimed at where it already sits: nothing to move.
                    self._states[item] = DONE
                    self._delivered.append(item)
                    self._count(names.ITEMS_RETARGETED_IN_PLACE)
                    self._emit(type="delivered_in_place", t=self._now, item=item)
                    continue
                new_target.place(item, dst)
            context = self.cluster.migration_to(new_target)
            result = plan(
                context.instance,
                method=self.method,
                seed=self.seed,
                cache=self.plan_cache,
                tracer=self.tracer,
            )
            schedule = result.schedule
            self._count(names.REPLAN_COMPONENTS_SOLVED, result.components_solved)
            self._count(names.REPLAN_COMPONENTS_CACHED, result.components_cached)
            self._install_plan(context)
            self._queue = [
                [context.edge_items[eid] for eid in rnd] for rnd in schedule.rounds
            ]
            self._replans += 1
            self._count(names.REPLANS)
            span.set(remaining=context.num_moves, rounds=len(self._queue))
            self.log.record(
                MigrationReplanned(
                    time=self._now, reason=reason, remaining_items=context.num_moves
                )
            )
            self._emit(
                type="replanned",
                t=self._now,
                reason=reason,
                remaining=context.num_moves,
                rounds=len(self._queue),
            )

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def _execute_round(self) -> None:
        round_items = [
            i for i in self._queue.pop(0) if self._states.get(i) == PENDING
        ]
        index = self._round_index
        start = self._now
        with self.tracer.span(names.SPAN_ROUND, round=index) as span:
            self._execute_round_body(round_items, index, start, span)

    def _execute_round_body(
        self, round_items: List[ItemId], index: int, start: float, span: Any
    ) -> None:
        self.log.record(
            RoundStarted(time=start, round_index=index, num_transfers=len(round_items))
        )
        self._emit(
            type="round_started", t=start, round=index, transfers=len(round_items)
        )

        # Attempt every transfer: decide outcome, then durations.
        outcomes: List[Tuple[ItemId, DiskId, DiskId, int, Optional[str]]] = []
        for item in round_items:
            self._states[item] = IN_FLIGHT
            src = self.cluster.layout.disk_of(item)
            dst = self._targets[item]
            eid = self._edge_of[item]
            reason: Optional[str] = None
            if self.faults.severed(src, dst, start):
                reason = "partition"
            elif self.faults.transfer_fails(self._rng, start):
                reason = "fault"
            elif self.policy.transfer_timeout is not None:
                solo = self._engine.round_duration(self._context, [eid])
                if solo > self.policy.transfer_timeout:
                    reason = "timeout"
            outcomes.append((item, src, dst, eid, reason))

        # A failed transfer still ran (and occupied bandwidth) until the
        # round's end, so the round lasts as long as its slowest attempt
        # — except timed-out attempts, which abort at the timeout.
        base_edges = [eid for (_i, _s, _d, eid, r) in outcomes if r != "timeout"]
        duration = self._engine.round_duration(self._context, base_edges)
        if any(r == "timeout" for (_i, _s, _d, _e, r) in outcomes):
            duration = max(duration, float(self.policy.transfer_timeout))
        self._now = start + duration

        succeeded = failed = 0
        escalate: Optional[ItemId] = None
        for item, src, dst, _eid, reason in outcomes:
            self._count(names.TRANSFERS_ATTEMPTED)
            if reason is None:
                self.cluster.apply_move(item, dst)
                self._states[item] = DONE
                self._delivered.append(item)
                succeeded += 1
                self._count(names.TRANSFERS_SUCCEEDED)
                self.log.record(
                    ItemMigrated(
                        time=self._now,
                        item_id=item,
                        source=src,
                        target=dst,
                        duration=duration,
                    )
                )
                self._emit(
                    type="transfer",
                    t=self._now,
                    item=item,
                    src=src,
                    dst=dst,
                    round=index,
                    outcome="done",
                )
                continue
            failed += 1
            self._count(names.TRANSFERS_FAILED)
            self._count(names.failure_counter(reason))
            self._states[item] = PENDING
            self._attempts[item] = self._attempts.get(item, 0) + 1
            action = self.policy.decide(
                self._attempts[item], self._defers.get(item, 0)
            )
            if action is EscalationAction.RETRY:
                wait = self.policy.backoff_rounds(self._attempts[item], self._rng)
                self._inject(item, wait - 1)
                self._count(names.RETRIES)
            elif action is EscalationAction.DEFER:
                self._defers[item] = self._defers.get(item, 0) + 1
                self._attempts[item] = 0
                self._inject(item, len(self._queue))
                self._count(names.DEFERS)
            elif item in self._escalated:
                # Second trip up the whole ladder: the failure is not
                # transient and replanning won't change it.  Strand.
                self._strand(item, reason="exhausted retries, defers and replan")
                action = None
            else:
                # Keep the item pending (the replan below reschedules
                # it) with a fresh retry budget for the new plan.
                self._escalated.add(item)
                self._attempts[item] = 0
                self._inject(item, 0)
                escalate = item
                self._count(names.ESCALATIONS)
            self._emit(
                type="transfer",
                t=self._now,
                item=item,
                src=src,
                dst=dst,
                round=index,
                outcome="failed",
                reason=reason,
                action=action.value if action is not None else "strand",
            )

        self.telemetry.record_round(
            index, start, duration, len(outcomes), succeeded, failed
        )
        span.set(
            attempted=len(outcomes),
            succeeded=succeeded,
            failed=failed,
            sim_start=start,
            sim_duration=duration,
        )
        self.log.record(RoundCompleted(time=self._now, round_index=index, duration=duration))
        self._emit(
            type="round_completed",
            t=self._now,
            round=index,
            duration=duration,
            succeeded=succeeded,
            failed=failed,
        )
        self._round_index += 1
        if escalate is not None:
            self._replan(reason=f"transfer of {escalate!r} exhausted retries and defers")

    def _inject(self, item: ItemId, not_before: int) -> None:
        """Put a pending item back into the queue.

        Scans from round ``not_before`` for the first round where both
        endpoints stay within their ``c_v`` — the same feasibility
        invariant the planner guarantees — and appends a new round if
        none fits.
        """
        src = self.cluster.layout.disk_of(item)
        dst = self._targets[item]
        while len(self._queue) < not_before:
            self._queue.append([])
        for i in range(not_before, len(self._queue)):
            if self._fits(self._queue[i], src, dst):
                self._queue[i].append(item)
                return
        self._queue.append([item])

    def _fits(self, round_items: List[ItemId], src: DiskId, dst: DiskId) -> bool:
        loads: Dict[DiskId, int] = {}
        for other in round_items:
            if self._states.get(other) != PENDING:
                continue
            for disk in (self.cluster.layout.disk_of(other), self._targets[other]):
                loads[disk] = loads.get(disk, 0) + 1
        for disk in (src, dst):
            limit = self.cluster.disk(disk).transfer_limit
            if loads.get(disk, 0) + (2 if src == dst else 1) > limit:
                return False
        return True

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(self) -> RunReport:
        return RunReport(
            delivered=list(self._delivered),
            stranded=list(self._stranded),
            total_time=self._now,
            rounds_executed=self._round_index,
            replans=self._replans,
            finished=self.finished,
            log=self.log,
            telemetry=self.telemetry,
        )

    def _emit(self, **record: Any) -> None:
        if self._trace is not None:
            self._trace.emit(record)

    # ------------------------------------------------------------------
    # checkpoint support (serialization lives in repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """JSON-ready snapshot of everything needed to resume.

        Identifiers (items, disks) must be JSON-serializable scalars;
        the stock scenarios and workloads use strings throughout.
        """
        rng_version, rng_internal, rng_gauss = self._rng.getstate()
        return {
            "now": self._now,
            "round_index": self._round_index,
            "replans": self._replans,
            "rng_state": [rng_version, list(rng_internal), rng_gauss],
            "delivered": list(self._delivered),
            "stranded": list(self._stranded),
            "attempts": sorted(
                ([item, n] for item, n in self._attempts.items() if n),
                key=lambda kv: repr(kv[0]),
            ),
            "defers": sorted(
                ([item, n] for item, n in self._defers.items() if n),
                key=lambda kv: repr(kv[0]),
            ),
            "escalated": sorted(self._escalated, key=repr),
            "crashed_disks": sorted(self._crashed, key=repr),
            "queue": [list(rnd) for rnd in self._queue],
            "targets": [
                [item, self._targets[item]] for item in self.pending_items
            ],
            "layout": [
                [item, self.cluster.layout.disk_of(item)]
                for item in self.cluster.layout.items
            ],
            "telemetry": self.telemetry.get_state(),
        }

    @classmethod
    def from_state(
        cls,
        cluster: StorageCluster,
        state: Mapping[str, Any],
        *,
        faults: Optional[FaultPlan] = None,
        policy: Optional[RetryPolicy] = None,
        time_model: str = "bandwidth_split",
        rate_model=None,
        method: str = "auto",
        seed: int = 0,
        trace: Optional[JsonlTraceWriter] = None,
        cache: Optional[PlanCache] = None,
        tracer: Optional[Tracer] = None,
    ) -> "MigrationExecutor":
        """Rebuild an executor from :meth:`get_state` output.

        ``cluster`` must be the *original* cluster, reconstructed the
        same way as for the interrupted run (e.g. the same scenario and
        seed); the snapshot replays crashes and the layout onto it.
        The plan cache and tracer are transient (never checkpointed):
        resuming without them only costs re-solves and observability,
        never changes plans.
        """
        ex = cls(
            cluster,
            None,  # type: ignore[arg-type] - resume path installs its own plan
            None,  # type: ignore[arg-type]
            faults=faults,
            policy=policy,
            time_model=time_model,
            rate_model=rate_model,
            method=method,
            seed=seed,
            trace=trace,
            cache=cache,
            tracer=tracer,
        )
        ex._now = float(state["now"])
        ex._round_index = int(state["round_index"])
        ex._replans = int(state["replans"])
        rng_version, rng_internal, rng_gauss = state["rng_state"]
        ex._rng.setstate((rng_version, tuple(rng_internal), rng_gauss))
        ex._delivered = list(state["delivered"])
        ex._stranded = list(state["stranded"])
        ex._attempts = {item: n for item, n in state["attempts"]}
        ex._defers = {item: n for item, n in state["defers"]}
        ex._escalated = set(state["escalated"])
        ex._crashed = set(state["crashed_disks"])
        for disk_id in state["crashed_disks"]:
            if disk_id in cluster.disks:
                cluster.remove_disk(disk_id)
        cluster.layout = type(cluster.layout)(
            {item: disk for item, disk in state["layout"]}
        )
        ex.telemetry = RuntimeTelemetry.from_state(state["telemetry"])
        ex._queue = [list(rnd) for rnd in state["queue"]]
        ex._targets = {item: dst for item, dst in state["targets"]}
        ex._states = {}
        for item in ex._delivered:
            ex._states[item] = DONE
        for item in ex._stranded:
            ex._states[item] = FAILED
        for rnd in ex._queue:
            for item in rnd:
                ex._states.setdefault(item, PENDING)
        # Rebuild the residual plan context so rate models see the
        # same endpoints and item sizes as the uninterrupted run.
        new_target = cluster.layout.copy()
        for item, dst in ex._targets.items():
            if ex._states.get(item) == PENDING:
                new_target.place(item, dst)
        ex._install_plan(cluster.migration_to(new_target))
        ex._emit(
            type="run_resumed",
            t=ex._now,
            round=ex._round_index,
            pending=len(ex.pending_items),
        )
        return ex
