"""Deprecation plumbing for the consolidated public API.

The canonical planning entry point is :func:`repro.plan`
(:func:`repro.pipeline.plan`); legacy spellings keep working but
announce themselves exactly once per process through
:func:`warn_once`.  Keying on the entry-point name (rather than the
call site) gives the "once per legacy entry point" contract the docs
promise: a batch job calling ``plan_migration`` a million times logs
one warning.

Tests reset the bookkeeping with :func:`reset_warned`.
"""

from __future__ import annotations

import warnings
from typing import Set

_WARNED: Set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_warned() -> None:
    """Forget every emitted warning (test isolation hook)."""
    _WARNED.clear()
