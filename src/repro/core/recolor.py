"""Capacitated partial edge colorings and alternating-path flips.

This is the engine room of the Section V algorithm.  A *capacitated*
coloring allows color ``c`` to appear up to ``c_v`` times at node
``v``; the paper's Definitions 5.1–5.2 and Figure 4 are implemented
here:

* :class:`ColoringState` — a partial coloring over ``q`` colors with
  per-node per-color counts and the *missing* / *strongly missing* /
  *lightly missing* predicates of Definition 5.1.
* :meth:`ColoringState.attempt_flip` — an ab-path flip (Definition
  5.2).  Unlike the ``c_v = 1`` case, an alternating path need not be
  simple: the walk flips edges ``a→b, b→a, …`` and may revisit nodes;
  internal visits are capacity-neutral and only the two endpoints'
  counts change.  The walk is validated against pending deltas and is
  applied atomically — on failure the state is untouched.
* :meth:`ColoringState.try_color_edge` — color one uncolored edge
  using a common missing color directly, or after flips that free a
  color at an endpoint (the operational content of Lemmas 5.1–5.3).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.errors import ScheduleValidationError
from repro.graphs.array_backend import CompactGraph
from repro.graphs.multigraph import EdgeId, Multigraph, Node

# Budget of (a, b) pairs tried by try_color_edge before giving up.
DEFAULT_PAIR_BUDGET = 32
# Hard cap on alternating-walk length, as a multiple of |E|.
_WALK_CAP_FACTOR = 2


class ColoringState:
    """A partial capacitated edge coloring with ``q`` colors.

    Args:
        graph: the transfer multigraph (self-loops allowed; a self-loop
            counts twice toward its node's per-color count).
        capacities: ``c_v`` per node.
        num_colors: initial palette size ``q``; grows via
            :meth:`add_color`.
    """

    def __init__(
        self,
        graph: Multigraph,
        capacities: Mapping[Node, int],
        num_colors: int,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.cap = dict(capacities)
        self.q = num_colors
        self.color: Dict[EdgeId, int] = {}
        # counts[v][c]: colored edge-ends of color c at v.
        self.counts: Dict[Node, Dict[int, int]] = {v: {} for v in graph.nodes}
        # edges_at[v][c]: the edge ids realizing counts[v][c], as an
        # insertion-ordered dict used as an ordered set.  Iteration
        # order shapes which edge an ab-walk flips, so it must be a
        # deterministic function of the assignment history — dict
        # insertion order is exactly that, whereas a set of ints
        # iterates in a hash-table order that depends on value
        # distribution and is unmirrorable by the array backend.
        self.edges_at: Dict[Node, Dict[int, Dict[EdgeId, None]]] = {
            v: {} for v in graph.nodes
        }
        self.uncolored: Set[EdgeId] = set(graph.edge_ids())
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # predicates (Definition 5.1)
    # ------------------------------------------------------------------
    def count(self, v: Node, c: int) -> int:
        return self.counts[v].get(c, 0)

    def is_missing(self, v: Node, c: int) -> bool:
        """Color ``c`` is missing at ``v``: fewer than ``c_v`` uses."""
        return self.count(v, c) < self.cap[v]

    def is_strongly_missing(self, v: Node, c: int) -> bool:
        """``E_c(v) < c_v - 1`` (at least two uses still available)."""
        return self.count(v, c) < self.cap[v] - 1

    def is_lightly_missing(self, v: Node, c: int) -> bool:
        """``E_c(v) == c_v - 1`` (exactly one use available)."""
        return self.count(v, c) == self.cap[v] - 1

    def is_saturated(self, v: Node, c: int) -> bool:
        return self.count(v, c) >= self.cap[v]

    def missing_colors(self, v: Node) -> List[int]:
        """All colors missing at ``v`` (ascending)."""
        return [c for c in range(self.q) if self.is_missing(v, c)]

    def strongly_missing_colors(self, v: Node) -> List[int]:
        return [c for c in range(self.q) if self.is_strongly_missing(v, c)]

    def common_missing_color(self, u: Node, v: Node) -> Optional[int]:
        """Smallest color missing at both endpoints, or None.

        For a self-loop caller (``u == v``) this demands two free slots
        (the loop contributes twice at its node).
        """
        if u == v:
            for c in range(self.q):
                if self.is_strongly_missing(u, c):
                    return c
            return None
        for c in range(self.q):
            if self.is_missing(u, c) and self.is_missing(v, c):
                return c
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_color(self) -> int:
        """Grow the palette by one; returns the new color index."""
        self.q += 1
        return self.q - 1

    def _bump(self, v: Node, c: int, delta: int, eid: EdgeId, adding: bool) -> None:
        self.counts[v][c] = self.counts[v].get(c, 0) + delta
        slot = self.edges_at[v].setdefault(c, {})
        if adding:
            slot[eid] = None
        else:
            slot.pop(eid, None)

    def assign(self, eid: EdgeId, c: int) -> None:
        """Color uncolored edge ``eid`` with ``c`` (capacity-checked)."""
        if eid in self.color:
            raise ScheduleValidationError(f"edge {eid} already colored")
        u, v = self.graph.endpoints(eid)
        need = 2 if u == v else 1
        if self.count(u, c) + need > self.cap[u] or (
            u != v and self.count(v, c) + 1 > self.cap[v]
        ):
            raise ScheduleValidationError(
                f"assigning color {c} to edge {eid} violates a constraint"
            )
        self.color[eid] = c
        self.uncolored.discard(eid)
        if u == v:
            self._bump(u, c, 2, eid, adding=True)
        else:
            self._bump(u, c, 1, eid, adding=True)
            self._bump(v, c, 1, eid, adding=True)

    def unassign(self, eid: EdgeId) -> int:
        """Uncolor edge ``eid``; returns the color it had."""
        c = self.color.pop(eid)
        self.uncolored.add(eid)
        u, v = self.graph.endpoints(eid)
        if u == v:
            self._bump(u, c, -2, eid, adding=False)
        else:
            self._bump(u, c, -1, eid, adding=False)
            self._bump(v, c, -1, eid, adding=False)
        return c

    def _recolor(self, eid: EdgeId, new: int) -> None:
        """Internal: change the color of a colored edge (no cap check)."""
        old = self.color[eid]
        u, v = self.graph.endpoints(eid)
        if u == v:
            self._bump(u, old, -2, eid, adding=False)
            self._bump(u, new, 2, eid, adding=True)
        else:
            self._bump(u, old, -1, eid, adding=False)
            self._bump(v, old, -1, eid, adding=False)
            self._bump(u, new, 1, eid, adding=True)
            self._bump(v, new, 1, eid, adding=True)
        self.color[eid] = new

    # ------------------------------------------------------------------
    # ab-path flips (Definition 5.2 / Figure 4)
    # ------------------------------------------------------------------
    def attempt_flip(self, start: Node, from_color: int, to_color: int) -> bool:
        """Flip an alternating walk starting at ``start``.

        The walk flips an edge colored ``from_color`` at ``start`` to
        ``to_color`` (so ``start`` must be missing ``to_color``), then
        cascades: whenever the far endpoint would exceed its constraint
        in the new color, one of its edges in that color is flipped
        back to the old color, and so on.  Internal nodes are
        capacity-neutral; the walk ends the first time the far endpoint
        can absorb the new color.

        Returns True and applies the flip atomically if a valid walk is
        found; returns False leaving the state untouched.
        """
        if from_color == to_color:
            return False
        if not self.is_missing(start, to_color):
            return False
        slots = self.edges_at[start].get(from_color)
        if not slots:
            return False

        cap = self.cap
        walk_len_cap = _WALK_CAP_FACTOR * max(1, self.graph.num_edges)
        # pending[(v, c)] = delta vs. committed counts during the walk.
        pending: Dict[Tuple[Node, int], int] = {}
        new_color_of: Dict[EdgeId, int] = {}
        used: Set[EdgeId] = set()

        def eff(v: Node, c: int) -> int:
            return self.count(v, c) + pending.get((v, c), 0)

        def flip_edge(eid: EdgeId, old: int, new: int, x: Node, y: Node) -> None:
            new_color_of[eid] = new
            used.add(eid)
            if x == y:
                pending[(x, old)] = pending.get((x, old), 0) - 2
                pending[(x, new)] = pending.get((x, new), 0) + 2
            else:
                for node in (x, y):
                    pending[(node, old)] = pending.get((node, old), 0) - 1
                    pending[(node, new)] = pending.get((node, new), 0) + 1

        def pick_edge(v: Node, want: int, target: int) -> Optional[EdgeId]:
            """An unused edge at ``v`` of color ``want``, to flip to ``target``.

            Prefers an edge whose far endpoint can absorb ``target``
            immediately (ending the walk).
            """
            best: Optional[EdgeId] = None
            for eid in self.edges_at[v].get(want, ()):  # committed color
                if eid in used or new_color_of.get(eid, want) != want:
                    continue
                other = self.graph.other_endpoint(eid, v)
                if other != v and eff(other, target) < cap[other]:
                    return eid
                if best is None:
                    best = eid
            return best

        cur = start
        f_from, f_to = from_color, to_color
        steps = 0
        while True:
            steps += 1
            if steps > walk_len_cap:
                return False
            eid = pick_edge(cur, f_from, f_to)
            if eid is None:
                return False
            other = self.graph.other_endpoint(eid, cur)
            if other == cur:
                # A self-loop flip changes its node by ±2; only valid
                # if the node absorbs both, which contradicts the walk
                # invariant (cur is saturated in f_to) — skip loops by
                # failing this walk.
                return False
            flip_edge(eid, f_from, f_to, cur, other)
            if eff(other, f_to) <= cap[other]:
                break  # `other` absorbed the new color: walk complete.
            # `other` now exceeds f_to; continue by flipping one of its
            # f_to edges back to f_from.
            cur = other
            f_from, f_to = f_to, f_from

        # Validate all pending deltas (paranoia: endpoints only).
        for (v, c), _d in pending.items():
            if eff(v, c) > cap[v] or eff(v, c) < 0:
                return False
        for eid, new in new_color_of.items():
            self._recolor(eid, new)
        return True

    def try_color_edge(
        self, eid: EdgeId, pair_budget: int = DEFAULT_PAIR_BUDGET
    ) -> bool:
        """Color one uncolored edge, flipping ab-paths if necessary.

        Implements the operational content of Lemmas 5.1–5.2: first
        look for a common missing color; otherwise, for colors ``a``
        missing at one endpoint and ``b`` missing at the other, flip an
        ab-walk to free a shared color.  Returns True on success.
        """
        u, v = self.graph.endpoints(eid)
        c = self.common_missing_color(u, v)
        if c is not None:
            self.assign(eid, c)
            return True
        if u == v:
            return False

        miss_u = self.missing_colors(u)
        miss_v = self.missing_colors(v)
        if not miss_u or not miss_v:
            return False
        pairs = [(a, b) for a in miss_u for b in miss_v if a != b]
        self._rng.shuffle(pairs)
        for a, b in pairs[:pair_budget]:
            # Free color a at v by flipping an a-walk at v into b — or
            # free b at u symmetrically; whichever works first.
            if self.is_saturated(v, a) and self.attempt_flip(v, a, b):
                c = self.common_missing_color(u, v)
                if c is not None:
                    self.assign(eid, c)
                    return True
            if self.is_saturated(u, b) and self.attempt_flip(u, b, a):
                c = self.common_missing_color(u, v)
                if c is not None:
                    self.assign(eid, c)
                    return True
        return False

    def preload(self, coloring: Mapping[EdgeId, int]) -> List[EdgeId]:
        """Warm-start the state from a prior (possibly stale) coloring.

        Edges are admitted in ascending edge-id order; an entry is
        *rejected* — left uncolored, never partially applied — when its
        color falls outside the current palette or would violate a
        transfer constraint (both happen when the instance changed
        under the prior plan: shrunken capacities, removed parallel
        edges freeing slots other survivors now contend for, …).
        Entries for edges the graph does not contain raise, because the
        caller was supposed to restrict the coloring first (see
        :meth:`repro.core.schedule.MigrationSchedule.restrict`).

        Returns the rejected edge ids, ascending.  This is the repair
        entry point of incremental replanning: reject list + still
        uncolored edges are then driven through
        :meth:`try_color_edge`.
        """
        rejected: List[EdgeId] = []
        for eid in sorted(coloring):
            u, v = self.graph.endpoints(eid)
            c = coloring[eid]
            need = 2 if u == v else 1
            if (
                not 0 <= c < self.q
                or self.count(u, c) + need > self.cap[u]
                or (u != v and self.count(v, c) + 1 > self.cap[v])
            ):
                rejected.append(eid)
                continue
            self.assign(eid, c)
        return rejected

    # ------------------------------------------------------------------
    # validation / export
    # ------------------------------------------------------------------
    def validate(self, require_complete: bool = False) -> None:
        """Recompute all counts from scratch and compare.

        Raises:
            ScheduleValidationError: on any inconsistency or capacity
                violation.
        """
        if require_complete and self.uncolored:
            raise ScheduleValidationError(f"{len(self.uncolored)} edges uncolored")
        fresh: Dict[Node, Dict[int, int]] = {v: {} for v in self.graph.nodes}
        for eid, c in self.color.items():
            u, v = self.graph.endpoints(eid)
            if not 0 <= c < self.q:
                raise ScheduleValidationError(f"edge {eid} has color {c} outside palette")
            if u == v:
                fresh[u][c] = fresh[u].get(c, 0) + 2
            else:
                fresh[u][c] = fresh[u].get(c, 0) + 1
                fresh[v][c] = fresh[v].get(c, 0) + 1
        for v, per_color in fresh.items():
            for c, n in per_color.items():
                if n > self.cap[v]:
                    raise ScheduleValidationError(
                        f"node {v!r} has {n} edges of color {c} but c_v={self.cap[v]}"
                    )
                if n != self.count(v, c):
                    raise ScheduleValidationError(
                        f"count drift at ({v!r}, {c}): cached {self.count(v, c)}, real {n}"
                    )

    def colors_used(self) -> int:
        return len(set(self.color.values()))


class ArrayColoringState:
    """Array-backend mirror of :class:`ColoringState` (byte-identical).

    Nodes and edges are the dense indices of a
    :class:`~repro.graphs.array_backend.CompactGraph`.  Every dict the
    object engine keys by node label or edge id is keyed here by
    index, and because the compact driver performs the exact same
    sequence of assigns / unassigns / recolors, the insertion orders
    that shape flip walks (``edges_at`` slot order, ``new_color_of``
    application order) are reproduced move for move.  ``color`` stays a
    real dict — its insertion order *is* the assignment history, which
    the driver lifts into the coloring dict the object engine would
    have built.  The RNG is seeded identically and consumed by the same
    shuffle calls, so tie-breaking matches too.
    """

    def __init__(
        self,
        graph: CompactGraph,
        capacities: Sequence[int],
        num_colors: int,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.cap: List[int] = list(capacities)
        self.q = num_colors
        self.color: Dict[int, int] = {}
        # counts[v][c]: colored edge-ends of color c at node index v.
        self.counts: List[Dict[int, int]] = [{} for _ in range(graph.num_nodes)]
        # edges_at[v][c]: insertion-ordered dict-as-set of edge indices,
        # mirroring ColoringState.edges_at slot for slot.
        self.edges_at: List[Dict[int, Dict[int, None]]] = [
            {} for _ in range(graph.num_nodes)
        ]
        self.uncolored: Set[int] = set(range(graph.num_edges))
        self._rng = random.Random(seed)

    def uncolored_in_id_order(self) -> List[int]:
        """Uncolored edge indices sorted by edge *id*.

        The object engine sweeps ``sorted(state.uncolored)`` — edge ids
        ascending.  A component subgraph's enumeration order preserves
        ids but need not be ascending in them, so index order and id
        order can differ; sorting by the id key reproduces the object
        sweep exactly.
        """
        return sorted(self.uncolored, key=self.graph.edge_ids.__getitem__)

    # ------------------------------------------------------------------
    # predicates (Definition 5.1)
    # ------------------------------------------------------------------
    def count(self, v: int, c: int) -> int:
        return self.counts[v].get(c, 0)

    def is_missing(self, v: int, c: int) -> bool:
        return self.count(v, c) < self.cap[v]

    def is_strongly_missing(self, v: int, c: int) -> bool:
        return self.count(v, c) < self.cap[v] - 1

    def is_lightly_missing(self, v: int, c: int) -> bool:
        return self.count(v, c) == self.cap[v] - 1

    def is_saturated(self, v: int, c: int) -> bool:
        return self.count(v, c) >= self.cap[v]

    def missing_colors(self, v: int) -> List[int]:
        return [c for c in range(self.q) if self.is_missing(v, c)]

    def strongly_missing_colors(self, v: int) -> List[int]:
        return [c for c in range(self.q) if self.is_strongly_missing(v, c)]

    def common_missing_color(self, u: int, v: int) -> Optional[int]:
        if u == v:
            for c in range(self.q):
                if self.is_strongly_missing(u, c):
                    return c
            return None
        for c in range(self.q):
            if self.is_missing(u, c) and self.is_missing(v, c):
                return c
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_color(self) -> int:
        self.q += 1
        return self.q - 1

    def _bump(self, v: int, c: int, delta: int, e: int, adding: bool) -> None:
        self.counts[v][c] = self.counts[v].get(c, 0) + delta
        slot = self.edges_at[v].setdefault(c, {})
        if adding:
            slot[e] = None
        else:
            slot.pop(e, None)

    def assign(self, e: int, c: int) -> None:
        if e in self.color:
            raise ScheduleValidationError(
                f"edge {self.graph.edge_ids[e]} already colored"
            )
        u, v = self.graph.edge_u[e], self.graph.edge_v[e]
        need = 2 if u == v else 1
        if self.count(u, c) + need > self.cap[u] or (
            u != v and self.count(v, c) + 1 > self.cap[v]
        ):
            raise ScheduleValidationError(
                f"assigning color {c} to edge {self.graph.edge_ids[e]} "
                f"violates a constraint"
            )
        self.color[e] = c
        self.uncolored.discard(e)
        if u == v:
            self._bump(u, c, 2, e, adding=True)
        else:
            self._bump(u, c, 1, e, adding=True)
            self._bump(v, c, 1, e, adding=True)

    def unassign(self, e: int) -> int:
        c = self.color.pop(e)
        self.uncolored.add(e)
        u, v = self.graph.edge_u[e], self.graph.edge_v[e]
        if u == v:
            self._bump(u, c, -2, e, adding=False)
        else:
            self._bump(u, c, -1, e, adding=False)
            self._bump(v, c, -1, e, adding=False)
        return c

    def _recolor(self, e: int, new: int) -> None:
        old = self.color[e]
        u, v = self.graph.edge_u[e], self.graph.edge_v[e]
        if u == v:
            self._bump(u, old, -2, e, adding=False)
            self._bump(u, new, 2, e, adding=True)
        else:
            self._bump(u, old, -1, e, adding=False)
            self._bump(v, old, -1, e, adding=False)
            self._bump(u, new, 1, e, adding=True)
            self._bump(v, new, 1, e, adding=True)
        self.color[e] = new

    # ------------------------------------------------------------------
    # ab-path flips (Definition 5.2 / Figure 4)
    # ------------------------------------------------------------------
    def attempt_flip(self, start: int, from_color: int, to_color: int) -> bool:
        if from_color == to_color:
            return False
        if not self.is_missing(start, to_color):
            return False
        slots = self.edges_at[start].get(from_color)
        if not slots:
            return False

        cap = self.cap
        graph = self.graph
        walk_len_cap = _WALK_CAP_FACTOR * max(1, graph.num_edges)
        pending: Dict[Tuple[int, int], int] = {}
        new_color_of: Dict[int, int] = {}
        used: Set[int] = set()

        def eff(v: int, c: int) -> int:
            return self.count(v, c) + pending.get((v, c), 0)

        def flip_edge(e: int, old: int, new: int, x: int, y: int) -> None:
            new_color_of[e] = new
            used.add(e)
            if x == y:
                pending[(x, old)] = pending.get((x, old), 0) - 2
                pending[(x, new)] = pending.get((x, new), 0) + 2
            else:
                for node in (x, y):
                    pending[(node, old)] = pending.get((node, old), 0) - 1
                    pending[(node, new)] = pending.get((node, new), 0) + 1

        def pick_edge(v: int, want: int, target: int) -> Optional[int]:
            best: Optional[int] = None
            for e in self.edges_at[v].get(want, ()):  # committed color
                if e in used or new_color_of.get(e, want) != want:
                    continue
                other = graph.other_endpoint(e, v)
                if other != v and eff(other, target) < cap[other]:
                    return e
                if best is None:
                    best = e
            return best

        cur = start
        f_from, f_to = from_color, to_color
        steps = 0
        while True:
            steps += 1
            if steps > walk_len_cap:
                return False
            e = pick_edge(cur, f_from, f_to)
            if e is None:
                return False
            other = graph.other_endpoint(e, cur)
            if other == cur:
                # Mirror of the object engine: self-loop flips fail the
                # walk (see ColoringState.attempt_flip).
                return False
            flip_edge(e, f_from, f_to, cur, other)
            if eff(other, f_to) <= cap[other]:
                break
            cur = other
            f_from, f_to = f_to, f_from

        for (v, c), _d in pending.items():
            if eff(v, c) > cap[v] or eff(v, c) < 0:
                return False
        for e, new in new_color_of.items():
            self._recolor(e, new)
        return True

    def try_color_edge(self, e: int, pair_budget: int = DEFAULT_PAIR_BUDGET) -> bool:
        u, v = self.graph.edge_u[e], self.graph.edge_v[e]
        c = self.common_missing_color(u, v)
        if c is not None:
            self.assign(e, c)
            return True
        if u == v:
            return False

        miss_u = self.missing_colors(u)
        miss_v = self.missing_colors(v)
        if not miss_u or not miss_v:
            return False
        pairs = [(a, b) for a in miss_u for b in miss_v if a != b]
        self._rng.shuffle(pairs)
        for a, b in pairs[:pair_budget]:
            if self.is_saturated(v, a) and self.attempt_flip(v, a, b):
                c = self.common_missing_color(u, v)
                if c is not None:
                    self.assign(e, c)
                    return True
            if self.is_saturated(u, b) and self.attempt_flip(u, b, a):
                c = self.common_missing_color(u, v)
                if c is not None:
                    self.assign(e, c)
                    return True
        return False

    # ------------------------------------------------------------------
    # validation / export
    # ------------------------------------------------------------------
    def validate(self, require_complete: bool = False) -> None:
        if require_complete and self.uncolored:
            raise ScheduleValidationError(f"{len(self.uncolored)} edges uncolored")
        graph = self.graph
        fresh: List[Dict[int, int]] = [{} for _ in range(graph.num_nodes)]
        for e, c in self.color.items():
            u, v = graph.edge_u[e], graph.edge_v[e]
            if not 0 <= c < self.q:
                raise ScheduleValidationError(
                    f"edge {graph.edge_ids[e]} has color {c} outside palette"
                )
            if u == v:
                fresh[u][c] = fresh[u].get(c, 0) + 2
            else:
                fresh[u][c] = fresh[u].get(c, 0) + 1
                fresh[v][c] = fresh[v].get(c, 0) + 1
        for v, per_color in enumerate(fresh):
            for c, n in per_color.items():
                if n > self.cap[v]:
                    raise ScheduleValidationError(
                        f"node {graph.nodes[v]!r} has {n} edges of color {c} "
                        f"but c_v={self.cap[v]}"
                    )
                if n != self.count(v, c):
                    raise ScheduleValidationError(
                        f"count drift at ({graph.nodes[v]!r}, {c}): "
                        f"cached {self.count(v, c)}, real {n}"
                    )

    def colors_used(self) -> int:
        return len(set(self.color.values()))
