"""Migration schedules and their validation.

A schedule is a partition of the transfer graph's edges into rounds.
Feasibility (matching the paper's model) requires that in every round,
every disk ``v`` is an endpoint of at most ``c_v`` scheduled transfers.
Schedules are interchangeable with capacitated edge colorings: round
``i`` is color ``i``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.errors import ScheduleValidationError
from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import EdgeId, Node


class MigrationSchedule:
    """An ordered list of rounds; each round is a list of edge ids.

    Empty rounds are dropped by default (makespan counts work, not
    idle time).  Round-indexed objectives — bounded coloring, group
    completion — treat indices as wall-clock rounds, so their schedules
    are built with ``keep_empty=True`` and may contain deliberately
    empty rounds (a maintenance window nothing is allowed in).
    """

    def __init__(
        self,
        rounds: Sequence[Sequence[EdgeId]],
        method: str = "unknown",
        *,
        keep_empty: bool = False,
    ) -> None:
        if keep_empty:
            self._rounds: List[List[EdgeId]] = [list(r) for r in rounds]
        else:
            self._rounds = [list(r) for r in rounds if len(r) > 0]
        self.method = method

    @classmethod
    def from_coloring(
        cls, coloring: Mapping[EdgeId, int], method: str = "unknown"
    ) -> "MigrationSchedule":
        """Convert an ``edge -> color`` map into a schedule.

        Colors need not be contiguous; empty color classes vanish.
        """
        if not coloring:
            return cls([], method=method)
        buckets: Dict[int, List[EdgeId]] = {}
        for eid, c in coloring.items():
            buckets.setdefault(c, []).append(eid)
        return cls([buckets[c] for c in sorted(buckets)], method=method)

    def as_coloring(self) -> Dict[EdgeId, int]:
        """The inverse view: ``edge_id -> round index``."""
        return {eid: i for i, rnd in enumerate(self._rounds) for eid in rnd}

    def restrict(self, edge_ids: Iterable[EdgeId]) -> Dict[EdgeId, int]:
        """The coloring induced on surviving edges.

        Returns ``edge_id -> round index`` for exactly the scheduled
        edges in ``edge_ids``; edges this schedule never colored are
        silently absent (they are the *new* work of a delta).  This is
        the read-side repair primitive of incremental replanning: the
        result feeds :meth:`repro.core.recolor.ColoringState.preload`.
        """
        keep = set(edge_ids)
        return {
            eid: i
            for i, rnd in enumerate(self._rounds)
            for eid in rnd
            if eid in keep
        }

    @property
    def rounds(self) -> List[List[EdgeId]]:
        return [list(r) for r in self._rounds]

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    def round_loads(self, instance: MigrationInstance, round_index: int) -> Dict[Node, int]:
        """Transfers each disk performs in the given round."""
        loads: Dict[Node, int] = {}
        for eid in self._rounds[round_index]:
            u, v = instance.graph.endpoints(eid)
            loads[u] = loads.get(u, 0) + 1
            loads[v] = loads.get(v, 0) + 1
        return loads

    def validate(self, instance: MigrationInstance) -> None:
        """Check the schedule against the instance.

        Verifies that (a) every transfer-graph edge is scheduled in
        exactly one round, (b) no unknown edge appears, and (c) every
        round respects every transfer constraint.

        Raises:
            ScheduleValidationError: on the first violation found.
        """
        seen: Dict[EdgeId, int] = {}
        for i, rnd in enumerate(self._rounds):
            for eid in rnd:
                if not instance.graph.has_edge_id(eid):
                    raise ScheduleValidationError(f"round {i} schedules unknown edge {eid}")
                if eid in seen:
                    raise ScheduleValidationError(
                        f"edge {eid} scheduled twice (rounds {seen[eid]} and {i})"
                    )
                seen[eid] = i
        missing = [eid for eid in instance.graph.edge_ids() if eid not in seen]
        if missing:
            raise ScheduleValidationError(
                f"{len(missing)} items never migrated, e.g. {missing[:5]}"
            )
        for i in range(len(self._rounds)):
            for v, load in self.round_loads(instance, i).items():
                if load > instance.capacity(v):
                    raise ScheduleValidationError(
                        f"round {i}: disk {v!r} performs {load} transfers "
                        f"but c_v = {instance.capacity(v)}"
                    )

    def is_valid(self, instance: MigrationInstance) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(instance)
        except ScheduleValidationError:
            return False
        return True

    def __repr__(self) -> str:
        return f"MigrationSchedule(rounds={self.num_rounds}, method={self.method!r})"
