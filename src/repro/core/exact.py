"""Brute-force optimal schedules for tiny instances.

The heterogeneous migration problem is NP-hard (it contains multigraph
edge coloring at ``c_v = 1``), but instances with a dozen items can be
solved exactly by iterative-deepening search.  The exact optimum is the
gold standard the test suite and ``bench_exact_small`` use to certify
(a) that the even-capacity algorithm truly is optimal and (b) how close
the general algorithm and the lower bound sit to ``OPT``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.lower_bounds import lower_bound
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.multigraph import EdgeId, Node

# Search is exponential in the number of items; refuse beyond this.
MAX_EXACT_ITEMS = 16


def exact_optimum(instance: MigrationInstance) -> MigrationSchedule:
    """The provably minimum-round schedule (exponential time).

    Raises:
        ValueError: if the instance has more than
            :data:`MAX_EXACT_ITEMS` items.
    """
    m = instance.num_items
    if m > MAX_EXACT_ITEMS:
        raise ValueError(f"exact search limited to {MAX_EXACT_ITEMS} items, got {m}")
    if m == 0:
        return MigrationSchedule([], method="exact")

    k = max(1, lower_bound(instance))
    while True:
        assignment = _search(instance, k)
        if assignment is not None:
            rounds: List[List[EdgeId]] = [[] for _ in range(k)]
            for eid, r in assignment.items():
                rounds[r].append(eid)
            schedule = MigrationSchedule(rounds, method="exact")
            schedule.validate(instance)
            return schedule
        k += 1


def exact_optimum_rounds(instance: MigrationInstance) -> int:
    """Just the optimal round count."""
    return exact_optimum(instance).num_rounds


def _search(instance: MigrationInstance, k: int) -> Optional[Dict[EdgeId, int]]:
    """DFS: can all edges be packed into ``k`` rounds?

    Edges are ordered hardest-first (by endpoint pressure); symmetry
    over round indices is broken by only allowing an edge into at most
    one currently-empty round.
    """
    graph = instance.graph
    edges = sorted(
        graph.edge_ids(),
        key=lambda e: -(
            graph.degree(graph.endpoints(e)[0]) / instance.capacity(graph.endpoints(e)[0])
            + graph.degree(graph.endpoints(e)[1]) / instance.capacity(graph.endpoints(e)[1])
        ),
    )
    load: Dict[Tuple[Node, int], int] = {}
    used_rounds = 0
    assignment: Dict[EdgeId, int] = {}

    def place(i: int) -> bool:
        nonlocal used_rounds
        if i == len(edges):
            return True
        eid = edges[i]
        u, v = graph.endpoints(eid)
        tried_fresh = False
        for r in range(k):
            if r >= used_rounds:
                if tried_fresh:
                    break  # all empty rounds are interchangeable
                tried_fresh = True
            if (
                load.get((u, r), 0) + 1 > instance.capacity(u)
                or load.get((v, r), 0) + 1 > instance.capacity(v)
            ):
                continue
            load[(u, r)] = load.get((u, r), 0) + 1
            load[(v, r)] = load.get((v, r), 0) + 1
            bumped = r >= used_rounds
            if bumped:
                used_rounds = r + 1
            assignment[eid] = r
            if place(i + 1):
                return True
            del assignment[eid]
            load[(u, r)] -= 1
            load[(v, r)] -= 1
            if bumped:
                used_rounds = r
        return False

    return assignment if place(0) else None
