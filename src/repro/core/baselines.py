"""Baseline schedulers the paper compares against.

* :func:`saia_schedule` — Saia's 1.5-approximation (Section I): make
  ``c_v`` copies of each node, spread its incident edges evenly (copy
  degrees ``<= ceil(d_v/c_v) = Δ'`` at max-degree nodes), properly
  edge-color the split multigraph, contract.  Shannon's theorem bounds
  the palette by ``⌊3Δ'/2⌋``; our colorer is the Kempe-chain engine
  (hard cap ``2Δ'-1``, practically ``Δ'`` or ``Δ'+1``) cross-checked
  with Euler splitting, taking whichever palette is smaller.
* :func:`homogeneous_schedule` — ignore heterogeneity (``c_v = 1`` as
  in Hall et al.): classic proper multigraph edge coloring of the
  transfer graph.  This is the "previous work" yardstick of Figure 2.
* :func:`greedy_schedule` — first-fit capacitated coloring with no
  recoloring: the practitioner's default, ``< 2Δ'`` rounds guaranteed.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.problem import MigrationInstance
from repro.core.recolor import ColoringState
from repro.core.schedule import MigrationSchedule
from repro.graphs.coloring.euler_split import euler_split_coloring
from repro.graphs.coloring.kempe import kempe_coloring
from repro.graphs.multigraph import EdgeId, Multigraph, Node


def saia_schedule(instance: MigrationInstance, use_euler_split: bool = True) -> MigrationSchedule:
    """Saia's copy-split 1.5-approximation baseline."""
    if instance.num_items == 0:
        return MigrationSchedule([], method="saia")
    split, edge_map = _split_by_capacity(instance)
    coloring = kempe_coloring(split)
    if use_euler_split:
        alternative = euler_split_coloring(split)
        if len(set(alternative.values())) < len(set(coloring.values())):
            coloring = alternative
    original = {eid: coloring[seid] for eid, seid in edge_map.items()}
    schedule = MigrationSchedule.from_coloring(original, method="saia")
    schedule.validate(instance)
    return schedule


def _split_by_capacity(
    instance: MigrationInstance,
) -> Tuple[Multigraph, Dict[EdgeId, EdgeId]]:
    """Copy each node ``c_v`` times and spread its edges round-robin.

    Returns the split multigraph and the original->split edge id map.
    Each copy of ``v`` receives at most ``ceil(d_v / c_v)`` edges, so
    the split graph's max degree is exactly ``Δ'``.
    """
    split = Multigraph()
    cursor: Dict[Node, int] = {}
    for v in instance.graph.nodes:
        cursor[v] = 0
        for k in range(instance.capacity(v)):
            split.add_node((v, k))
    edge_map: Dict[EdgeId, EdgeId] = {}
    for eid, u, v in instance.graph.edges():
        cu = (u, cursor[u] % instance.capacity(u))
        cv = (v, cursor[v] % instance.capacity(v))
        cursor[u] += 1
        cursor[v] += 1
        edge_map[eid] = split.add_edge(cu, cv)
    return split, edge_map


def homogeneous_schedule(instance: MigrationInstance) -> MigrationSchedule:
    """Schedule as if every disk handled one transfer at a time.

    The resulting schedule is feasible for the heterogeneous instance
    too (it is strictly more conservative); its length shows what prior
    homogeneous-model work would pay on heterogeneous hardware.
    """
    if instance.num_items == 0:
        return MigrationSchedule([], method="homogeneous")
    coloring = kempe_coloring(instance.graph)
    schedule = MigrationSchedule.from_coloring(coloring, method="homogeneous")
    schedule.validate(instance)
    return schedule


def even_rounding_schedule(instance: MigrationInstance) -> MigrationSchedule:
    """Round odd capacities down to even and run the exact algorithm.

    A practical alternative to the orbit machinery: ``c_v - 1`` is even
    whenever ``c_v`` is odd and ``>= 2``, and any schedule for the
    reduced capacities is feasible for the true ones.  The cost is
    bounded: the reduced ``Δ'`` is at most
    ``max_v ceil(d_v / (c_v - 1)) <= (1 + 1/(c_min - 1)) · Δ'``, so for
    fleets without unit-capacity disks this is a cheap
    ``(1 + 1/(c_min-1))``-approximation with an *exact* substrate.  For
    fleets containing ``c_v = 1`` disks the reduction is unavailable
    and ``ValueError`` is raised; use the general algorithm there.

    Raises:
        ValueError: if some ``c_v == 1`` (cannot round down to 0).
    """
    reduced: Dict = {}
    for v, c in instance.capacities.items():
        if c == 1:
            raise ValueError(
                f"disk {v!r} has c_v = 1; even-rounding needs c_v >= 2"
            )
        reduced[v] = c if c % 2 == 0 else c - 1
    from repro.core.even_optimal import even_optimal_schedule

    reduced_instance = MigrationInstance(instance.graph.copy(), reduced)
    schedule = even_optimal_schedule(reduced_instance)
    relabeled = MigrationSchedule(schedule.rounds, method="even_rounding")
    relabeled.validate(instance)
    return relabeled


def greedy_schedule(instance: MigrationInstance) -> MigrationSchedule:
    """First-fit capacitated coloring, no recoloring.

    Guaranteed to finish within ``2Δ' - 1`` rounds: an edge ``(u, v)``
    sees at most ``Δ' - 1`` saturated colors at each endpoint.
    """
    if instance.num_items == 0:
        return MigrationSchedule([], method="greedy")
    q = max(1, 2 * instance.delta_prime() - 1)
    state = ColoringState(instance.graph, instance.capacities, q)
    for eid in instance.graph.edge_ids():
        u, v = instance.graph.endpoints(eid)
        c = state.common_missing_color(u, v)
        if c is None:
            raise AssertionError("first-fit exceeded its guaranteed palette")
        state.assign(eid, c)
    schedule = MigrationSchedule.from_coloring(state.color, method="greedy")
    schedule.validate(instance)
    return schedule
