"""The (1 + o(1))-approximation for arbitrary constraints (Section V).

The driver follows the paper's two-phase structure:

**Phase 1** maintains a partial capacitated coloring with ``q`` colors
(``q`` starts at the certified lower bound — at least as ambitious as
the paper's ``(1+ε)Δ' + 1``).  It sweeps the uncolored edges applying
the orbit moves: balancing-orbit and color-orbit progress are realized
by :meth:`ColoringState.try_color_edge` (common missing color, else
ab-path flips — Lemmas 5.1/5.2), which also eliminates *bad* (parallel
uncolored) edges.  When a sweep makes no progress, the uncolored
components are classified (:mod:`repro.core.orbits`): if the residue is
already a simple graph of small components — a collection of *hard
orbits* (Corollary 5.1 bounds their size by ``1 + 1/ε ≈ √OPT``) —
Phase 2 takes over; otherwise the stall is treated as a witness
(Definition 5.7, Lemma 5.4) and the palette grows by one color, which
Corollary 5.2 keeps within ``OPT + 2/ε``.

**Phase 2** (Section V-C3) colors the residual simple graph ``G₀``:
every node ``v`` splits into ``c_v`` copies, its residual edges are
spread round-robin (so each copy has degree ``<= ceil(d_v(G₀)/c_v)``),
Misra–Gries (Vizing ``Δ+1``) colors the split graph with fresh colors,
and contraction maps copy-colors back — at most ``c_v`` same-colored
edges can meet at ``v``, one per copy, so constraints hold (Lemma 5.8).

The returned schedule is always validated; the number of colors is the
quantity the theorem bounds (``OPT + O(√OPT)``), and the benchmark
harness measures it against ``LB + 2⌈√LB⌉`` on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.lower_bounds import lower_bound
from repro.core.orbits import (
    OrbitReport,
    bad_edge_groups,
    compact_bad_edge_groups,
    compact_is_delta_witness,
    compact_is_gamma_witness,
    compact_uncolored_components,
    is_delta_witness,
    is_gamma_witness,
    uncolored_components,
)
from repro.core.problem import MigrationInstance
from repro.core.recolor import ArrayColoringState, ColoringState
from repro.core.schedule import MigrationSchedule
from repro.graphs.array_backend import CompactInstance, lift_coloring
from repro.graphs.coloring.vizing import vizing_coloring
from repro.graphs.multigraph import EdgeId, Multigraph, Node


@dataclass
class GeneralSolverStats:
    """Diagnostics describing one run of the general algorithm."""

    lower_bound: int = 0
    initial_colors: int = 0
    palette_growths: int = 0
    witnessed_growths: int = 0
    phase1_colors: int = 0
    phase2_colors: int = 0
    phase2_edges: int = 0
    sweeps: int = 0
    flips_attempted: int = 0

    @property
    def total_colors(self) -> int:
        return self.phase1_colors + self.phase2_colors

    def theorem_budget(self) -> int:
        """``LB + 2·ceil(sqrt(LB)) + 2`` — the Theorem 5.1 yardstick."""
        return self.lower_bound + 2 * math.isqrt(max(0, self.lower_bound)) + 2


def general_schedule(
    instance: MigrationInstance,
    seed: int = 0,
    stats: Optional[GeneralSolverStats] = None,
) -> MigrationSchedule:
    """Schedule an arbitrary-constraint instance (Theorem 5.1).

    Args:
        instance: the migration instance.
        seed: RNG seed for sweep orders and flip tie-breaking.
        stats: optional mutable stats object filled in during the run.

    Returns:
        A validated :class:`MigrationSchedule`.
    """
    stats = stats if stats is not None else GeneralSolverStats()
    if instance.num_items == 0:
        return MigrationSchedule([], method="general")

    lb = lower_bound(instance)
    stats.lower_bound = lb
    epsilon = 1.0 / math.sqrt(lb) if lb > 0 else 1.0
    q0 = max(lb, 1)
    stats.initial_colors = q0

    state = ColoringState(instance.graph, instance.capacities, q0, seed=seed)
    residual = _phase1(instance, state, epsilon, stats)
    stats.phase1_colors = state.q

    coloring: Dict[EdgeId, int] = dict(state.color)
    if residual is not None:
        phase2 = _phase2_color_residual(instance, residual)
        stats.phase2_edges = residual.num_edges
        stats.phase2_colors = (max(phase2.values()) + 1) if phase2 else 0
        for eid, c in phase2.items():
            coloring[eid] = state.q + c

    schedule = MigrationSchedule.from_coloring(coloring, method="general")
    schedule.validate(instance)
    return schedule


def general_schedule_compact(
    ci: CompactInstance,
    seed: int = 0,
    stats: Optional[GeneralSolverStats] = None,
) -> MigrationSchedule:
    """Array-backend :func:`general_schedule` (byte-identical).

    Phase 1 runs entirely on :class:`ArrayColoringState` — the hot
    sweep/flip loop touches only dense int arrays and small dicts of
    ints.  The cold paths deliberately stay on the reference engine:
    the lower bound, the Phase 2 residual Vizing pass (a few dozen
    edges by Corollary 5.1), and the final validation all run against
    ``ci.source``.  The lifted Phase 1 coloring dict preserves the
    assignment history order, so ``from_coloring`` sees the same key
    sequence as the object engine and the schedules match byte for
    byte.
    """
    stats = stats if stats is not None else GeneralSolverStats()
    if ci.graph.num_edges == 0:
        return MigrationSchedule([], method="general")

    lb = lower_bound(ci.source)
    stats.lower_bound = lb
    epsilon = 1.0 / math.sqrt(lb) if lb > 0 else 1.0
    q0 = max(lb, 1)
    stats.initial_colors = q0

    state = ArrayColoringState(ci.graph, ci.capacities, q0, seed=seed)
    residual_ids = _phase1_compact(ci, state, epsilon, stats)
    stats.phase1_colors = state.q

    coloring: Dict[EdgeId, int] = lift_coloring(ci.graph, state.color)
    if residual_ids is not None:
        residual = ci.source.graph.edge_subgraph(residual_ids)
        phase2 = _phase2_color_residual(ci.source, residual)
        stats.phase2_edges = residual.num_edges
        stats.phase2_colors = (max(phase2.values()) + 1) if phase2 else 0
        for eid, c in phase2.items():
            coloring[eid] = state.q + c

    schedule = MigrationSchedule.from_coloring(coloring, method="general")
    schedule.validate(ci.source)
    return schedule


# ----------------------------------------------------------------------
# Phase 1
# ----------------------------------------------------------------------

def _phase1(
    instance: MigrationInstance,
    state: ColoringState,
    epsilon: float,
    stats: GeneralSolverStats,
) -> Optional[Multigraph]:
    """Color edges until the residue is a small simple graph (or empty).

    Returns the residual graph ``G₀`` for Phase 2, or None if Phase 1
    colored everything.
    """
    # Hard orbits have at most (q+2)/(q-2Δ'') ≈ 1 + 1/ε nodes
    # (Lemma 5.7 / Corollary 5.1); allow slack of one node.
    component_cap = max(4, math.ceil(2 + 1.0 / epsilon))
    # Safety net: with 2Δ' - 1 colors even first-fit cannot stall, so
    # palette growth is finite regardless of flip-search luck.
    hard_palette_cap = max(2 * instance.delta_prime() - 1, state.q)

    order = sorted(state.uncolored)
    while state.uncolored:
        stats.sweeps += 1
        progress = False
        for eid in list(order):
            if eid not in state.uncolored:
                continue
            stats.flips_attempted += 1
            if state.try_color_edge(eid):
                progress = True
        order = sorted(state.uncolored)
        if not state.uncolored:
            return None
        if progress:
            continue

        # Stalled sweep: classify the uncolored components.
        reports = uncolored_components(state)
        bad = bad_edge_groups(state)
        all_hard = all(r.kind == "hard" for r in reports)
        small = all(len(r.nodes) <= component_cap for r in reports)
        if all_hard and not bad and small:
            # A collection of hard orbits: ship to Phase 2.  Sorted so
            # the residual graph's edge enumeration order (which feeds
            # Phase 2's round-robin node splitting) is a function of
            # the uncolored id *set*, not of set-iteration order.
            return instance.graph.edge_subgraph(sorted(state.uncolored))

        # Otherwise the stall plays the role of a witness: grow the
        # palette (Lemma 5.4 step 3b).  Record whether a formal
        # witness is actually present, for the diagnostics.
        if any(is_delta_witness(state, r) or is_gamma_witness(state, r) for r in reports):
            stats.witnessed_growths += 1
        state.add_color()
        stats.palette_growths += 1
        if state.q > hard_palette_cap:
            # Unreachable in theory (first-fit succeeds below the cap);
            # loud guard instead of a silent spin.
            raise AssertionError(
                f"palette grew past the 2Δ'-1 safety cap ({hard_palette_cap})"
            )
    return None


def _phase1_compact(
    ci: CompactInstance,
    state: ArrayColoringState,
    epsilon: float,
    stats: GeneralSolverStats,
) -> Optional[List[EdgeId]]:
    """Array mirror of :func:`_phase1`.

    Returns the sorted edge *ids* of the residual for Phase 2 (the
    object engine's ``sorted(state.uncolored)`` argument to
    ``edge_subgraph``), or None if Phase 1 colored everything.
    """
    component_cap = max(4, math.ceil(2 + 1.0 / epsilon))
    hard_palette_cap = max(2 * ci.delta_prime() - 1, state.q)

    order = state.uncolored_in_id_order()
    while state.uncolored:
        stats.sweeps += 1
        progress = False
        for e in list(order):
            if e not in state.uncolored:
                continue
            stats.flips_attempted += 1
            if state.try_color_edge(e):
                progress = True
        order = state.uncolored_in_id_order()
        if not state.uncolored:
            return None
        if progress:
            continue

        reports = compact_uncolored_components(state)
        bad = compact_bad_edge_groups(state)
        all_hard = all(r.kind == "hard" for r in reports)
        small = all(len(r.nodes) <= component_cap for r in reports)
        if all_hard and not bad and small:
            edge_ids = ci.graph.edge_ids
            return sorted(edge_ids[e] for e in state.uncolored)

        if any(
            compact_is_delta_witness(state, r) or compact_is_gamma_witness(state, r)
            for r in reports
        ):
            stats.witnessed_growths += 1
        state.add_color()
        stats.palette_growths += 1
        if state.q > hard_palette_cap:
            raise AssertionError(
                f"palette grew past the 2Δ'-1 safety cap ({hard_palette_cap})"
            )
    return None


# ----------------------------------------------------------------------
# Phase 2
# ----------------------------------------------------------------------

def _phase2_color_residual(
    instance: MigrationInstance, residual: Multigraph
) -> Dict[EdgeId, int]:
    """Color the simple residual graph via node splitting + Vizing.

    Returns colors in a fresh palette ``0..Δ(split)`` which the caller
    offsets above Phase 1's palette.
    """
    split = Multigraph()
    copy_of_edge: Dict[EdgeId, Tuple[Tuple[Node, int], Tuple[Node, int]]] = {}
    cursor: Dict[Node, int] = {}
    for v in residual.nodes:
        cursor[v] = 0
        for k in range(instance.capacity(v)):
            split.add_node((v, k))

    split_eid_of: Dict[EdgeId, int] = {}
    for eid, u, v in residual.edges():
        cu = (u, cursor[u] % instance.capacity(u))
        cv = (v, cursor[v] % instance.capacity(v))
        cursor[u] += 1
        cursor[v] += 1
        split_eid_of[eid] = split.add_edge(cu, cv)

    split_coloring = vizing_coloring(split)
    return {eid: split_coloring[seid] for eid, seid in split_eid_of.items()}
