"""Optimal schedulers for special transfer-graph classes.

Coffman et al. (cited in Section I) solved several transfer-graph
classes optimally in the multi-transfer model; this module reproduces
the two classes that matter most in practice, for *arbitrary* (odd or
even) transfer constraints:

* **Bipartite transfer graphs** — the disk-addition/removal shape (old
  disks send, new disks receive).  Split every node ``v`` into ``c_v``
  copies and spread its edges evenly: each copy has degree at most
  ``Δ' = max_v ceil(d_v/c_v)``, the split graph is still bipartite, and
  König's edge-coloring theorem colors it with exactly its max degree.
  Contracting copies yields a ``Δ'``-round schedule — optimal, since
  ``Δ' = LB1`` is a lower bound.
* **Forests** — trees are bipartite, so the same argument applies; the
  entry point exists separately because detection is cheaper and the
  class is common (hierarchical replication topologies).

These beat the general Section V algorithm's guarantee (they are
*exactly* optimal), so :func:`repro.core.solver.plan_migration` in
``auto`` mode prefers them when the transfer graph qualifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.array_backend import CompactInstance
from repro.graphs.coloring.bipartite import (
    NotBipartiteError,
    bipartite_coloring,
    bipartite_sides,
    compact_bipartite_sides,
    compact_konig_coloring,
)
from repro.graphs.multigraph import EdgeId, Multigraph, Node


def is_bipartite_instance(instance: MigrationInstance) -> bool:
    """True iff the transfer graph is bipartite (ignoring isolated nodes)."""
    try:
        bipartite_sides(instance.graph)
    except NotBipartiteError:
        return False
    return True


def is_forest_instance(instance: MigrationInstance) -> bool:
    """True iff the transfer graph is a forest (no cycles, no parallels)."""
    graph = instance.graph
    if graph.max_multiplicity() > 1:
        return False
    seen: Set[Node] = set()
    for start in graph.nodes:
        if start in seen:
            continue
        # BFS counting edges: a component with e >= n has a cycle.
        comp_nodes = 0
        comp_edges = 0
        stack = [start]
        seen.add(start)
        while stack:
            x = stack.pop()
            comp_nodes += 1
            for eid in graph.incident_edges(x):
                comp_edges += 1
                y = graph.other_endpoint(eid, x)
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        if comp_edges // 2 >= comp_nodes:
            return False
    return True


def bipartite_optimal_schedule(instance: MigrationInstance) -> MigrationSchedule:
    """Optimal (``Δ'``-round) schedule for a bipartite transfer graph.

    Works for arbitrary transfer constraints — including the odd
    capacities that make the general problem NP-hard.

    Raises:
        NotBipartiteError: if the transfer graph is not bipartite.
    """
    bipartite_sides(instance.graph)  # raises if not bipartite
    if instance.num_items == 0:
        return MigrationSchedule([], method="bipartite_optimal")

    split, edge_map = _split_evenly(instance)
    coloring = bipartite_coloring(split)
    original = {eid: coloring[seid] for eid, seid in edge_map.items()}
    schedule = MigrationSchedule.from_coloring(original, method="bipartite_optimal")
    schedule.validate(instance)
    assert schedule.num_rounds == instance.delta_prime(), (
        "König contraction must land exactly on Δ'"
    )
    return schedule


def bipartite_optimal_schedule_compact(ci: CompactInstance) -> MigrationSchedule:
    """Array-backend :func:`bipartite_optimal_schedule` (byte-identical).

    The round-robin node split becomes arithmetic on the capacity
    array: copy ``(v, k)`` is split index ``offset[v] + k`` (copies are
    inserted per node in node order, ``k`` ascending — exactly the
    object's ``add_node`` sequence), and split edge ``i`` is original
    edge ``i`` (sequential ``add_edge``).  Copy reprs are rebuilt as
    the tuple repr strings ``"(<node repr>, <k>)"`` so the König
    colorer's repr-sorted side orders match the object engine's.
    """
    graph = ci.graph
    compact_bipartite_sides(graph)  # raises if not bipartite
    m = graph.num_edges
    if m == 0:
        return MigrationSchedule([], method="bipartite_optimal")

    caps = ci.capacities
    n = graph.num_nodes
    offset = [0] * (n + 1)
    for v in range(n):
        offset[v + 1] = offset[v] + caps[v]
    reprs = graph.node_reprs()
    split_repr: List[str] = [
        "(" + reprs[v] + ", " + str(k) + ")"
        for v in range(n)
        for k in range(caps[v])
    ]
    cursor = [0] * n
    split_edges: List[Tuple[int, int]] = []
    edge_u, edge_v = graph.edge_u, graph.edge_v
    for e in range(m):
        u, v = edge_u[e], edge_v[e]
        cu = offset[u] + cursor[u] % caps[u]
        cv = offset[v] + cursor[v] % caps[v]
        cursor[u] += 1
        cursor[v] += 1
        split_edges.append((cu, cv))

    coloring = compact_konig_coloring(offset[n], split_edges, split_repr)
    original = {graph.edge_ids[e]: coloring[e] for e in range(m)}
    schedule = MigrationSchedule.from_coloring(original, method="bipartite_optimal")
    schedule.validate(ci.source)
    assert schedule.num_rounds == ci.delta_prime(), (
        "König contraction must land exactly on Δ'"
    )
    return schedule


def _split_evenly(
    instance: MigrationInstance,
) -> Tuple[Multigraph, Dict[EdgeId, EdgeId]]:
    """Split ``v`` into ``c_v`` copies, spreading edges round-robin.

    Copy degrees are ``<= ceil(d_v / c_v) <= Δ'``, and splitting
    preserves bipartiteness (copies inherit their original's side).
    """
    split = Multigraph()
    cursor: Dict[Node, int] = {}
    for v in instance.graph.nodes:
        cursor[v] = 0
        for k in range(instance.capacity(v)):
            split.add_node((v, k))
    edge_map: Dict[EdgeId, EdgeId] = {}
    for eid, u, v in instance.graph.edges():
        cu = (u, cursor[u] % instance.capacity(u))
        cv = (v, cursor[v] % instance.capacity(v))
        cursor[u] += 1
        cursor[v] += 1
        edge_map[eid] = split.add_edge(cu, cv)
    return split, edge_map


def try_special_case_schedule(
    instance: MigrationInstance,
) -> Optional[MigrationSchedule]:
    """Return an optimal schedule if the instance is a special class.

    Checks bipartiteness (which subsumes forests); returns None when
    the instance needs the general machinery.
    """
    if is_bipartite_instance(instance):
        return bipartite_optimal_schedule(instance)
    return None
