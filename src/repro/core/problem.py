"""The heterogeneous data-migration problem (Section III).

A :class:`MigrationInstance` couples a *transfer graph* — a multigraph
whose nodes are disks and whose edges are unit-size data items to move
between their endpoints — with per-disk *transfer constraints*
``c_v >= 1``: how many simultaneous transfers disk ``v`` sustains.

A schedule partitions the edges into rounds such that each round uses
at most ``c_v`` edges at every node ``v``; the objective is to minimize
the number of rounds (see :mod:`repro.core.schedule`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import InvalidInstanceError
from repro.graphs.multigraph import EdgeId, Multigraph, Node

if TYPE_CHECKING:  # runtime imports stay lazy: objectives imports nothing back
    from repro.core.objectives import Objective


class MigrationInstance:
    """A transfer graph plus per-node transfer constraints.

    Args:
        graph: the transfer multigraph.  Self-loops are rejected: an
            item never migrates from a disk to itself.
        capacities: ``c_v`` for every node; every graph node must have
            a capacity and every capacity must be a positive integer.
        objective: what a schedule for this instance is optimized for;
            ``None`` means the paper's makespan.  A non-``None``
            objective is validated against the instance at construction
            (e.g. every item must have an allowed-round set).

    The instance is immutable by convention: algorithms copy the graph
    before augmenting it.
    """

    def __init__(
        self,
        graph: Multigraph,
        capacities: Mapping[Node, int],
        *,
        objective: Optional["Objective"] = None,
    ) -> None:
        for eid, u, v in graph.edges():
            if u == v:
                raise InvalidInstanceError(f"edge {eid} is a self-loop at {u!r}")
        for v in graph.nodes:
            if v not in capacities:
                raise InvalidInstanceError(f"node {v!r} has no transfer constraint")
            c = capacities[v]
            if not isinstance(c, int) or c < 1:
                raise InvalidInstanceError(
                    f"transfer constraint of {v!r} must be a positive int, got {c!r}"
                )
        self._graph = graph
        self._capacities = {v: capacities[v] for v in graph.nodes}
        self._objective = objective
        if objective is not None:
            objective.validate(self)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_moves(
        cls,
        moves: Sequence[Tuple[Node, Node]],
        capacities: Mapping[Node, int],
        extra_nodes: Iterable[Node] = (),
    ) -> "MigrationInstance":
        """Build an instance from ``(source_disk, target_disk)`` pairs.

        One edge is created per move; repeated pairs become parallel
        edges.  ``extra_nodes`` adds idle disks that appear in no move
        (they still need capacities).
        """
        graph = Multigraph()
        for v in extra_nodes:
            graph.add_node(v)
        for src, dst in moves:
            graph.add_edge(src, dst)
        return cls(graph, capacities)

    @classmethod
    def uniform(
        cls, moves: Sequence[Tuple[Node, Node]], capacity: int = 1
    ) -> "MigrationInstance":
        """Instance where every disk has the same transfer constraint."""
        graph = Multigraph()
        for src, dst in moves:
            graph.add_edge(src, dst)
        return cls(graph, {v: capacity for v in graph.nodes})

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Multigraph:
        return self._graph

    @property
    def objective(self) -> "Objective":
        """The instance's objective; defaults to the paper's makespan."""
        if self._objective is None:
            from repro.core.objectives import MAKESPAN

            return MAKESPAN
        return self._objective

    def has_custom_objective(self) -> bool:
        """True iff a non-makespan objective was attached."""
        from repro.core.objectives import MakespanObjective

        return self._objective is not None and not isinstance(
            self._objective, MakespanObjective
        )

    def with_objective(self, objective: Optional["Objective"]) -> "MigrationInstance":
        """Same graph and constraints with a different objective."""
        return MigrationInstance(self._graph, self._capacities, objective=objective)

    @property
    def capacities(self) -> Dict[Node, int]:
        return dict(self._capacities)

    def capacity(self, v: Node) -> int:
        return self._capacities[v]

    @property
    def num_disks(self) -> int:
        return self._graph.num_nodes

    @property
    def num_items(self) -> int:
        return self._graph.num_edges

    def all_even(self) -> bool:
        """True iff every transfer constraint is even (Section IV case)."""
        return all(c % 2 == 0 for c in self._capacities.values())

    def all_unit(self) -> bool:
        """True iff every constraint is 1 (the homogeneous classic case)."""
        return all(c == 1 for c in self._capacities.values())

    def constrained_degree(self, v: Node) -> int:
        """``ceil(d_v / c_v)`` — rounds node ``v`` needs at minimum."""
        return math.ceil(self._graph.degree(v) / self._capacities[v])

    def delta_prime(self) -> int:
        """``Δ' = max_v ceil(d_v / c_v)`` — lower bound LB1 (Section III)."""
        return max((self.constrained_degree(v) for v in self._graph.nodes), default=0)

    def restricted_to_unit_capacity(self) -> "MigrationInstance":
        """Same transfer graph with every ``c_v`` forced to 1."""
        return MigrationInstance(self._graph.copy(), {v: 1 for v in self._graph.nodes})

    def __repr__(self) -> str:
        caps = sorted(set(self._capacities.values()))
        return (
            f"MigrationInstance(disks={self.num_disks}, items={self.num_items}, "
            f"capacities={caps})"
        )
