"""Core algorithms: the paper's contribution.

* :mod:`repro.core.problem` / :mod:`repro.core.schedule` — the
  heterogeneous data-migration problem and its solutions.
* :mod:`repro.core.lower_bounds` — the two lower bounds of Section III.
* :mod:`repro.core.even_optimal` — the optimal scheduler for even
  transfer constraints (Section IV).
* :mod:`repro.core.general` — the ``(1 + o(1))``-approximation for
  arbitrary constraints (Section V), with orbit machinery in
  :mod:`repro.core.orbits` and the capacitated recoloring engine in
  :mod:`repro.core.recolor`.
* :mod:`repro.core.baselines` — Saia's 1.5-approximation, the
  homogeneous (``c_v = 1``) scheduler and greedy first-fit.
* :mod:`repro.core.exact` — brute-force optimum for tiny instances.
* :mod:`repro.core.objectives` — scheduling objectives beyond makespan
  (bounded edge coloring, weighted group completion times), consumed
  by the branch-and-bound solver in :mod:`repro.exact`.
* :mod:`repro.core.solver` — the public entry point
  :func:`~repro.core.solver.plan_migration`.
"""

from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.core.lower_bounds import lower_bound, lb1, lb2
from repro.core.objectives import (
    MAKESPAN,
    BoundedColorObjective,
    GroupCompletionObjective,
    MakespanObjective,
    Objective,
    ObjectiveError,
    load_objective,
    objective_from_json,
)
from repro.core.solver import plan_migration

__all__ = [
    "MAKESPAN",
    "BoundedColorObjective",
    "GroupCompletionObjective",
    "MakespanObjective",
    "MigrationInstance",
    "MigrationSchedule",
    "Objective",
    "ObjectiveError",
    "load_objective",
    "objective_from_json",
    "plan_migration",
    "lower_bound",
    "lb1",
    "lb2",
]
