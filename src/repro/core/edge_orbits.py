"""Edge orbits: the Section V growth structures, instrumented.

The production solver (:mod:`repro.core.general`) realizes the paper's
progress lemmas operationally through the flip engine.  This module is
the *reference* implementation of the structures those lemmas reason
about — Definition 5.5 (lean/bad edges), Definition 5.6 (edge orbits
and their growth by alternating paths) and Definition 5.7 (Δ- and
Γ-witnesses) — exposed for study, tests and the ``bench_orbits``
experiment that watches orbits grow on deliberately starved palettes.

Faithfulness notes:

* orbit *growth* follows Definition 5.6 literally: pick an orbit edge
  ``(x, y)``, colors ``a``/``b`` missing at ``x``/``y`` and *free* for
  the orbit (no orbit edge wears them), trace the ab-path from ``x``
  (Definition 5.2's conditions), and absorb it if it contributes a new
  vertex;
* *witnesses* are detected exactly as Definition 5.7 states: a node
  whose missing colors are all non-free (Δ), or an orbit whose free
  colors are all full (Γ);
* Lemma 5.3's weak-orbit *move* (uncolor a lean edge, color a bad
  edge) is realized by delegating the recoloring to the validated flip
  engine — the structural detection is faithful, the recoloring search
  is the engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.recolor import ColoringState
from repro.graphs.multigraph import EdgeId, Node


@dataclass
class EdgeOrbit:
    """A growing edge orbit (Definition 5.6)."""

    seed: Tuple[EdgeId, EdgeId]
    edges: Set[EdgeId] = field(default_factory=set)
    vertices: Set[Node] = field(default_factory=set)
    used_colors: Set[int] = field(default_factory=set)
    growth_steps: int = 0

    def free_colors(self, state: ColoringState) -> Set[int]:
        """Colors no orbit edge currently wears."""
        worn = {state.color[eid] for eid in self.edges if eid in state.color}
        return set(range(state.q)) - worn

    def has_lean_edge(self, state: ColoringState) -> bool:
        """Weak orbit test: a colored orbit edge whose parallels are
        all colored (Definition 5.5)."""
        graph = state.graph
        for eid in self.edges:
            if eid not in state.color:
                continue
            u, v = graph.endpoints(eid)
            if all(
                parallel in state.color for parallel in graph.edges_between(u, v)
            ):
                return True
        return False


@dataclass
class GrowthOutcome:
    """Result of one growth attempt."""

    kind: str  # "grown" | "delta_witness" | "gamma_witness" | "exhausted"
    orbit: EdgeOrbit
    witness_node: Optional[Node] = None
    added_vertices: Set[Node] = field(default_factory=set)


def seed_orbits(state: ColoringState) -> List[EdgeOrbit]:
    """One orbit per group of parallel uncolored (bad) edges."""
    graph = state.graph
    groups: Dict[Tuple[Node, Node], List[EdgeId]] = {}
    for eid in sorted(state.uncolored):
        u, v = graph.endpoints(eid)
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        groups.setdefault(key, []).append(eid)
    orbits: List[EdgeOrbit] = []
    for (u, v), eids in sorted(groups.items(), key=lambda kv: repr(kv[0])):
        if len(eids) < 2:
            continue
        eids.sort()
        orbit = EdgeOrbit(seed=(eids[0], eids[1]))
        orbit.edges.update(eids[:2])
        orbit.vertices.update((u, v))
        orbits.append(orbit)
    return orbits


def trace_ab_path(
    state: ColoringState, start: Node, a: int, b: int, max_len: Optional[int] = None
) -> List[EdgeId]:
    """Trace (without flipping) the alternating ab-path from ``start``.

    Follows Definition 5.2's shape under capacities: beginning with an
    ``a``-colored edge at ``start`` (which must be missing ``b`` and
    not missing ``a``), alternating colors; at each node the next edge
    of the wanted color is taken if available.  The walk may revisit
    nodes (paths need not be simple) but never reuses an edge.
    """
    if not state.is_missing(start, b) or state.is_missing(start, a):
        return []
    cap = max_len if max_len is not None else 2 * max(1, state.graph.num_edges)
    path: List[EdgeId] = []
    used: Set[EdgeId] = set()
    cur = start
    want = a
    while len(path) < cap:
        candidates = [
            eid for eid in state.edges_at[cur].get(want, ()) if eid not in used
        ]
        if not candidates:
            break
        eid = min(candidates)
        path.append(eid)
        used.add(eid)
        cur = state.graph.other_endpoint(eid, cur)
        want = b if want == a else a
    return path


def grow_orbit(
    state: ColoringState, orbit: EdgeOrbit, max_attempts: int = 64
) -> GrowthOutcome:
    """One growth step (Lemma 5.4): extend, or report a witness.

    Tries (edge, a, b) combinations whose colors are free for the
    orbit; absorbs the first traced path that contributes a new
    vertex.  If some orbit node misses no free color, that is a
    Δ-witness; if every free color is full over the orbit, a
    Γ-witness; otherwise ``exhausted`` (the search budget ran out
    without growth — operationally treated like a witness).
    """
    free = orbit.free_colors(state)

    # Δ-witness check (Definition 5.7, first kind).
    for v in sorted(orbit.vertices, key=repr):
        if not any(state.is_missing(v, c) for c in free):
            return GrowthOutcome("delta_witness", orbit, witness_node=v)

    # Γ-witness check (second kind): every free color full in O.
    cap_sum = sum(state.cap[v] for v in orbit.vertices)
    if free and all(
        sum(state.count(v, c) for v in orbit.vertices) >= cap_sum - 1 for c in free
    ):
        return GrowthOutcome("gamma_witness", orbit)

    attempts = 0
    for eid in sorted(orbit.edges):
        x, y = state.graph.endpoints(eid)
        for a in sorted(free):
            if not state.is_missing(x, a):
                continue
            for b in sorted(free):
                if b == a or not state.is_missing(y, b):
                    continue
                attempts += 1
                if attempts > max_attempts:
                    return GrowthOutcome("exhausted", orbit)
                # Definition 5.2: a path starting at x whose first edge
                # wears b needs x missing a and *not* missing b (the
                # trace enforces its own preconditions and returns []
                # otherwise).  The edge is unordered, so the symmetric
                # start from y is equally valid.
                for start, first, second in ((x, b, a), (y, a, b)):
                    path = trace_ab_path(state, start, first, second)
                    if not path:
                        continue
                    new_nodes: Set[Node] = set()
                    for peid in path:
                        new_nodes.update(state.graph.endpoints(peid))
                    new_nodes -= orbit.vertices
                    if not new_nodes:
                        continue
                    orbit.edges.update(path)
                    orbit.vertices.update(new_nodes)
                    orbit.used_colors.update((a, b))
                    orbit.growth_steps += 1
                    return GrowthOutcome("grown", orbit, added_vertices=new_nodes)
    return GrowthOutcome("exhausted", orbit)


def resolve_weak_orbit(state: ColoringState, orbit: EdgeOrbit) -> bool:
    """Lemma 5.3's move on a weak orbit, via the flip engine.

    Attempts to color one of the orbit's uncolored edges (possibly
    after flips).  Returns True on progress; the state is validated by
    the engine's own invariants either way.
    """
    for eid in sorted(orbit.edges):
        if eid in state.uncolored and state.try_color_edge(eid):
            return True
    return False


@dataclass
class OrbitTrace:
    """Full growth trajectory of one orbit (for the bench/analysis)."""

    final_size: int
    growth_steps: int
    outcome: str
    resolved: bool


def explore_orbits(state: ColoringState, max_growth: int = 100) -> List[OrbitTrace]:
    """Grow every seeded orbit to its conclusion; return trajectories."""
    traces: List[OrbitTrace] = []
    for orbit in seed_orbits(state):
        outcome = "seeded"
        for _ in range(max_growth):
            result = grow_orbit(state, orbit)
            outcome = result.kind
            if result.kind != "grown":
                break
        resolved = resolve_weak_orbit(state, orbit)
        traces.append(
            OrbitTrace(
                final_size=len(orbit.vertices),
                growth_steps=orbit.growth_steps,
                outcome=outcome,
                resolved=resolved,
            )
        )
    return traces
