"""Scheduling objectives beyond makespan.

The paper's objective is *makespan*: the number of rounds.  Two
generalizations from the related work are modeled here:

* **Bounded edge coloring** (Turner, "The Bounded Edge Coloring Problem
  and Offline Crossbar Scheduling"): every item carries a set of
  *allowed rounds* — maintenance windows, link blackouts — and the
  schedule must place each item in one of its allowed rounds while
  minimizing the timeline length.  Round indices are significant, so a
  bounded-color schedule may contain deliberately empty rounds.
* **Group completion times** (Rohwedder–Schnaars, "Graph Scheduling
  with Group Completion Times"): items belong to named groups (tenants)
  with positive integer weights, and the objective is the weighted sum
  of group completion rounds ``Σ_g w_g · C_g`` where ``C_g`` is the
  1-based round in which the last item of group ``g`` moves.

Every objective knows how to *validate* itself against an instance,
*check* a proposed schedule for objective-specific feasibility, and
compute its *value* — the certifier re-runs all three without trusting
the solver.  Objectives serialize to JSON with a canonical (sorted,
compact) payload so certificates can bind to a sha256 digest of the
objective itself.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, Iterable, Mapping, Sequence, Tuple

from repro.core.errors import ReproError
from repro.graphs.multigraph import EdgeId

if TYPE_CHECKING:  # annotation-only: problem.py imports this module
    from repro.core.problem import MigrationInstance

OBJECTIVE_FORMAT_VERSION = 1

Rounds = Sequence[Sequence[EdgeId]]


class ObjectiveError(ReproError, ValueError):
    """An objective is malformed, inapplicable, or violated."""


class Objective(ABC):
    """What a schedule is optimized for.

    Subclasses define a stable ``kind`` tag, structural validation
    against an instance, objective-specific feasibility of a round
    structure, and the objective value.  ``rounds`` are always taken
    *with* empty rounds significant: for round-indexed objectives an
    empty round still advances time.
    """

    kind: str = "abstract"

    @abstractmethod
    def validate(self, instance: MigrationInstance) -> None:
        """Raise :class:`ObjectiveError` if ``self`` cannot apply to
        ``instance`` (e.g. an item without an allowed-round set)."""

    @abstractmethod
    def check(self, instance: MigrationInstance, rounds: Rounds) -> None:
        """Raise :class:`ObjectiveError` on an objective-specific
        violation (coverage and capacity are checked elsewhere)."""

    @abstractmethod
    def value(self, instance: MigrationInstance, rounds: Rounds) -> int:
        """The objective value of ``rounds`` (smaller is better)."""

    @abstractmethod
    def payload(self) -> Dict[str, Any]:
        """JSON-serializable canonical payload (sorted containers)."""

    def to_json(self, indent: int = 2) -> str:
        data = {
            "format": "repro-objective",
            "version": OBJECTIVE_FORMAT_VERSION,
            "kind": self.kind,
        }
        data.update(self.payload())
        return json.dumps(data, indent=indent, sort_keys=True)

    def canonical_payload(self) -> str:
        """Compact, key-sorted JSON — the digest pre-image."""
        data = {"kind": self.kind}
        data.update(self.payload())
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """sha256 over :meth:`canonical_payload`."""
        return hashlib.sha256(self.canonical_payload().encode()).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Objective):
            return NotImplemented
        return self.canonical_payload() == other.canonical_payload()

    def __hash__(self) -> int:
        return hash(self.canonical_payload())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MakespanObjective(Objective):
    """The paper's objective: minimize the number of non-empty rounds."""

    kind = "makespan"

    def validate(self, instance: MigrationInstance) -> None:
        return None

    def check(self, instance: MigrationInstance, rounds: Rounds) -> None:
        return None

    def value(self, instance: MigrationInstance, rounds: Rounds) -> int:
        return sum(1 for rnd in rounds if len(rnd) > 0)

    def payload(self) -> Dict[str, Any]:
        return {}


class BoundedColorObjective(Objective):
    """Minimize timeline length with per-item allowed-round sets.

    Args:
        allowed: maps each edge id to the non-empty set of 0-based round
            indices the item may be scheduled in.

    Raises:
        ObjectiveError: on an empty allowed set or a negative /
            non-integer round index (validated at construction, per the
            fail-fast contract of the instance layer).
    """

    kind = "bounded_color"

    def __init__(self, allowed: Mapping[EdgeId, Iterable[int]]) -> None:
        cleaned: Dict[int, Tuple[int, ...]] = {}
        for eid, indices in allowed.items():
            rounds = tuple(sorted(set(indices)))
            if not rounds:
                raise ObjectiveError(f"edge {eid} has an empty allowed-round set")
            for r in rounds:
                if not isinstance(r, int) or isinstance(r, bool) or r < 0:
                    raise ObjectiveError(
                        f"edge {eid} has invalid allowed round {r!r} "
                        "(need a non-negative int)"
                    )
            cleaned[int(eid)] = rounds
        self._allowed = cleaned

    @property
    def allowed(self) -> Dict[int, Tuple[int, ...]]:
        return dict(self._allowed)

    def allowed_rounds(self, eid: EdgeId) -> Tuple[int, ...]:
        return self._allowed[eid]

    def validate(self, instance: MigrationInstance) -> None:
        instance_eids = set(instance.graph.edge_ids())
        for eid in sorted(instance_eids):
            if eid not in self._allowed:
                raise ObjectiveError(f"edge {eid} has no allowed-round set")
        for eid in sorted(self._allowed):
            if eid not in instance_eids:
                raise ObjectiveError(
                    f"allowed-round set refers to unknown edge {eid}"
                )

    def check(self, instance: MigrationInstance, rounds: Rounds) -> None:
        for index, rnd in enumerate(rounds):
            for eid in rnd:
                windows = self._allowed.get(eid)
                if windows is None:
                    raise ObjectiveError(f"edge {eid} has no allowed-round set")
                if index not in windows:
                    raise ObjectiveError(
                        f"edge {eid} scheduled in round {index}, "
                        f"allowed rounds are {list(windows)}"
                    )

    def value(self, instance: MigrationInstance, rounds: Rounds) -> int:
        last = -1
        for index, rnd in enumerate(rounds):
            if len(rnd) > 0:
                last = index
        return last + 1

    def payload(self) -> Dict[str, Any]:
        return {
            "allowed": {str(eid): list(self._allowed[eid]) for eid in sorted(self._allowed)}
        }

    def __repr__(self) -> str:
        return f"BoundedColorObjective(edges={len(self._allowed)})"


class GroupCompletionObjective(Objective):
    """Minimize ``Σ_g w_g · C_g`` over named item groups.

    Args:
        groups: maps each edge id to its group name.
        weights: positive integer weight per group name; must cover
            exactly the groups referenced by ``groups``.

    Raises:
        ObjectiveError: on a non-positive / non-integer weight, a group
            without a weight, or a weight for an unreferenced group.
    """

    kind = "group_completion"

    def __init__(
        self, groups: Mapping[EdgeId, str], weights: Mapping[str, int]
    ) -> None:
        self._groups: Dict[int, str] = {}
        for eid, name in groups.items():
            if not isinstance(name, str) or not name:
                raise ObjectiveError(f"edge {eid} has invalid group name {name!r}")
            self._groups[int(eid)] = name
        referenced = {self._groups[eid] for eid in self._groups}
        for name in sorted(referenced):
            if name not in weights:
                raise ObjectiveError(f"group {name!r} has no weight")
        for name in sorted(weights):
            w = weights[name]
            if not isinstance(w, int) or isinstance(w, bool) or w < 1:
                raise ObjectiveError(
                    f"group {name!r} weight must be a positive int, got {w!r}"
                )
            if name not in referenced:
                raise ObjectiveError(f"weight for unreferenced group {name!r}")
        self._weights: Dict[str, int] = {
            name: int(weights[name]) for name in sorted(referenced)
        }

    @property
    def groups(self) -> Dict[int, str]:
        return dict(self._groups)

    @property
    def weights(self) -> Dict[str, int]:
        return dict(self._weights)

    def group_of(self, eid: EdgeId) -> str:
        return self._groups[eid]

    def validate(self, instance: MigrationInstance) -> None:
        instance_eids = set(instance.graph.edge_ids())
        for eid in sorted(instance_eids):
            if eid not in self._groups:
                raise ObjectiveError(f"edge {eid} belongs to no group")
        for eid in sorted(self._groups):
            if eid not in instance_eids:
                raise ObjectiveError(f"group map refers to unknown edge {eid}")

    def check(self, instance: MigrationInstance, rounds: Rounds) -> None:
        for rnd in rounds:
            for eid in rnd:
                if eid not in self._groups:
                    raise ObjectiveError(f"edge {eid} belongs to no group")

    def completions(
        self, instance: MigrationInstance, rounds: Rounds
    ) -> Dict[str, int]:
        """1-based completion round per group (0 for an unscheduled group)."""
        done: Dict[str, int] = {name: 0 for name in self._weights}
        for index, rnd in enumerate(rounds):
            for eid in rnd:
                name = self._groups[eid]
                done[name] = max(done[name], index + 1)
        return done

    def value(self, instance: MigrationInstance, rounds: Rounds) -> int:
        done = self.completions(instance, rounds)
        return sum(self._weights[name] * done[name] for name in sorted(done))

    def payload(self) -> Dict[str, Any]:
        return {
            "groups": {str(eid): self._groups[eid] for eid in sorted(self._groups)},
            "weights": {name: self._weights[name] for name in sorted(self._weights)},
        }

    def __repr__(self) -> str:
        return (
            f"GroupCompletionObjective(edges={len(self._groups)}, "
            f"groups={len(self._weights)})"
        )


#: The default objective — the paper's makespan.
MAKESPAN = MakespanObjective()

#: Kind tags of every built-in objective, in registration order.
OBJECTIVE_KINDS: Tuple[str, ...] = (
    MakespanObjective.kind,
    BoundedColorObjective.kind,
    GroupCompletionObjective.kind,
)


def objective_from_json(payload: str) -> Objective:
    """Inverse of :meth:`Objective.to_json`.

    Raises:
        ObjectiveError: on an unrecognized format, version or kind.
    """
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ObjectiveError(f"objective payload is not JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != "repro-objective":
        raise ObjectiveError(
            f"not an objective payload: {data.get('format') if isinstance(data, dict) else data!r}"
        )
    if data.get("version") != OBJECTIVE_FORMAT_VERSION:
        raise ObjectiveError(f"unsupported version {data.get('version')!r}")
    kind = data.get("kind")
    if kind == MakespanObjective.kind:
        return MakespanObjective()
    if kind == BoundedColorObjective.kind:
        raw = data.get("allowed")
        if not isinstance(raw, dict):
            raise ObjectiveError("bounded_color payload needs an 'allowed' mapping")
        return BoundedColorObjective(
            {int(eid): [int(r) for r in windows] for eid, windows in raw.items()}
        )
    if kind == GroupCompletionObjective.kind:
        raw_groups = data.get("groups")
        raw_weights = data.get("weights")
        if not isinstance(raw_groups, dict) or not isinstance(raw_weights, dict):
            raise ObjectiveError(
                "group_completion payload needs 'groups' and 'weights' mappings"
            )
        return GroupCompletionObjective(
            {int(eid): str(name) for eid, name in raw_groups.items()},
            {str(name): int(w) for name, w in raw_weights.items()},
        )
    raise ObjectiveError(f"unknown objective kind {kind!r}")


def load_objective(path: str) -> Objective:
    """Read an objective previously written with :meth:`Objective.to_json`."""
    with open(path) as handle:
        return objective_from_json(handle.read())


def ensure_objective(objective: "Objective | None") -> Objective:
    """Normalize ``None`` to the default makespan objective."""
    return MAKESPAN if objective is None else objective


__all__ = [
    "MAKESPAN",
    "OBJECTIVE_FORMAT_VERSION",
    "OBJECTIVE_KINDS",
    "BoundedColorObjective",
    "GroupCompletionObjective",
    "MakespanObjective",
    "Objective",
    "ObjectiveError",
    "Rounds",
    "ensure_objective",
    "load_objective",
    "objective_from_json",
]
