"""Exception types shared across the core algorithms."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidInstanceError(ReproError, ValueError):
    """The migration instance is malformed (e.g. ``c_v < 1``)."""


class ScheduleValidationError(ReproError, AssertionError):
    """A produced schedule violates the transfer constraints."""


class SolverError(ReproError, RuntimeError):
    """An algorithm could not produce a schedule it guarantees."""
