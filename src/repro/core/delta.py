"""First-class instance deltas: the change vocabulary of replanning.

Real fleets do not hand the planner one static instance — demands
arrive as a *stream* of small edits while earlier plans still execute:
a new item wants to move, a pending move is cancelled, a pending move's
destination changes (the item got hotter while queued), a disk's
transfer constraint is re-provisioned.  :class:`InstanceDelta` is the
one canonical description of such an edit, shared by the temperature
workloads (:mod:`repro.workloads.temperature`), online arrivals
(:mod:`repro.extensions.online`) and the incremental replanner
(:func:`repro.plan_delta`).

:func:`apply_delta` turns ``(instance, delta)`` into the patched
instance.  The application order is fixed — **capacities, then
retargets, then removals, then additions** — and each removal (or the
removal half of a retarget) takes the *highest-id* parallel edge
between its pair, so the surviving edges keep their ids and their
pair-slot tokens (:mod:`repro.pipeline.canonical`) are stable.  New
edges draw fresh ids from the multigraph's high-water mark, exactly as
if they had been added to the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Node

#: ``(source_disk, target_disk)`` — one unit-size item to move.
Move = Tuple[Node, Node]

#: ``(source_disk, old_target, new_target)`` — redirect a pending move.
Retarget = Tuple[Node, Node, Node]

DELTA_SCHEMA_VERSION = 1


class DeltaError(Exception):
    """A delta is malformed or does not apply to the given instance."""


def _as_move_tuple(move: Sequence[Node]) -> Move:
    if len(move) != 2:
        raise DeltaError(f"a move is a (src, dst) pair, got {move!r}")
    src, dst = move
    if src == dst:
        raise DeltaError(f"move {move!r} is a self-move; items never migrate in place")
    return (src, dst)


def _as_retarget_tuple(entry: Sequence[Node]) -> Retarget:
    if len(entry) != 3:
        raise DeltaError(
            f"a retarget is a (src, old_dst, new_dst) triple, got {entry!r}"
        )
    src, old, new = entry
    if src == old or src == new:
        raise DeltaError(f"retarget {entry!r} creates a self-move")
    if old == new:
        raise DeltaError(f"retarget {entry!r} does not change the destination")
    return (src, old, new)


@dataclass(frozen=True)
class InstanceDelta:
    """One batch of edits to a migration instance.

    Fields are applied in declaration order (capacities → retargets →
    removals → additions; see :func:`apply_delta`).  Construction
    normalizes every field to tuples, so deltas are hashable and safe
    to share; ``capacity_changes`` accepts a mapping and is stored as
    ``(node, c_v)`` pairs sorted by node ``repr``.
    """

    add_moves: Tuple[Move, ...] = ()
    remove_moves: Tuple[Move, ...] = ()
    retarget_moves: Tuple[Retarget, ...] = ()
    capacity_changes: Tuple[Tuple[Node, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "add_moves", tuple(_as_move_tuple(m) for m in self.add_moves)
        )
        object.__setattr__(
            self, "remove_moves", tuple(_as_move_tuple(m) for m in self.remove_moves)
        )
        object.__setattr__(
            self,
            "retarget_moves",
            tuple(_as_retarget_tuple(r) for r in self.retarget_moves),
        )
        raw: Union[Mapping[Node, int], Iterable[Tuple[Node, int]]]
        raw = self.capacity_changes
        pairs = list(raw.items()) if isinstance(raw, Mapping) else [
            (node, c) for node, c in raw
        ]
        seen: Dict[str, Node] = {}
        for node, c in pairs:
            if not isinstance(c, int) or isinstance(c, bool) or c < 1:
                raise DeltaError(
                    f"capacity of {node!r} must be a positive int, got {c!r}"
                )
            text = repr(node)
            if text in seen:
                raise DeltaError(f"duplicate capacity change for node {node!r}")
            seen[text] = node
        object.__setattr__(
            self,
            "capacity_changes",
            tuple(sorted(pairs, key=lambda pair: repr(pair[0]))),
        )

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not (
            self.add_moves
            or self.remove_moves
            or self.retarget_moves
            or self.capacity_changes
        )

    @property
    def num_changes(self) -> int:
        """Total edit count (each retarget counts once)."""
        return (
            len(self.add_moves)
            + len(self.remove_moves)
            + len(self.retarget_moves)
            + len(self.capacity_changes)
        )

    def touched_nodes(self) -> Tuple[Node, ...]:
        """Every disk named by the delta, sorted by ``repr``."""
        by_repr: Dict[str, Node] = {}
        for u, v in self.add_moves:
            by_repr[repr(u)] = u
            by_repr[repr(v)] = v
        for u, v in self.remove_moves:
            by_repr[repr(u)] = u
            by_repr[repr(v)] = v
        for src, old, new in self.retarget_moves:
            by_repr[repr(src)] = src
            by_repr[repr(old)] = old
            by_repr[repr(new)] = new
        for node, _c in self.capacity_changes:
            by_repr[repr(node)] = node
        return tuple(by_repr[text] for text in sorted(by_repr))

    # ------------------------------------------------------------------
    def compose(self, later: "InstanceDelta") -> "InstanceDelta":
        """Fold a later delta into this one.

        Contract: ``apply_delta(apply_delta(inst, a), b)`` and
        ``apply_delta(inst, a.compose(b))`` produce *structurally*
        identical instances — same nodes, capacities and pair
        multiset, hence equal fingerprints — though the fresh edge ids
        may differ.  A later removal first cancels a pending addition
        of the same pair (additions carry the highest ids, so the
        cancelled edge is exactly the one the removal would take).
        """
        caps: Dict[Node, int] = {}
        by_repr: Dict[str, Node] = {}
        for node, c in self.capacity_changes + later.capacity_changes:
            text = repr(node)
            by_repr[text] = node
            caps[node] = c
        merged_caps = tuple(
            (by_repr[text], caps[by_repr[text]]) for text in sorted(by_repr)
        )

        adds: List[Move] = list(self.add_moves)
        removes: List[Move] = list(self.remove_moves)
        retargets: List[Retarget] = list(self.retarget_moves)
        for src, old, new in later.retarget_moves:
            for i in range(len(adds) - 1, -1, -1):
                if adds[i] == (src, old):
                    adds[i] = (src, new)
                    break
            else:
                retargets.append((src, old, new))
        for u, v in later.remove_moves:
            for i in range(len(adds) - 1, -1, -1):
                if adds[i] == (u, v):
                    del adds[i]
                    break
            else:
                removes.append((u, v))
        adds.extend(later.add_moves)
        return InstanceDelta(
            add_moves=tuple(adds),
            remove_moves=tuple(removes),
            retarget_moves=tuple(retargets),
            capacity_changes=merged_caps,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """JSON form; only deltas over ``str`` disk names round-trip."""
        for node in self.touched_nodes():
            if not isinstance(node, str):
                raise DeltaError(
                    f"to_json requires str disk names, got {node!r}; "
                    "use canonical_payload for digest-only use"
                )
        return {
            "schema_version": DELTA_SCHEMA_VERSION,
            "add": [[u, v] for u, v in self.add_moves],
            "remove": [[u, v] for u, v in self.remove_moves],
            "retarget": [[s, o, n] for s, o, n in self.retarget_moves],
            "capacities": [[node, c] for node, c in self.capacity_changes],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "InstanceDelta":
        version = data.get("schema_version")
        if version != DELTA_SCHEMA_VERSION:
            raise DeltaError(
                f"delta schema {version!r}; this build reads {DELTA_SCHEMA_VERSION}"
            )
        return cls(
            add_moves=tuple((u, v) for u, v in data.get("add", ())),
            remove_moves=tuple((u, v) for u, v in data.get("remove", ())),
            retarget_moves=tuple((s, o, n) for s, o, n in data.get("retarget", ())),
            capacity_changes=tuple((node, c) for node, c in data.get("capacities", ())),
        )

    def canonical_payload(self) -> Dict[str, Any]:
        """Digest-stable description with nodes rendered by ``repr``.

        Unlike :meth:`to_json` this works for any hashable node type,
        but it is one-way: reprs cannot be resolved back to nodes.
        Field order is preserved — it is part of the delta's identity.
        """
        return {
            "schema_version": DELTA_SCHEMA_VERSION,
            "add": [[repr(u), repr(v)] for u, v in self.add_moves],
            "remove": [[repr(u), repr(v)] for u, v in self.remove_moves],
            "retarget": [
                [repr(s), repr(o), repr(n)] for s, o, n in self.retarget_moves
            ],
            "capacities": [[repr(node), c] for node, c in self.capacity_changes],
        }


def apply_delta(instance: MigrationInstance, delta: InstanceDelta) -> MigrationInstance:
    """The patched instance: ``instance`` after one delta.

    Application order (fixed, documented, relied on by tests):

    1. **capacity changes** — re-provision ``c_v``; a change naming a
       disk the instance has never seen *introduces* that disk (idle
       until a move touches it);
    2. **retargets** — each ``(src, old, new)`` removes the highest-id
       parallel edge between ``src`` and ``old`` and adds a fresh
       ``(src, new)`` edge;
    3. **removals** — each ``(u, v)`` removes the highest-id parallel
       edge between ``u`` and ``v``;
    4. **additions** — fresh edges with fresh (strictly increasing)
       ids.

    Surviving edges keep their ids, so their pair-slot tokens are
    stable; the id high-water mark never decreases, so patched and
    original edge ids never alias.

    Raises:
        DeltaError: when a removal/retarget names a pair with no
            pending move, or a move touches a disk with no known
            capacity.
        InvalidInstanceError: if the patched capacities are invalid
            (propagated from :class:`MigrationInstance`).
    """
    graph = instance.graph.copy()
    capacities = instance.capacities

    for node, c in delta.capacity_changes:
        capacities[node] = c
        graph.add_node(node)

    def remove_one(u: Node, v: Node, kind: str) -> None:
        eids = graph.edges_between(u, v)
        if not eids:
            raise DeltaError(f"{kind} ({u!r}, {v!r}) matches no pending move")
        graph.remove_edge(max(eids))

    def require_known(node: Node) -> None:
        if node not in capacities:
            raise DeltaError(
                f"move touches unknown disk {node!r}; introduce it via "
                "capacity_changes first"
            )

    for src, old, new in delta.retarget_moves:
        remove_one(src, old, "retarget")
        require_known(src)
        require_known(new)
        graph.add_edge(src, new)

    for u, v in delta.remove_moves:
        remove_one(u, v, "remove")

    for u, v in delta.add_moves:
        require_known(u)
        require_known(v)
        graph.add_edge(u, v)

    return MigrationInstance(graph, capacities)
