"""Optimal migration scheduling for even transfer constraints.

Section IV of the paper: when every ``c_v`` is even, a schedule with
exactly ``Δ' = max_v ceil(d_v / c_v)`` rounds — matching lower bound
LB1, hence optimal — is computable in polynomial time:

1. **Augment** (generalized Petersen argument): add self-loops, then
   pair leftover odd-degree nodes with dummy edges, so every node's
   degree becomes exactly ``c_v · Δ'`` (an even number).
2. **Euler cycle**: all degrees even, so an Euler circuit exists per
   component; orient edges along it.  Every node gets ``c_v·Δ'/2``
   outgoing and ``c_v·Δ'/2`` incoming edges.
3. **Bipartite graph H**: split ``v`` into ``v_out``/``v_in``; an edge
   oriented ``u -> v`` becomes ``(u_out, v_in)``.
4. **Peel matchings** (Figure 3 / Lemmas 4.1–4.2): repeatedly extract a
   subgraph matching each ``v_out``/``v_in`` exactly ``c_v/2`` times
   via max-flow; feasibility is certified by the fractional flow
   ``1/(Δ'-i)`` per remaining edge, and integrality makes it integral.
5. **Schedule**: each extracted matching, minus augmentation edges, is
   one round; a node sees ``c_v/2 + c_v/2 = c_v`` edge-ends per round
   (Lemma 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.errors import InvalidInstanceError, SolverError
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.euler import euler_orientation
from repro.graphs.matching import InfeasibleMatchingError, degree_constrained_subgraph
from repro.graphs.multigraph import EdgeId, Multigraph, Node


def even_optimal_schedule(instance: MigrationInstance) -> MigrationSchedule:
    """Compute an optimal (``Δ'``-round) schedule; all ``c_v`` even.

    Raises:
        InvalidInstanceError: if some transfer constraint is odd.
        SolverError: if an internal feasibility invariant breaks
            (should never happen; kept as a loud guard).
    """
    if not instance.all_even():
        odd = [v for v, c in instance.capacities.items() if c % 2 == 1]
        raise InvalidInstanceError(
            f"even-capacity algorithm requires even c_v; odd at {odd[:5]}"
        )
    if instance.num_items == 0:
        return MigrationSchedule([], method="even_optimal")

    delta_prime = instance.delta_prime()
    work, real_edges = _augment_to_regular(instance, delta_prime)
    orientation = euler_orientation(work)

    # Bipartite H: one edge (u_out, v_in) per oriented edge.
    bip_edges: List[Tuple[Tuple[str, Node], Tuple[str, Node]]] = []
    bip_eids: List[EdgeId] = []
    for eid, (tail, head) in orientation.items():
        bip_edges.append((("out", tail), ("in", head)))
        bip_eids.append(eid)

    left_quota = {("out", v): instance.capacity(v) // 2 for v in work.nodes}
    right_quota = {("in", v): instance.capacity(v) // 2 for v in work.nodes}

    remaining = list(range(len(bip_edges)))
    rounds: List[List[EdgeId]] = []
    for step in range(delta_prime):
        sub = [bip_edges[i] for i in remaining]
        try:
            picked = degree_constrained_subgraph(sub, left_quota, right_quota)
        except InfeasibleMatchingError as exc:
            raise SolverError(
                f"matching peel {step}/{delta_prime} infeasible: {exc}"
            ) from exc
        picked_global = {remaining[i] for i in picked}
        rounds.append(
            [bip_eids[i] for i in sorted(picked_global) if bip_eids[i] in real_edges]
        )
        remaining = [i for i in remaining if i not in picked_global]
    if remaining:
        raise SolverError(f"{len(remaining)} augmented edges left after Δ' peels")

    schedule = MigrationSchedule(rounds, method="even_optimal")
    return schedule


def _augment_to_regular(
    instance: MigrationInstance, delta_prime: int
) -> Tuple[Multigraph, set]:
    """Step 1: make ``deg(v) = c_v · Δ'`` for every node.

    Returns the augmented graph and the set of original edge ids.
    ``c_v·Δ'`` is even (``c_v`` even), and self-loops change degree by
    2, so after looping each node sits at its target or one below; the
    one-below nodes are exactly those with odd original degree, whose
    count is even, so they can be paired with dummy edges.
    """
    work = instance.graph.copy()
    real_edges = set(work.edge_ids())
    deficient: List[Node] = []
    for v in work.nodes:
        target = instance.capacity(v) * delta_prime
        if work.degree(v) > target:
            raise SolverError(
                f"degree {work.degree(v)} of {v!r} exceeds c_v·Δ' = {target}"
            )
        while work.degree(v) <= target - 2:
            work.add_edge(v, v)
        if work.degree(v) == target - 1:
            deficient.append(v)
    if len(deficient) % 2 != 0:
        raise SolverError("odd number of deficient nodes; parity argument violated")
    for i in range(0, len(deficient), 2):
        work.add_edge(deficient[i], deficient[i + 1])
    return work, real_edges
