"""Optimal migration scheduling for even transfer constraints.

Section IV of the paper: when every ``c_v`` is even, a schedule with
exactly ``Δ' = max_v ceil(d_v / c_v)`` rounds — matching lower bound
LB1, hence optimal — is computable in polynomial time:

1. **Augment** (generalized Petersen argument): add self-loops, then
   pair leftover odd-degree nodes with dummy edges, so every node's
   degree becomes exactly ``c_v · Δ'`` (an even number).
2. **Euler cycle**: all degrees even, so an Euler circuit exists per
   component; orient edges along it.  Every node gets ``c_v·Δ'/2``
   outgoing and ``c_v·Δ'/2`` incoming edges.
3. **Bipartite graph H**: split ``v`` into ``v_out``/``v_in``; an edge
   oriented ``u -> v`` becomes ``(u_out, v_in)``.
4. **Peel matchings** (Figure 3 / Lemmas 4.1–4.2): repeatedly extract a
   subgraph matching each ``v_out``/``v_in`` exactly ``c_v/2`` times
   via max-flow; feasibility is certified by the fractional flow
   ``1/(Δ'-i)`` per remaining edge, and integrality makes it integral.
5. **Schedule**: each extracted matching, minus augmentation edges, is
   one round; a node sees ``c_v/2 + c_v/2 = c_v`` edge-ends per round
   (Lemma 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import InvalidInstanceError, SolverError
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.graphs.array_backend import CompactInstance
from repro.graphs.euler import compact_euler_orientation, euler_orientation
from repro.graphs.matching import (
    InfeasibleMatchingError,
    QuotaPeeler,
    degree_constrained_subgraph,
)
from repro.graphs.multigraph import EdgeId, Multigraph, Node


def even_optimal_schedule(instance: MigrationInstance) -> MigrationSchedule:
    """Compute an optimal (``Δ'``-round) schedule; all ``c_v`` even.

    Raises:
        InvalidInstanceError: if some transfer constraint is odd.
        SolverError: if an internal feasibility invariant breaks
            (should never happen; kept as a loud guard).
    """
    if not instance.all_even():
        odd = [v for v, c in instance.capacities.items() if c % 2 == 1]
        raise InvalidInstanceError(
            f"even-capacity algorithm requires even c_v; odd at {odd[:5]}"
        )
    if instance.num_items == 0:
        return MigrationSchedule([], method="even_optimal")

    delta_prime = instance.delta_prime()
    work, real_edges = _augment_to_regular(instance, delta_prime)
    orientation = euler_orientation(work)

    # Bipartite H: one edge (u_out, v_in) per oriented edge.
    bip_edges: List[Tuple[Tuple[str, Node], Tuple[str, Node]]] = []
    bip_eids: List[EdgeId] = []
    for eid, (tail, head) in orientation.items():
        bip_edges.append((("out", tail), ("in", head)))
        bip_eids.append(eid)

    left_quota = {("out", v): instance.capacity(v) // 2 for v in work.nodes}
    right_quota = {("in", v): instance.capacity(v) // 2 for v in work.nodes}

    remaining = list(range(len(bip_edges)))
    rounds: List[List[EdgeId]] = []
    for step in range(delta_prime):
        sub = [bip_edges[i] for i in remaining]
        try:
            picked = degree_constrained_subgraph(sub, left_quota, right_quota)
        except InfeasibleMatchingError as exc:
            raise SolverError(
                f"matching peel {step}/{delta_prime} infeasible: {exc}"
            ) from exc
        picked_global = {remaining[i] for i in picked}
        rounds.append(
            [bip_eids[i] for i in sorted(picked_global) if bip_eids[i] in real_edges]
        )
        remaining = [i for i in remaining if i not in picked_global]
    if remaining:
        raise SolverError(f"{len(remaining)} augmented edges left after Δ' peels")

    schedule = MigrationSchedule(rounds, method="even_optimal")
    return schedule


def even_optimal_schedule_compact(ci: CompactInstance) -> MigrationSchedule:
    """Array-backend :func:`even_optimal_schedule` (byte-identical).

    Same five steps, mirrored onto flat arrays:

    1. Augmentation is arithmetic — loop counts and deficiency flags
       come straight off the degree/capacity arrays, and the augmented
       CSR rows are emitted in exactly the order the object engine's
       ``add_edge`` calls would have produced (original row, then the
       node's self-loops, then its pairing edge).
    2. The Euler walk runs over those rows
       (:func:`compact_euler_orientation`), reproducing the object
       circuit discovery order.
    3. The oriented bipartite edge list is the orientation order.
    4. The ``Δ'`` matching peels run on one persistent
       :class:`~repro.graphs.matching.QuotaPeeler` instead of a
       freshly built ``FlowNetwork`` per peel.
    5. Rounds lift augmented edge indices ``< num_edges`` (the real
       edges) back to edge ids.
    """
    if not ci.all_even():
        capacities = ci.source.capacities
        odd = [v for v, c in capacities.items() if c % 2 == 1]
        raise InvalidInstanceError(
            f"even-capacity algorithm requires even c_v; odd at {odd[:5]}"
        )
    graph = ci.graph
    m = graph.num_edges
    if m == 0:
        return MigrationSchedule([], method="even_optimal")

    delta_prime = ci.delta_prime()
    caps = ci.capacities
    n = graph.num_nodes

    # Step 1: augment to c_v * delta' degrees, arithmetically.
    loops: List[int] = []
    deficient: List[int] = []
    for v in range(n):
        target = caps[v] * delta_prime
        deg = graph.degree[v]
        if deg > target:
            raise SolverError(
                f"degree {deg} of {graph.nodes[v]!r} exceeds c_v·Δ' = {target}"
            )
        loops.append((target - deg) // 2)
        if (target - deg) % 2 == 1:
            deficient.append(v)
    if len(deficient) % 2 != 0:
        raise SolverError("odd number of deficient nodes; parity argument violated")

    # Augmented edge numbering: per-node self-loops in node order, then
    # pairing edges — the exact creation order of _augment_to_regular.
    pair_of = [-1] * n
    pair_edge = [-1] * n
    aug_edges = m
    for v in range(n):
        aug_edges += loops[v]
    for i in range(0, len(deficient), 2):
        a, b = deficient[i], deficient[i + 1]
        pair_of[a] = b
        pair_of[b] = a
        pair_edge[a] = aug_edges
        pair_edge[b] = aug_edges
        aug_edges += 1

    # Augmented CSR rows: original row ++ own loops ++ pairing edge.
    indptr: List[int] = [0]
    inc_edge: List[int] = []
    inc_other: List[int] = []
    degree: List[int] = []
    src_indptr, src_inc_edge, src_inc_other = (
        graph.indptr,
        graph.inc_edge,
        graph.inc_other,
    )
    loop_base = m
    for v in range(n):
        lo, hi = src_indptr[v], src_indptr[v + 1]
        inc_edge.extend(src_inc_edge[lo:hi])
        inc_other.extend(src_inc_other[lo:hi])
        for k in range(loops[v]):
            inc_edge.append(loop_base + k)
            inc_other.append(v)
        loop_base += loops[v]
        if pair_edge[v] >= 0:
            inc_edge.append(pair_edge[v])
            inc_other.append(pair_of[v])
        indptr.append(len(inc_edge))
        degree.append(caps[v] * delta_prime)

    # Steps 2-3: orient along Euler circuits; the orientation insertion
    # order is the bipartite edge list order.
    order, tail, head = compact_euler_orientation(
        indptr, inc_edge, inc_other, degree, aug_edges
    )

    half = [c // 2 for c in caps]
    peeler = QuotaPeeler(
        half, half, [tail[e] for e in order], [head[e] for e in order]
    )

    # Step 4: peel delta' matchings on the persistent network.
    # ``remaining`` stays an ascending numpy index array: peel returns
    # ascending positions, so ``remaining[picked]`` is already the
    # sorted picked-global order the object loop produces.
    remaining = np.arange(len(order), dtype=np.int64)
    rounds: List[List[EdgeId]] = []
    edge_ids = graph.edge_ids
    for step in range(delta_prime):
        try:
            picked = peeler.peel(remaining)
        except InfeasibleMatchingError as exc:
            raise SolverError(
                f"matching peel {step}/{delta_prime} infeasible: {exc}"
            ) from exc
        picked_np = np.asarray(picked, dtype=np.int64)
        rnd: List[EdgeId] = []
        for i in remaining[picked_np].tolist():
            e = order[i]
            if e < m:
                rnd.append(edge_ids[e])
        rounds.append(rnd)
        keep = np.ones(remaining.shape[0], dtype=bool)
        keep[picked_np] = False
        remaining = remaining[keep]
    if remaining.size:
        raise SolverError(f"{remaining.size} augmented edges left after Δ' peels")

    return MigrationSchedule(rounds, method="even_optimal")


def _augment_to_regular(
    instance: MigrationInstance, delta_prime: int
) -> Tuple[Multigraph, set]:
    """Step 1: make ``deg(v) = c_v · Δ'`` for every node.

    Returns the augmented graph and the set of original edge ids.
    ``c_v·Δ'`` is even (``c_v`` even), and self-loops change degree by
    2, so after looping each node sits at its target or one below; the
    one-below nodes are exactly those with odd original degree, whose
    count is even, so they can be paired with dummy edges.
    """
    work = instance.graph.copy()
    real_edges = set(work.edge_ids())
    deficient: List[Node] = []
    for v in work.nodes:
        target = instance.capacity(v) * delta_prime
        if work.degree(v) > target:
            raise SolverError(
                f"degree {work.degree(v)} of {v!r} exceeds c_v·Δ' = {target}"
            )
        while work.degree(v) <= target - 2:
            work.add_edge(v, v)
        if work.degree(v) == target - 1:
            deficient.append(v)
    if len(deficient) % 2 != 0:
        raise SolverError("odd number of deficient nodes; parity argument violated")
    for i in range(0, len(deficient), 2):
        work.add_edge(deficient[i], deficient[i + 1])
    return work, real_edges
