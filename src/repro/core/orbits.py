"""Orbit structures of Section V (Definitions 5.3–5.7).

Given a partial capacitated coloring, the uncolored edges induce
subgraphs whose structure dictates what progress is possible:

* **balancing orbit** — an uncolored component containing a node that
  *strongly* misses some color (Definition 5.3).  Lemma 5.1: an
  uncolored edge can then always be colored (possibly after an ab-path
  flip).
* **color orbit** — an uncolored component with two nodes *lightly*
  missing the same color (Definition 5.4).  Lemma 5.2: ditto.
* **bad / lean edges** (Definition 5.5) — parallel uncolored edges,
  which Phase 1 must eliminate so the residual graph ``G₀`` is simple.
* **hard orbit** — a tight component where neither structure exists;
  Lemma 5.4 says such a component either grows or exhibits a Δ- or
  Γ-**witness** (Definition 5.7), certifying that the current palette
  is within the theorem's budget and may be enlarged.

This module provides pure *detection* (no mutation); the moves
themselves live in :mod:`repro.core.recolor` and the driving loop in
:mod:`repro.core.general`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.recolor import ArrayColoringState, ColoringState
from repro.graphs.multigraph import EdgeId, Node


@dataclass
class OrbitReport:
    """Classification of one uncolored component."""

    nodes: Set[Node]
    edges: List[EdgeId]
    kind: str  # "balancing" | "color" | "hard"
    # For balancing orbits: a (node, strongly missing color) pair.
    strong_node: Optional[Tuple[Node, int]] = None
    # For color orbits: (node_a, node_b, jointly lightly missing color).
    light_pair: Optional[Tuple[Node, Node, int]] = None
    has_bad_edges: bool = False


def uncolored_components(state: ColoringState) -> List[OrbitReport]:
    """Group uncolored edges into connected components and classify.

    Components are connected via uncolored edges only, matching the
    node-induced-by-uncolored-edges notion the paper's orbits use.
    """
    graph = state.graph
    # Adjacency restricted to uncolored edges.
    adj: Dict[Node, List[Tuple[EdgeId, Node]]] = {}
    for eid in sorted(state.uncolored):
        u, v = graph.endpoints(eid)
        adj.setdefault(u, []).append((eid, v))
        adj.setdefault(v, []).append((eid, u))

    seen: Set[Node] = set()
    reports: List[OrbitReport] = []
    for start in adj:
        if start in seen:
            continue
        nodes: Set[Node] = {start}
        edges: Set[EdgeId] = set()
        stack = [start]
        seen.add(start)
        while stack:
            x = stack.pop()
            for eid, y in adj.get(x, ()):  # noqa: B023 - local structure
                edges.add(eid)
                if y not in seen:
                    seen.add(y)
                    nodes.add(y)
                    stack.append(y)
        reports.append(_classify(state, nodes, sorted(edges)))
    return reports


def _classify(state: ColoringState, nodes: Set[Node], edges: List[EdgeId]) -> OrbitReport:
    strong = find_strongly_missing(state, nodes)
    if strong is not None:
        return OrbitReport(
            nodes, edges, "balancing", strong_node=strong,
            has_bad_edges=_has_bad_edges(state, edges),
        )
    pair = find_shared_lightly_missing(state, nodes)
    if pair is not None:
        return OrbitReport(
            nodes, edges, "color", light_pair=pair,
            has_bad_edges=_has_bad_edges(state, edges),
        )
    return OrbitReport(nodes, edges, "hard", has_bad_edges=_has_bad_edges(state, edges))


def find_strongly_missing(
    state: ColoringState, nodes: Set[Node]
) -> Optional[Tuple[Node, int]]:
    """A (node, color) with the color strongly missing, if any."""
    for v in sorted(nodes, key=repr):
        for c in range(state.q):
            if state.is_strongly_missing(v, c):
                return (v, c)
    return None


def find_shared_lightly_missing(
    state: ColoringState, nodes: Set[Node]
) -> Optional[Tuple[Node, Node, int]]:
    """Two nodes lightly missing the same color, if any."""
    owner: Dict[int, Node] = {}
    for v in sorted(nodes, key=repr):
        for c in range(state.q):
            if state.is_lightly_missing(v, c):
                if c in owner and owner[c] != v:
                    return (owner[c], v, c)
                owner.setdefault(c, v)
    return None


def _has_bad_edges(state: ColoringState, edges: List[EdgeId]) -> bool:
    pairs: Set[Tuple[Node, Node]] = set()
    for eid in edges:
        u, v = state.graph.endpoints(eid)
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if key in pairs:
            return True
        pairs.add(key)
    return False


def bad_edge_groups(state: ColoringState) -> List[List[EdgeId]]:
    """Groups of parallel uncolored edges (Definition 5.5's bad edges)."""
    groups: Dict[Tuple[Node, Node], List[EdgeId]] = {}
    for eid in sorted(state.uncolored):
        u, v = state.graph.endpoints(eid)
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        groups.setdefault(key, []).append(eid)
    return [g for g in groups.values() if len(g) > 1]


# ----------------------------------------------------------------------
# Witness diagnostics (Definition 5.7) — used by the driver to justify
# palette growth and by the benchmarks to report why q increased.
# ----------------------------------------------------------------------

def free_colors_of_orbit(state: ColoringState, report: OrbitReport) -> Set[int]:
    """Colors not used by any colored edge inside the orbit."""
    used: Set[int] = set()
    graph = state.graph
    for v in report.nodes:
        for c, eids in state.edges_at[v].items():
            for eid in eids:
                other = graph.other_endpoint(eid, v)
                if other in report.nodes:
                    used.add(c)
    return set(range(state.q)) - used


def is_delta_witness(state: ColoringState, report: OrbitReport) -> bool:
    """Δ-witness: some node of the orbit misses no free color."""
    free = free_colors_of_orbit(state, report)
    for v in report.nodes:
        if not any(state.is_missing(v, c) for c in free):
            return True
    return False


def is_gamma_witness(state: ColoringState, report: OrbitReport) -> bool:
    """Γ-witness: every free color of the orbit is full.

    A color is *full* in an orbit ``O`` when at most one vertex of
    ``O`` still has a slot for it, i.e.
    ``Σ_v E_c(v) >= Σ_v c_v - 1`` over ``O`` — it cannot color an
    uncolored edge inside ``O``.
    """
    free = free_colors_of_orbit(state, report)
    if not free:
        return True
    cap_sum = sum(state.cap[v] for v in report.nodes)
    # All colors are checked and the boolean verdict is order-independent.
    for c in free:  # repro: allow-set-iter
        used = sum(state.count(v, c) for v in report.nodes)
        if used < cap_sum - 1:
            return False
    return True


# ----------------------------------------------------------------------
# Array backend (byte-identical mirrors over ArrayColoringState).
# Reports carry node *indices* in ``nodes`` and edge *indices* (sorted
# by edge id, matching the object reports' id-sorted edge lists) in
# ``edges``; the general driver only consumes ``kind`` and the node
# count, which agree with the object reports by construction.
# ----------------------------------------------------------------------

def compact_uncolored_components(state: ArrayColoringState) -> List[OrbitReport]:
    """Array mirror of :func:`uncolored_components`."""
    graph = state.graph
    edge_u, edge_v = graph.edge_u, graph.edge_v
    adj: Dict[int, List[Tuple[int, int]]] = {}
    for e in state.uncolored_in_id_order():
        u, v = edge_u[e], edge_v[e]
        adj.setdefault(u, []).append((e, v))
        adj.setdefault(v, []).append((e, u))

    seen: Set[int] = set()
    reports: List[OrbitReport] = []
    for start in adj:
        if start in seen:
            continue
        nodes: Set[int] = {start}
        edges: Set[int] = set()
        stack = [start]
        seen.add(start)
        while stack:
            x = stack.pop()
            for e, y in adj.get(x, ()):  # noqa: B023 - local structure
                edges.add(e)
                if y not in seen:
                    seen.add(y)
                    nodes.add(y)
                    stack.append(y)
        reports.append(
            _compact_classify(
                state, nodes, sorted(edges, key=graph.edge_ids.__getitem__)
            )
        )
    return reports


def _compact_classify(
    state: ArrayColoringState, nodes: Set[int], edges: List[int]
) -> OrbitReport:
    strong = compact_find_strongly_missing(state, nodes)
    if strong is not None:
        return OrbitReport(
            nodes, edges, "balancing", strong_node=strong,
            has_bad_edges=_compact_has_bad_edges(state, edges),
        )
    pair = compact_find_shared_lightly_missing(state, nodes)
    if pair is not None:
        return OrbitReport(
            nodes, edges, "color", light_pair=pair,
            has_bad_edges=_compact_has_bad_edges(state, edges),
        )
    return OrbitReport(
        nodes, edges, "hard", has_bad_edges=_compact_has_bad_edges(state, edges)
    )


def compact_find_strongly_missing(
    state: ArrayColoringState, nodes: Set[int]
) -> Optional[Tuple[int, int]]:
    """Array mirror of :func:`find_strongly_missing`.

    ``sorted(nodes, key=repr)`` becomes a sort by cached repr rank —
    the same order whenever node reprs are unique (the fingerprint
    precondition).
    """
    rank = state.graph.repr_rank()
    for v in sorted(nodes, key=rank.__getitem__):
        for c in range(state.q):
            if state.is_strongly_missing(v, c):
                return (v, c)
    return None


def compact_find_shared_lightly_missing(
    state: ArrayColoringState, nodes: Set[int]
) -> Optional[Tuple[int, int, int]]:
    """Array mirror of :func:`find_shared_lightly_missing`."""
    rank = state.graph.repr_rank()
    owner: Dict[int, int] = {}
    for v in sorted(nodes, key=rank.__getitem__):
        for c in range(state.q):
            if state.is_lightly_missing(v, c):
                if c in owner and owner[c] != v:
                    return (owner[c], v, c)
                owner.setdefault(c, v)
    return None


def _compact_has_bad_edges(state: ArrayColoringState, edges: List[int]) -> bool:
    graph = state.graph
    rank = graph.repr_rank()
    pairs: Set[Tuple[int, int]] = set()
    for e in edges:
        u, v = graph.edge_u[e], graph.edge_v[e]
        key = (u, v) if rank[u] <= rank[v] else (v, u)
        if key in pairs:
            return True
        pairs.add(key)
    return False


def compact_bad_edge_groups(state: ArrayColoringState) -> List[List[int]]:
    """Array mirror of :func:`bad_edge_groups` (edge indices)."""
    graph = state.graph
    rank = graph.repr_rank()
    groups: Dict[Tuple[int, int], List[int]] = {}
    for e in state.uncolored_in_id_order():
        u, v = graph.edge_u[e], graph.edge_v[e]
        key = (u, v) if rank[u] <= rank[v] else (v, u)
        groups.setdefault(key, []).append(e)
    return [g for g in groups.values() if len(g) > 1]


def compact_free_colors_of_orbit(
    state: ArrayColoringState, report: OrbitReport
) -> Set[int]:
    """Array mirror of :func:`free_colors_of_orbit` (set result)."""
    used: Set[int] = set()
    graph = state.graph
    # Set iteration below: the union being built is order-independent.
    for v in report.nodes:  # repro: allow-set-iter
        for c, eids in state.edges_at[v].items():
            for e in eids:
                other = graph.other_endpoint(e, v)
                if other in report.nodes:
                    used.add(c)
    return set(range(state.q)) - used


def compact_is_delta_witness(state: ArrayColoringState, report: OrbitReport) -> bool:
    """Array mirror of :func:`is_delta_witness` (boolean verdict)."""
    free = compact_free_colors_of_orbit(state, report)
    for v in report.nodes:  # repro: allow-set-iter
        if not any(state.is_missing(v, c) for c in free):
            return True
    return False


def compact_is_gamma_witness(state: ArrayColoringState, report: OrbitReport) -> bool:
    """Array mirror of :func:`is_gamma_witness` (boolean verdict)."""
    free = compact_free_colors_of_orbit(state, report)
    if not free:
        return True
    cap_sum = sum(state.cap[v] for v in report.nodes)
    for c in free:  # repro: allow-set-iter
        used = sum(state.count(v, c) for v in report.nodes)
        if used < cap_sum - 1:
            return False
    return True
