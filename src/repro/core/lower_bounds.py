"""The two lower bounds of Section III, with machine-checkable witnesses.

* ``LB1 = Δ' = max_v ceil(d_v / c_v)`` — a disk can move at most
  ``c_v`` items per round.
* ``LB2 = Γ' = max_{S ⊆ V} ceil(|E(S)| / floor(Σ_{v in S} c_v / 2))``
  — a round schedules at most ``floor(Σ_{v∈S} c_v / 2)`` edges inside
  ``S`` (Lemma 3.1).

``LB2`` maximizes over exponentially many subsets.  :func:`lb2_exact`
enumerates subsets and is intended for small graphs
(``n <= EXACT_LB2_NODE_LIMIT``);
:func:`lb2` evaluates a polynomial family of candidate subsets (node
pairs, components, capacity-aware peeling orders) and is a certified
lower bound — every candidate's value is a true bound, we simply may
not find the maximizing ``S``.  The benchmark ``bench_lb_bounds``
measures how often the heuristic matches the exact value.

Every bound comes in a witness-producing form (:func:`lb1_witness`,
:func:`lb2_witness`, :func:`lb2_exact_witness`): the returned node /
subset is a self-contained proof of the bound that
:mod:`repro.checks.certify` re-verifies without trusting this module.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Node

#: Node-count cutoff below which LB2 is computed by exhaustive subset
#: enumeration (``2^n`` subsets, each an ``O(m)`` scan — at 14 nodes
#: that is ~16k subsets, milliseconds; every doubling of the budget
#: costs 2×).  The single source of truth: :func:`lb2_exact`,
#: :func:`lower_bound` and :mod:`repro.checks.certify` all key off it,
#: so "exact when small" means the same thing everywhere.
EXACT_LB2_NODE_LIMIT = 14


def lb1(instance: MigrationInstance) -> int:
    """``Δ' = max_v ceil(d_v / c_v)``."""
    return instance.delta_prime()


def lb1_witness(instance: MigrationInstance) -> Tuple[Optional[Node], int]:
    """``(argmax_v ceil(d_v / c_v), Δ')``; ``(None, 0)`` if no nodes.

    Ties are broken toward the node with the smallest ``repr`` so the
    witness is reproducible across processes.
    """
    best_node: Optional[Node] = None
    best_value = 0
    for v in instance.graph.nodes:
        value = instance.constrained_degree(v)
        if value > best_value:
            best_node, best_value = v, value
        elif value == best_value and value > 0 and repr(v) < repr(best_node):
            best_node = v
    if best_value == 0:
        return (None, 0)
    return (best_node, best_value)


def subset_bound(instance: MigrationInstance, subset: Iterable[Node]) -> int:
    """The LB2 term for one subset ``S`` (0 if S has no internal edges).

    ``ceil(|E(S)| / floor(Σ c_v / 2))``; if the capacity sum inside S
    is < 2 no transfer can happen inside S at all, so any internal edge
    would make the instance infeasible — we return a harmless 0 for
    empty E(S) and raise otherwise.
    """
    nodes = set(subset)
    edges_inside = sum(
        1 for _eid, u, v in instance.graph.edges() if u in nodes and v in nodes
    )
    if edges_inside == 0:
        return 0
    half_capacity = sum(instance.capacity(v) for v in nodes) // 2
    if half_capacity == 0:
        raise ValueError(f"subset {nodes!r} has internal edges but capacity sum < 2")
    return math.ceil(edges_inside / half_capacity)


def lb2_exact(instance: MigrationInstance, max_nodes: int = EXACT_LB2_NODE_LIMIT) -> int:
    """Exact ``Γ'`` by exhaustive subset enumeration.

    Raises:
        ValueError: if the graph has more than ``max_nodes`` nodes
            (the enumeration is exponential).
    """
    return lb2_exact_witness(instance, max_nodes=max_nodes)[1]


def lb2_exact_witness(
    instance: MigrationInstance, max_nodes: int = EXACT_LB2_NODE_LIMIT
) -> Tuple[List[Node], int]:
    """Exact ``Γ'`` plus a maximizing subset (empty list when Γ' = 0).

    Enumerates *connected* subsets via the shared
    :func:`repro.exact.subsets.connected_node_subsets` iterator (also
    used by the branch-and-bound pruner).  That restriction is lossless:
    a disconnected maximizer splits into components whose half-capacities
    sum to at most the union's (floor superadditivity) and the mediant
    inequality then bounds the union's density term by its densest
    component — see :mod:`repro.exact.subsets`.

    Raises:
        ValueError: if the graph has more than ``max_nodes`` nodes
            (the enumeration is exponential).
    """
    # Imported lazily: repro.exact sits above repro.core in the layer
    # order, and its search module imports this one.
    from repro.exact.subsets import connected_node_subsets

    nodes = instance.graph.nodes
    if len(nodes) > max_nodes:
        raise ValueError(
            f"exact LB2 is exponential; graph has {len(nodes)} > {max_nodes} nodes"
        )
    best = 0
    best_subset: List[Node] = []
    for combo in connected_node_subsets(instance, min_size=2):
        value = subset_bound(instance, combo)
        if value > best:
            best = value
            best_subset = list(combo)
    return best_subset, best


def lb2(instance: MigrationInstance) -> int:
    """Heuristic (but certified) ``Γ'`` over candidate subsets.

    See :func:`lb2_witness` for the candidate family.
    """
    return lb2_witness(instance)[1]


def lb2_witness(instance: MigrationInstance) -> Tuple[List[Node], int]:
    """Heuristic ``Γ'`` plus the best witness subset found.

    Candidates evaluated:

    * every node pair with at least one edge (captures multiplicity
      hot-spots, the common binding case);
    * the whole node set and every connected component;
    * every prefix of a capacity-aware peeling order per component:
      repeatedly delete the node with the smallest
      ``internal_degree / c_v`` ratio, evaluating the bound after each
      deletion (generalizes the classic densest-subgraph peeling).

    Returns ``(subset, value)``; the subset is empty iff the value is 0.
    The subset is a *witness*: ``subset_bound(instance, subset)`` equals
    the returned value, so downstream certification never has to trust
    the maximization itself.
    """
    graph = instance.graph
    best = 0
    best_subset: List[Node] = []

    # Node pairs with edges.
    pair_edges: Dict[Tuple[Node, Node], int] = {}
    for _eid, u, v in graph.edges():
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        pair_edges[key] = pair_edges.get(key, 0) + 1
    for (u, v), m in pair_edges.items():
        half = (instance.capacity(u) + instance.capacity(v)) // 2
        if half > 0:
            value = math.ceil(m / half)
            if value > best:
                best = value
                best_subset = [u, v]

    # Components and their peeling prefixes.
    for component in graph.connected_components():
        if len(component) < 2:
            continue
        value = subset_bound(instance, component)
        if value > best:
            best = value
            best_subset = sorted(component, key=repr)
        peel_subset, peel_value = _peel(instance, component)
        if peel_value > best:
            best = peel_value
            best_subset = peel_subset
    return best_subset, best


def _peel(
    instance: MigrationInstance, component: Set[Node]
) -> Tuple[List[Node], int]:
    """Best LB2 prefix along a capacity-aware peeling of ``component``.

    Returns ``(subset, value)`` for the best prefix encountered.
    """
    graph = instance.graph
    nodes = set(component)
    # Zero-init counter; only read by key, order never escapes.
    internal_degree: Dict[Node, int] = {v: 0 for v in nodes}  # repro: allow-set-iter
    edges_inside = 0
    for _eid, u, v in graph.edges():
        if u in nodes and v in nodes:
            internal_degree[u] += 1
            internal_degree[v] += 1
            edges_inside += 1
    capacity_sum = sum(instance.capacity(v) for v in nodes)

    best = 0
    best_subset: List[Node] = []
    while len(nodes) >= 2 and edges_inside > 0:
        half = capacity_sum // 2
        if half > 0:
            value = math.ceil(edges_inside / half)
            if value > best:
                best = value
                best_subset = sorted(nodes, key=repr)
        # Remove the node contributing least density per unit capacity.
        victim = min(
            nodes, key=lambda v: (internal_degree[v] / instance.capacity(v), repr(v))
        )
        nodes.discard(victim)
        capacity_sum -= instance.capacity(victim)
        for eid in graph.incident_edges(victim):
            other = graph.other_endpoint(eid, victim)
            if other in nodes:
                internal_degree[other] -= 1
                edges_inside -= 1
        internal_degree.pop(victim, None)
    return best_subset, best


def lower_bound(instance: MigrationInstance, exact_small: bool = True) -> int:
    """``max(LB1, LB2)`` — the certified lower bound used everywhere.

    Args:
        exact_small: when the graph has at most
            :data:`EXACT_LB2_NODE_LIMIT` nodes, compute LB2 exactly
            instead of heuristically.
    """
    if exact_small and instance.graph.num_nodes <= EXACT_LB2_NODE_LIMIT:
        gamma = lb2_exact(instance, max_nodes=EXACT_LB2_NODE_LIMIT)
    else:
        gamma = lb2(instance)
    return max(lb1(instance), gamma)
