"""The legacy scheduling entry point (deprecated compatibility shim).

:func:`plan_migration` is the historical flat interface: give it an
instance and a method name, get a validated schedule back.  It is now
a **deprecated** thin delegation to the canonical API,
:func:`repro.plan` (:func:`repro.pipeline.plan`) — same staged
pipeline, same method names, same schedules::

    schedule = plan_migration(inst, method="auto", seed=0)      # legacy
    schedule = repro.plan(inst, method="auto", seed=0).schedule # canonical

The canonical call also returns stage/solver profiles, per-component
attribution, and accepts ``cache=``, ``parallel=``, ``certify=`` and
``tracer=``.  ``plan_migration`` emits one :class:`DeprecationWarning`
per process (see :mod:`repro.compat`) and keeps working — it will not
be removed while the paper-facing examples reference it — but new code
should call :func:`repro.plan`.

Method names:

* ``"auto"`` — per-component automatic selection: the optimal
  Section-IV scheduler where every ``c_v`` is even, the optimal
  bipartite scheduler on bipartite components, the Section-V
  ``(1 + o(1))``-approximation otherwise;
* anything else — a forced monolithic run of that algorithm, exactly
  as before the refactor.
"""

from __future__ import annotations

from typing import Optional

from repro.compat import warn_once
from repro.core.general import GeneralSolverStats
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.pipeline.planner import plan
from repro.pipeline.registry import solver_names

#: All accepted ``method=`` values.  Built from the pipeline's solver
#: registry, so registering a new solver extends this automatically.
METHODS = ("auto",) + solver_names()


def plan_migration(
    instance: MigrationInstance,
    method: str = "auto",
    seed: int = 0,
    stats: Optional[GeneralSolverStats] = None,
) -> MigrationSchedule:
    """Compute a migration schedule for ``instance``.

    .. deprecated:: 1.0
        Call :func:`repro.plan` and read ``.schedule`` instead; it
        takes the same ``method``/``seed`` arguments plus the pipeline
        features this shim cannot expose.

    Args:
        instance: transfer graph + per-disk constraints.
        method: one of :data:`METHODS`.  ``"auto"`` selects the best
            applicable solver per connected component; other values
            force that algorithm on the whole instance.
        seed: randomness seed (used by the general algorithm's sweeps;
            under ``"auto"`` each component draws a deterministic
            derived seed).
        stats: optional :class:`GeneralSolverStats` collector, filled
            when the general algorithm runs.

    Returns:
        A validated :class:`MigrationSchedule`.

    Raises:
        ValueError: for an unknown method.
    """
    warn_once(
        "plan_migration",
        "plan_migration() is deprecated; call repro.plan(...) and read "
        ".schedule (same method/seed arguments, plus caching, parallel "
        "solving, certification and tracing)",
    )
    return plan(instance, method=method, seed=seed, stats=stats).schedule
