"""The public scheduling entry point (compatibility wrapper).

:func:`plan_migration` is the historical flat interface: give it an
instance and a method name, get a validated schedule back.  Since the
pipeline refactor it is a thin delegation to
:func:`repro.pipeline.plan`, which stages the same work as
normalize → decompose → select → solve → merge and adds per-component
solver selection on ``"auto"`` (an even-capacity or bipartite
component inside a mixed instance now gets its optimal algorithm).

Callers who want stage timings, per-component attribution, plan
caching, parallel solving or lower-bound certification should call
:func:`repro.pipeline.plan` directly and read the
:class:`~repro.pipeline.planner.PlanResult`; this wrapper exists so
the large body of existing callers (and the paper-facing examples)
keep their one-line interface.

Method names:

* ``"auto"`` — per-component automatic selection: the optimal
  Section-IV scheduler where every ``c_v`` is even, the optimal
  bipartite scheduler on bipartite components, the Section-V
  ``(1 + o(1))``-approximation otherwise;
* anything else — a forced monolithic run of that algorithm, exactly
  as before the refactor.
"""

from __future__ import annotations

from typing import Optional

from repro.core.general import GeneralSolverStats
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.pipeline.planner import plan
from repro.pipeline.registry import solver_names

#: All accepted ``method=`` values.  Built from the pipeline's solver
#: registry, so registering a new solver extends this automatically.
METHODS = ("auto",) + solver_names()


def plan_migration(
    instance: MigrationInstance,
    method: str = "auto",
    seed: int = 0,
    stats: Optional[GeneralSolverStats] = None,
) -> MigrationSchedule:
    """Compute a migration schedule for ``instance``.

    Args:
        instance: transfer graph + per-disk constraints.
        method: one of :data:`METHODS`.  ``"auto"`` selects the best
            applicable solver per connected component; other values
            force that algorithm on the whole instance.
        seed: randomness seed (used by the general algorithm's sweeps;
            under ``"auto"`` each component draws a deterministic
            derived seed).
        stats: optional :class:`GeneralSolverStats` collector, filled
            when the general algorithm runs.

    Returns:
        A validated :class:`MigrationSchedule`.

    Raises:
        ValueError: for an unknown method.
    """
    return plan(instance, method=method, seed=seed, stats=stats).schedule
