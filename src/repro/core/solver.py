"""The public scheduling entry point.

:func:`plan_migration` dispatches to the right algorithm:

* every ``c_v`` even  → the optimal Section-IV scheduler;
* otherwise           → the Section-V ``(1 + o(1))``-approximation;

with explicit ``method=`` overrides for the baselines, the exact
brute-force solver and forced algorithm choices.  Every schedule
returned is validated against the instance before it leaves.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.baselines import (
    even_rounding_schedule,
    greedy_schedule,
    homogeneous_schedule,
    saia_schedule,
)
from repro.core.even_optimal import even_optimal_schedule
from repro.core.exact import exact_optimum
from repro.core.general import GeneralSolverStats, general_schedule
from repro.core.problem import MigrationInstance
from repro.core.schedule import MigrationSchedule
from repro.core.special_cases import (
    bipartite_optimal_schedule,
    is_bipartite_instance,
)

METHODS = (
    "auto",
    "even_optimal",
    "bipartite_optimal",
    "general",
    "saia",
    "homogeneous",
    "greedy",
    "even_rounding",
    "exact",
)


def plan_migration(
    instance: MigrationInstance,
    method: str = "auto",
    seed: int = 0,
    stats: Optional[GeneralSolverStats] = None,
) -> MigrationSchedule:
    """Compute a migration schedule for ``instance``.

    Args:
        instance: transfer graph + per-disk constraints.
        method: one of :data:`METHODS`.  ``"auto"`` picks the optimal
            even-capacity algorithm when all constraints are even and
            the general approximation otherwise.
        seed: randomness seed (used by the general algorithm's sweeps).
        stats: optional :class:`GeneralSolverStats` collector, filled
            when the general algorithm runs.

    Returns:
        A validated :class:`MigrationSchedule`.

    Raises:
        ValueError: for an unknown method.
    """
    if method == "auto":
        if instance.all_even():
            method = "even_optimal"
        elif is_bipartite_instance(instance):
            # Bipartite transfer graphs (disk add/remove shapes) are
            # optimally solvable for arbitrary c_v — see special_cases.
            method = "bipartite_optimal"
        else:
            method = "general"

    if method == "even_optimal":
        schedule = even_optimal_schedule(instance)
    elif method == "bipartite_optimal":
        schedule = bipartite_optimal_schedule(instance)
    elif method == "general":
        schedule = general_schedule(instance, seed=seed, stats=stats)
    elif method == "saia":
        schedule = saia_schedule(instance)
    elif method == "homogeneous":
        schedule = homogeneous_schedule(instance)
    elif method == "greedy":
        schedule = greedy_schedule(instance)
    elif method == "even_rounding":
        schedule = even_rounding_schedule(instance)
    elif method == "exact":
        schedule = exact_optimum(instance)
    else:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")

    schedule.validate(instance)
    return schedule
