"""Span-based tracing: :class:`Tracer`, :class:`Span`, and the no-op.

A span is one named, timed region of work.  Spans nest: the tracer
keeps a stack of active spans, so the span opened inside another
records it as its parent, and a finished trace always forms a forest
(proved by a hypothesis property in the test suite).  Usage::

    tracer = Tracer(exporter=JsonlExporter("trace.jsonl"))
    with tracer.span("pipeline.plan", method="auto") as sp:
        ...
        sp.set("rounds", schedule.num_rounds)
    tracer.close()          # flush metric records, close the exporter

or as a decorator::

    @tracer.trace("solve")
    def solve(...): ...

**Determinism contract.**  Tracing is observation only: nothing in
this module feeds back into planning or execution, so a run with the
default :data:`NULL_TRACER` is bit-for-bit identical to an
uninstrumented build (the cross-``PYTHONHASHSEED`` harness proves
this).  Clocks are injectable and default to monotonic/CPU readings —
elapsed measurements, never the wall-clock date, which keeps the
determinism linter's ``wall-clock`` rule green.

Span ids are assigned sequentially per tracer, so two traces of the
same deterministic run differ only in their timing floats.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Type, TypeVar

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Clock

F = TypeVar("F", bound=Callable[..., Any])

#: Trace wire-format version (see :mod:`repro.obs.schema`).
TRACE_SCHEMA_VERSION = 1


class Exporter:
    """Where finished spans and metric records go.

    Concrete exporters live in :mod:`repro.obs.export`; anything with
    this duck type works.
    """

    def export(self, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - optional hook
        pass


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    t0: float = 0.0
    wall: float = 0.0
    cpu: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set(self, key: Optional[str] = None, value: Any = None, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the span.

        Accepts one positional ``key, value`` pair, keyword attributes,
        or both: ``span.set("rounds", 3)`` and ``span.set(rounds=3)``
        are equivalent.
        """
        if key is not None:
            self.attrs[key] = value
        self.attrs.update(attrs)

    def to_record(self) -> Dict[str, Any]:
        """The span's JSON-ready wire form."""
        return {
            "kind": "span",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "t0": self.t0,
            "wall": self.wall,
            "cpu": self.cpu,
            "attrs": dict(self.attrs),
        }


class _ActiveSpan:
    """Context manager binding a :class:`Span` to its tracer's stack."""

    __slots__ = ("_tracer", "span", "_cpu_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._cpu_start = 0.0

    def set(self, key: Optional[str] = None, value: Any = None, **attrs: Any) -> None:
        self.span.set(key, value, **attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        self.span.t0 = self._tracer._now()
        self._cpu_start = self._tracer._cpu_now()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.span.wall = self._tracer._now() - self.span.t0
        self.span.cpu = self._tracer._cpu_now() - self._cpu_start
        if exc_type is not None:
            self.span.set("error", exc_type.__name__)
        self._tracer._pop(self.span)


class Tracer:
    """Creates spans, owns a metrics registry, feeds an exporter.

    Args:
        exporter: receives one record per finished span, plus one
            record per metric instrument at :meth:`close`.  ``None``
            keeps spans purely in-memory (``finished`` spans are still
            countable via metrics the caller records).
        clock: monotonic seconds source (injectable for tests).
        cpu_clock: CPU seconds source (injectable for tests).
    """

    #: Whether spans and metrics are actually recorded.
    enabled: bool = True

    def __init__(
        self,
        exporter: Optional[Exporter] = None,
        clock: Clock = time.perf_counter,
        cpu_clock: Clock = time.process_time,
    ) -> None:
        self._exporter = exporter
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._epoch = clock()
        self._next_id = 1
        self._stack: List[Span] = []
        self._closed = False
        self.metrics = MetricsRegistry()

    # -- clock plumbing --------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._epoch

    def _cpu_now(self) -> float:
        return self._cpu_clock()

    # -- span lifecycle ---------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            attrs=dict(attrs),
        )
        self._next_id += 1
        return _ActiveSpan(self, span)

    def _push(self, span: Span) -> None:
        # Late parenting: span() captured the parent at creation, but a
        # with-statement may enter spans created earlier; re-resolve so
        # nesting always reflects entry order.
        if self._stack and span.parent_id != self._stack[-1].span_id:
            span.parent_id = self._stack[-1].span_id
        elif not self._stack:
            span.parent_id = None
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # mis-nested exit: drop through to it
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        if self._exporter is not None:
            self._exporter.export(span.to_record())

    def trace(self, name: Optional[str] = None) -> Callable[[F], F]:
        """Decorator form: wrap every call of ``fn`` in a span."""

        def decorate(fn: F) -> F:
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper  # type: ignore[return-value]

        return decorate

    # -- metrics convenience ----------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # -- teardown -----------------------------------------------------------
    def close(self) -> None:
        """Flush metric records to the exporter and close it.

        Idempotent; safe to call with spans still open (they simply
        export when they exit, after which the exporter may be gone —
        close last).
        """
        if self._closed:
            return
        self._closed = True
        if self._exporter is not None:
            for record in self.metrics.to_records():
                self._exporter.export(record)
            self._exporter.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class _NullSpan:
    """The shared do-nothing active span."""

    __slots__ = ()

    def set(self, key: Optional[str] = None, value: Any = None, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The default tracer: every operation is a no-op.

    A single shared span object is handed out, no clock is read, no
    metric is allocated — instrumented code paths cost a method call
    and nothing else when tracing is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(exporter=None, clock=lambda: 0.0, cpu_clock=lambda: 0.0)

    def span(self, name: str, **attrs: Any) -> Any:
        return _NULL_SPAN

    def trace(self, name: Optional[str] = None) -> Callable[[F], F]:
        def decorate(fn: F) -> F:
            return fn

        return decorate

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def close(self) -> None:
        pass


#: Process-wide no-op tracer; the default everywhere a ``tracer=``
#: parameter is accepted.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``tracer`` itself, or the shared :data:`NULL_TRACER` for ``None``."""
    return tracer if tracer is not None else NULL_TRACER
