"""Trace schema: record shapes and the validator.

The JSONL trace format (version :data:`TRACE_SCHEMA_VERSION`) has five
record kinds, discriminated by ``kind``:

=============  =========================================================
kind           required fields
=============  =========================================================
``meta``       ``schema`` (int)
``span``       ``name`` (str), ``span`` (int ≥ 1), ``parent`` (int or
               null), ``t0``/``wall``/``cpu`` (numbers ≥ 0), ``attrs``
               (object)
``counter``    ``name`` (str), ``value`` (int ≥ 0)
``gauge``      ``name`` (str), ``value`` (number)
``histogram``  ``name`` (str), ``boundaries`` (sorted number list),
               ``counts`` (int list, ``len == len(boundaries) + 1``),
               ``sum`` (number), ``count`` (int)
=============  =========================================================

Beyond per-record shapes, :func:`validate_trace` checks the structural
invariant of the span stream: ids are unique and parent references
resolve to other spans in the trace without cycles — i.e. the spans
form a **forest**.  (Children are written before their parents, since
a span exports when it *closes*.)

Used by ``repro-migrate stats --validate`` and the CI trace-validation
step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.trace import TRACE_SCHEMA_VERSION

KINDS = ("meta", "span", "counter", "gauge", "histogram")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_span(record: Mapping[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(record.get("name"), str):
        errors.append(f"{where}: span needs a string 'name'")
    span_id = record.get("span")
    if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 1:
        errors.append(f"{where}: span id must be an int >= 1")
    parent = record.get("parent", "missing")
    if parent == "missing":
        errors.append(f"{where}: span needs a 'parent' (int or null)")
    elif parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
        errors.append(f"{where}: span parent must be an int or null")
    for key in ("t0", "wall", "cpu"):
        value = record.get(key)
        if not _is_number(value) or value < 0:
            errors.append(f"{where}: span {key!r} must be a number >= 0")
    if not isinstance(record.get("attrs"), dict):
        errors.append(f"{where}: span 'attrs' must be an object")


def _check_histogram(record: Mapping[str, Any], where: str, errors: List[str]) -> None:
    if not isinstance(record.get("name"), str):
        errors.append(f"{where}: histogram needs a string 'name'")
    bounds = record.get("boundaries")
    counts = record.get("counts")
    if not isinstance(bounds, list) or not all(_is_number(b) for b in bounds):
        errors.append(f"{where}: histogram 'boundaries' must be a number list")
    elif any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        errors.append(f"{where}: histogram boundaries must be strictly increasing")
    if not isinstance(counts, list) or not all(
        isinstance(c, int) and not isinstance(c, bool) and c >= 0 for c in counts
    ):
        errors.append(f"{where}: histogram 'counts' must be a non-negative int list")
    elif isinstance(bounds, list) and len(counts) != len(bounds) + 1:
        errors.append(
            f"{where}: histogram needs len(counts) == len(boundaries) + 1"
        )
    if not _is_number(record.get("sum")):
        errors.append(f"{where}: histogram 'sum' must be a number")
    count = record.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        errors.append(f"{where}: histogram 'count' must be an int >= 0")


def validate_record(record: Any, index: int) -> List[str]:
    """Shape-check one record; returns error strings (empty = valid)."""
    where = f"record {index}"
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    kind = record.get("kind")
    if kind not in KINDS:
        return [f"{where}: unknown kind {kind!r} (expected one of {KINDS})"]
    if kind == "meta":
        schema = record.get("schema")
        if not isinstance(schema, int) or isinstance(schema, bool):
            errors.append(f"{where}: meta needs an int 'schema'")
        elif schema != TRACE_SCHEMA_VERSION:
            errors.append(
                f"{where}: trace schema {schema} != supported {TRACE_SCHEMA_VERSION}"
            )
    elif kind == "span":
        _check_span(record, where, errors)
    elif kind in ("counter", "gauge"):
        if not isinstance(record.get("name"), str):
            errors.append(f"{where}: {kind} needs a string 'name'")
        value = record.get("value")
        if kind == "counter":
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(f"{where}: counter 'value' must be an int >= 0")
        elif not _is_number(value):
            errors.append(f"{where}: gauge 'value' must be a number")
    elif kind == "histogram":
        _check_histogram(record, where, errors)
    return errors


def _check_forest(records: Sequence[Mapping[str, Any]], errors: List[str]) -> None:
    """Span ids unique; parents resolve; parent links are acyclic."""
    parents: Dict[int, Optional[int]] = {}
    for i, record in enumerate(records):
        if record.get("kind") != "span":
            continue
        span_id = record.get("span")
        if not isinstance(span_id, int):
            continue  # shape error already reported
        if span_id in parents:
            errors.append(f"record {i}: duplicate span id {span_id}")
            continue
        parent = record.get("parent")
        parents[span_id] = parent if isinstance(parent, int) else None
    for span_id, parent in parents.items():
        if parent is not None and parent not in parents:
            errors.append(f"span {span_id}: parent {parent} not in trace")
    # Cycle walk: follow parents, marking visited roots.
    state: Dict[int, int] = {}  # 0 = in progress, 1 = done
    for start in parents:
        path: List[int] = []
        node: Optional[int] = start
        while node is not None and node in parents and node not in state:
            state[node] = 0
            path.append(node)
            node = parents[node]
            if node is not None and state.get(node) == 0:
                errors.append(f"span {start}: parent chain forms a cycle at {node}")
                break
        for visited in path:
            state[visited] = 1


def validate_trace(records: Sequence[Any]) -> List[str]:
    """Validate a full trace; returns all errors (empty = valid)."""
    errors: List[str] = []
    for i, record in enumerate(records):
        errors.extend(validate_record(record, i))
    _check_forest([r for r in records if isinstance(r, dict)], errors)
    return errors
