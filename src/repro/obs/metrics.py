"""Typed metrics: counters, gauges, histograms, and their registry.

Three deliberately small instrument types, one registry to own them:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a float set to the latest observation;
* :class:`Histogram` — observations bucketed against **fixed**
  boundaries chosen at creation time (boundaries never adapt to data,
  so two runs of the same workload always produce comparable buckets).

The registry is the single source of truth a :class:`~repro.obs.trace.Tracer`
and :class:`~repro.runtime.telemetry.RuntimeTelemetry` write into.  All
read paths (:meth:`MetricsRegistry.snapshot`, :meth:`to_records`,
:func:`render_prometheus`) iterate names in sorted order, so rendered
output is deterministic regardless of instrumentation order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries (seconds): micro to minute scale.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 60.0
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A float holding the most recent observation."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Observations bucketed against fixed boundaries.

    ``counts[i]`` counts observations ``<= boundaries[i]``; the final
    slot counts the overflow (``+Inf`` bucket).  Boundaries are fixed
    at construction and strictly increasing.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count")

    def __init__(
        self, name: str, boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing"
            )
        self.name = name
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per boundary plus the ``+Inf`` total."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Owns every instrument; get-or-create by name.

    A name is bound to exactly one instrument kind — asking for a
    counter named like an existing gauge is a bug and raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _check_unbound(self, name: str, want: str) -> None:
        kinds = (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        )
        for kind, table in kinds:
            if kind != want and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_unbound(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_unbound(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        if name not in self._histograms:
            self._check_unbound(name, "histogram")
            self._histograms[name] = Histogram(
                name, boundaries if boundaries is not None else DEFAULT_LATENCY_BUCKETS
            )
        return self._histograms[name]

    # ------------------------------------------------------------------
    # deterministic read views
    # ------------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, int]:
        """Counter values in name order."""
        return {k: self._counters[k].value for k in sorted(self._counters)}

    @property
    def gauges(self) -> Dict[str, float]:
        return {k: self._gauges[k].value for k in sorted(self._gauges)}

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return {k: self._histograms[k] for k in sorted(self._histograms)}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every instrument, keys sorted."""
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": {
                name: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in self.histograms.items()
            },
        }

    def to_records(self) -> List[Dict[str, Any]]:
        """One trace record per instrument (the exporter wire form)."""
        records: List[Dict[str, Any]] = []
        for name, value in self.counters.items():
            records.append({"kind": "counter", "name": name, "value": value})
        for name, gvalue in self.gauges.items():
            records.append({"kind": "gauge", "name": name, "value": gvalue})
        for name, h in self.histograms.items():
            records.append(
                {
                    "kind": "histogram",
                    "name": name,
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
            )
        return records


def _prometheus_name(name: str, prefix: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return prefix + safe


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render the registry in the Prometheus text exposition format.

    Deterministic: metrics appear in name order, histogram buckets in
    boundary order, and float formatting is ``repr``-stable.
    """
    lines: List[str] = []
    for name, value in registry.counters.items():
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, gvalue in registry.gauges.items():
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gvalue)}")
    for name, hist in registry.histograms.items():
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = hist.cumulative()
        for boundary, cum in zip(hist.boundaries, cumulative):
            lines.append(f'{metric}_bucket{{le="{_format_value(boundary)}"}} {cum}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative[-1]}')
        lines.append(f"{metric}_sum {_format_value(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")
