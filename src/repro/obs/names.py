"""Canonical metric and span names.

Counter names used to be free-form strings scattered through the
executor and its docstrings — a typo silently created (and zeroed) a
brand-new counter instead of incrementing the intended one.  Every
name the stack emits now lives here as a module-level constant, and
the consumers (:mod:`repro.runtime.executor`,
:mod:`repro.analysis.metrics`, the ``repro-migrate`` CLI) import the
same constants, so a misspelling is an ``AttributeError`` at import
time rather than a quietly-wrong dashboard.

The string *values* are frozen: runtime counter names are part of the
checkpoint format (:meth:`RuntimeTelemetry.get_state`) and of archived
JSONL traces, so renaming a constant must never change its value.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# runtime executor counters (checkpointed — values are frozen)
# ----------------------------------------------------------------------

TRANSFERS_ATTEMPTED = "transfers_attempted"
TRANSFERS_SUCCEEDED = "transfers_succeeded"
TRANSFERS_FAILED = "transfers_failed"
RETRIES = "retries"
DEFERS = "defers"
ESCALATIONS = "escalations"
REPLANS = "replans"
DISK_CRASHES = "disk_crashes"
ITEMS_STRANDED = "items_stranded"
ITEMS_RETARGETED_IN_PLACE = "items_retargeted_in_place"
REPLAN_COMPONENTS_SOLVED = "replan_components_solved"
REPLAN_COMPONENTS_CACHED = "replan_components_cached"

#: Per-failure-reason counters are ``failures_<reason>`` where
#: ``reason`` is one of the executor's outcome reasons
#: (``fault`` / ``partition`` / ``timeout``).
FAILURE_PREFIX = "failures_"
FAILURES_FAULT = FAILURE_PREFIX + "fault"
FAILURES_PARTITION = FAILURE_PREFIX + "partition"
FAILURES_TIMEOUT = FAILURE_PREFIX + "timeout"


def failure_counter(reason: str) -> str:
    """The counter name for a failure ``reason`` (e.g. ``"timeout"``)."""
    return FAILURE_PREFIX + reason


#: Gauge set to 1 when a supervised run drains its work queue.
RUNTIME_FINISHED = "runtime_finished"

# ----------------------------------------------------------------------
# planning pipeline counters (tracer metrics only, never checkpointed)
# ----------------------------------------------------------------------

PLAN_CACHE_HITS = "plan_cache_hits"
PLAN_CACHE_MISSES = "plan_cache_misses"
PLAN_COMPONENTS_SOLVED = "plan_components_solved"
PLAN_COMPONENTS_CACHED = "plan_components_cached"

# incremental replanning (repro.pipeline.delta) — per-component
# disposition attribution of one plan_delta call.
DELTA_COMPONENTS_REUSED = "delta_components_reused"
DELTA_COMPONENTS_PATCHED = "delta_components_patched"
DELTA_COMPONENTS_RESOLVED = "delta_components_resolved"
#: Patched components that exceeded the degree bound and fell back to
#: a full per-component re-solve.
DELTA_PATCH_FALLBACKS = "delta_patch_fallbacks"

# ----------------------------------------------------------------------
# planning service counters/gauges/histograms (repro.serve)
# ----------------------------------------------------------------------

#: Requests that entered the admission queue.
SERVE_REQUESTS_ADMITTED = "serve_requests_admitted"
#: Requests refused at admission (overloaded / rate-limited / draining).
SERVE_REQUESTS_REJECTED = "serve_requests_rejected"
#: Requests answered by attaching to an in-flight duplicate solve.
SERVE_REQUESTS_COALESCED = "serve_requests_coalesced"
#: Admitted requests whose solve completed successfully.
SERVE_REQUESTS_COMPLETED = "serve_requests_completed"
#: Admitted requests whose solve failed or missed its deadline.
SERVE_REQUESTS_FAILED = "serve_requests_failed"
#: Plan-cache misses served by the persistent plan store.
STORE_HITS = "plan_store_hits"
#: Plan-cache misses the store could not serve either.
STORE_MISSES = "plan_store_misses"
#: Gauge: admission queue depth after the latest enqueue/drain.
SERVE_QUEUE_DEPTH = "serve_queue_depth"
#: Histogram: admission-to-completion seconds per request.
SERVE_LATENCY = "serve_request_seconds"

# ----------------------------------------------------------------------
# failure simulator counters/gauges/histograms (repro.sim)
# ----------------------------------------------------------------------

#: Events popped from the simulation queue.
SIM_EVENTS = "sim_events"
#: Whole-disk failures processed (random + scripted).
SIM_DISK_FAILURES = "sim_disk_failures"
#: Latent sector errors surfaced by scrubbing (single-fragment losses).
SIM_LATENT_ERRORS = "sim_latent_errors"
#: Replacement disks that arrived and joined the fleet.
SIM_REPLACEMENTS = "sim_replacements"
#: Items that dropped below ``required_fragments`` — durability failures.
SIM_DATA_LOSS_EVENTS = "sim_data_loss_events"
#: Repair incidents planned (one batched transfer graph each).
SIM_INCIDENTS = "sim_incidents"
#: Individual repair transfers (transfer-graph edges) scheduled.
SIM_REPAIR_TRANSFERS = "sim_repair_transfers"
#: Fragments successfully rebuilt and committed to the layout.
SIM_FRAGMENTS_REPAIRED = "sim_fragments_repaired"
#: In-flight rebuilds discarded (target died / item already lost).
SIM_FRAGMENTS_ABANDONED = "sim_fragments_abandoned"
#: Repair demands no alive disk could accept (retried later).
SIM_UNPLACEABLE_DEMANDS = "sim_unplaceable_demands"
#: Planner components solved / served from the plan cache while
#: planning repairs (sums of the per-:func:`repro.plan` attribution).
SIM_PLAN_COMPONENTS_SOLVED = "sim_plan_components_solved"
SIM_PLAN_COMPONENTS_CACHED = "sim_plan_components_cached"
#: Gauge: accumulated under-replicated fragment-time (sim seconds).
SIM_UNDER_REPLICATED_TIME = "sim_under_replicated_item_time"
#: Gauge: total bytes moved over the network by repairs.
SIM_REPAIR_BYTES = "sim_repair_bytes"
#: Histogram: realized repair makespan per incident (sim seconds,
#: including the modeled planning latency).
SIM_REPAIR_MAKESPAN = "sim_repair_makespan_seconds"

# ----------------------------------------------------------------------
# span names
# ----------------------------------------------------------------------

#: Root span of one :func:`repro.pipeline.plan` call.
SPAN_PLAN = "pipeline.plan"

#: Root span of one :func:`repro.pipeline.plan_delta` call (attrs:
#: changes, seed; closes with reused/patched/resolved counts).
SPAN_PLAN_DELTA = "pipeline.plan_delta"

#: Per-stage spans are ``pipeline.stage.<stage>`` for the six stages.
SPAN_STAGE_PREFIX = "pipeline.stage."

#: One span per in-process component solve (attrs: method, component).
SPAN_SOLVE = "pipeline.solve"

#: One span covering a parallel pool solve of several components.
SPAN_SOLVE_POOL = "pipeline.solve.pool"

#: One span per executed runtime round (attrs: round, attempted,
#: succeeded, failed, sim_start, sim_end).
SPAN_ROUND = "runtime.round"

#: One span per runtime replan (attrs: reason, remaining, rounds).
SPAN_REPLAN = "runtime.replan"

#: Root span of one synchronous engine execution.
SPAN_CLUSTER_EXECUTE = "cluster.execute"

#: One span per engine round (attrs: round, transfers, duration).
SPAN_CLUSTER_ROUND = "cluster.round"

#: One span per served request solve (attrs: fingerprint, method).
SPAN_SERVE_SOLVE = "serve.solve"

#: Root span of one simulated campaign (attrs: seed, scheme, placement).
SPAN_SIM_RUN = "sim.run"

#: One span per repair incident (attrs: incident, demands, transfers).
SPAN_SIM_INCIDENT = "sim.incident"


def stage_span(stage: str) -> str:
    """The span name for a pipeline stage (e.g. ``"solve"``)."""
    return SPAN_STAGE_PREFIX + stage
