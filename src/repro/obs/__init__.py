"""repro.obs — unified tracing, metrics and profiling.

One observability substrate for the whole stack: the planning pipeline,
the runtime executor and the cluster engine all report through the same
:class:`Tracer`, so a single JSONL trace answers "where did this
schedule spend its time?" end to end — per pipeline stage, per solver,
per executed round.

* :mod:`repro.obs.trace` — spans (context-manager + decorator API),
  the :class:`Tracer`, and the zero-cost :data:`NULL_TRACER` default;
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms in a
  :class:`MetricsRegistry` (:class:`~repro.runtime.telemetry.RuntimeTelemetry`
  is a thin adapter over it) and the Prometheus text renderer;
* :mod:`repro.obs.export` — sorted-key JSONL, in-memory, and
  Prometheus exporters;
* :mod:`repro.obs.names` — every counter/span name as a constant, so
  a typo cannot silently zero a metric;
* :mod:`repro.obs.schema` — the trace wire format and its validator
  (``repro-migrate stats --validate``);
* :mod:`repro.obs.profile` — wall/CPU stopwatches feeding
  :class:`~repro.pipeline.planner.PlanResult` profiles.

Everything here is observation-only: with the default no-op tracer,
instrumented code paths are bit-for-bit identical to uninstrumented
ones (enforced by the cross-``PYTHONHASHSEED`` harness in
:mod:`repro.checks.hashseed`).
"""

from repro.obs import names
from repro.obs.export import (
    InMemoryExporter,
    JsonlExporter,
    load_trace,
    meta_record,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.profile import Stopwatch, Timing
from repro.obs.schema import validate_record, validate_trace
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Exporter,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Exporter",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Stopwatch",
    "TRACE_SCHEMA_VERSION",
    "Timing",
    "Tracer",
    "ensure_tracer",
    "load_trace",
    "meta_record",
    "names",
    "render_prometheus",
    "validate_record",
    "validate_trace",
    "write_prometheus",
]
