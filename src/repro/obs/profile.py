"""Lightweight wall/CPU profiling primitives.

The pipeline and runtime measure themselves with a :class:`Stopwatch`
— two clock reads on entry, two on exit — and fold the results into
:class:`Timing` accumulators keyed by stage or solver name.  Clocks
are injectable (monotonic by default) so tests can drive deterministic
timings and the determinism linter has nothing to flag: profiling
reads *elapsed* clocks, never the wall-clock date.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from types import TracebackType
from typing import Callable, Dict, Optional, Type

Clock = Callable[[], float]


@dataclass
class Timing:
    """Accumulated wall and CPU seconds for one profiled key."""

    wall: float = 0.0
    cpu: float = 0.0
    calls: int = 0

    def add(self, wall: float, cpu: float) -> None:
        self.wall += wall
        self.cpu += cpu
        self.calls += 1


class Stopwatch:
    """Context manager measuring wall (monotonic) and CPU seconds."""

    __slots__ = ("_clock", "_cpu_clock", "_start", "_cpu_start", "wall", "cpu")

    def __init__(
        self,
        clock: Clock = time.perf_counter,
        cpu_clock: Clock = time.process_time,
    ) -> None:
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._start = 0.0
        self._cpu_start = 0.0
        self.wall = 0.0
        self.cpu = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock()
        self._cpu_start = self._cpu_clock()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.wall = self._clock() - self._start
        self.cpu = self._cpu_clock() - self._cpu_start


def accumulate(profile: Dict[str, Timing], key: str, watch: Stopwatch) -> None:
    """Fold a finished stopwatch into ``profile[key]``."""
    profile.setdefault(key, Timing()).add(watch.wall, watch.cpu)
