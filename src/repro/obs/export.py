"""Exporters: where trace records land.

* :class:`JsonlExporter` — one sorted-key JSON object per line, the
  archival format ``repro-migrate stats`` consumes.  The first line of
  a fresh file is a ``meta`` record carrying the schema version.
* :class:`InMemoryExporter` — collects records in a list; the test
  and ad-hoc-analysis exporter.
* :func:`write_prometheus` / :func:`repro.obs.metrics.render_prometheus`
  — the Prometheus text exposition of a metrics registry.

Sorted keys everywhere make traces byte-comparable across processes
and ``PYTHONHASHSEED`` values; only timing floats differ between two
traces of the same deterministic run.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping

from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.trace import TRACE_SCHEMA_VERSION, Exporter


def meta_record() -> Dict[str, Any]:
    """The header record opening every fresh JSONL trace."""
    return {
        "kind": "meta",
        "schema": TRACE_SCHEMA_VERSION,
        "source": "repro.obs",
    }


class JsonlExporter(Exporter):
    """Append-structured JSONL trace file, keys sorted.

    Args:
        path: output file.
        append: continue an existing trace (e.g. a resumed run) —
            skips the ``meta`` header when the file already has bytes.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = str(path)
        fresh = not (append and os.path.exists(self.path) and os.path.getsize(self.path))
        self._handle = open(self.path, "a" if append else "w")
        if fresh:
            self.export(meta_record())

    def export(self, record: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(dict(record), sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InMemoryExporter(Exporter):
    """Collects records in order; for tests and in-process analysis."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.closed = False

    def export(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))

    def close(self) -> None:
        self.closed = True

    def spans(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "span"]


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of records."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_prometheus(
    registry: MetricsRegistry, path: str, prefix: str = "repro_"
) -> None:
    """Write the registry's Prometheus text exposition to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_prometheus(registry, prefix=prefix))
