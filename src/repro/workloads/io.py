"""Instance serialization: archive and replay migration workloads.

Real deployments capture the migration batches they ran; this module
gives instances a stable JSON wire format so workloads can be archived,
shared and replayed byte-identically (node names and parallel-edge
multiplicities survive the round trip; edge ids are regenerated).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.core.problem import MigrationInstance
from repro.graphs.multigraph import Multigraph

if TYPE_CHECKING:  # runtime keeps the lazy import in plan_from_json
    from repro.core.schedule import MigrationSchedule

FORMAT_VERSION = 1


def instance_to_json(instance: MigrationInstance, indent: int = 2) -> str:
    """Serialize an instance to JSON (nodes, capacities, moves)."""
    moves: List[Tuple[str, str]] = [
        (str(u), str(v)) for _eid, u, v in instance.graph.edges()
    ]
    payload = {
        "format": "repro-migration-instance",
        "version": FORMAT_VERSION,
        "nodes": sorted(str(v) for v in instance.graph.nodes),
        "capacities": {str(v): c for v, c in instance.capacities.items()},
        "moves": sorted(moves),
    }
    return json.dumps(payload, indent=indent)


def instance_from_json(payload: str) -> MigrationInstance:
    """Inverse of :func:`instance_to_json`.

    Raises:
        ValueError: on an unrecognized format or version.
    """
    data = json.loads(payload)
    if data.get("format") != "repro-migration-instance":
        raise ValueError(f"not a migration instance payload: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    graph = Multigraph(nodes=data["nodes"])
    for u, v in data["moves"]:
        graph.add_edge(u, v)
    capacities = {v: int(c) for v, c in data["capacities"].items()}
    return MigrationInstance(graph, capacities)


def save_instance(instance: MigrationInstance, path: str) -> None:
    """Write an instance to ``path`` as JSON."""
    with open(path, "w") as handle:
        handle.write(instance_to_json(instance))


def load_instance(path: str) -> MigrationInstance:
    """Read an instance previously written by :func:`save_instance`."""
    with open(path) as handle:
        return instance_from_json(handle.read())


# ----------------------------------------------------------------------
# Plans: instance + schedule together (edge ids are internal, so the
# pair must travel as one payload to stay consistent).
# ----------------------------------------------------------------------

def plan_to_json(
    instance: MigrationInstance, schedule: "MigrationSchedule", indent: int = 2
) -> str:
    """Serialize an instance with a schedule for it.

    Edge ids are process-local, so rounds are stored as indices into an
    explicitly ordered move list; :func:`plan_from_json` rebuilds the
    graph in that order, making the round indices valid edge ids again.
    """
    ordered_eids = sorted(instance.graph.edge_ids())
    index_of = {eid: i for i, eid in enumerate(ordered_eids)}
    moves = [
        [str(u), str(v)]
        for eid in ordered_eids
        for (u, v) in [instance.graph.endpoints(eid)]
    ]
    payload = {
        "format": "repro-migration-plan",
        "version": FORMAT_VERSION,
        "nodes": sorted(str(v) for v in instance.graph.nodes),
        "capacities": {str(v): c for v, c in instance.capacities.items()},
        "moves": moves,
        "method": schedule.method,
        "rounds": [[index_of[eid] for eid in rnd] for rnd in schedule.rounds],
    }
    return json.dumps(payload, indent=indent)


def plan_from_json(
    payload: str,
) -> Tuple[MigrationInstance, "MigrationSchedule"]:
    """Inverse of :func:`plan_to_json`.

    Returns ``(instance, schedule)``; the schedule is validated against
    the rebuilt instance before returning.

    Raises:
        ValueError: on format/version mismatch.
    """
    from repro.core.schedule import MigrationSchedule

    data = json.loads(payload)
    if data.get("format") != "repro-migration-plan":
        raise ValueError(f"not a migration plan payload: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    graph = Multigraph(nodes=data["nodes"])
    eids = [graph.add_edge(u, v) for u, v in data["moves"]]
    instance = MigrationInstance(
        graph, {v: int(c) for v, c in data["capacities"].items()}
    )
    schedule = MigrationSchedule(
        [[eids[i] for i in rnd] for rnd in data["rounds"]],
        method=data.get("method", "unknown"),
    )
    schedule.validate(instance)
    return instance, schedule


def merge_instances(
    first: MigrationInstance, second: MigrationInstance
) -> MigrationInstance:
    """Union of two move batches over a combined fleet.

    Disks present in both must agree on their transfer constraint; the
    merged instance carries every move of both (as parallel edges when
    they coincide).  Used when reconfiguration batches pile up and are
    scheduled as one (the offline alternative to
    :mod:`repro.extensions.online`).

    Raises:
        ValueError: on conflicting capacities for a shared disk.
    """
    caps = dict(first.capacities)
    for v, c in second.capacities.items():
        if v in caps and caps[v] != c:
            raise ValueError(
                f"disk {v!r} has conflicting capacities {caps[v]} vs {c}"
            )
        caps[v] = c
    graph = Multigraph(nodes=list(caps))
    for source in (first, second):
        for _eid, u, v in source.graph.edges():
            graph.add_edge(u, v)
    return MigrationInstance(graph, caps)
