"""Closed-loop replay: temperature workload → delta stream → replans.

One tick of the loop:

1. **execute** — the first round of the current schedule runs to
   completion; every transfer in it is reported back to the
   :class:`~repro.workloads.temperature.TieredSystem` via
   ``complete_pair`` (the moved items land on their target disks);
2. **observe** — the system advances one access-trace step, updates
   temperatures, applies the tier policy, and folds the completions
   plus the new/changed demands into **one**
   :class:`~repro.core.delta.InstanceDelta`;
3. **replan** — :func:`repro.plan_delta` patches the prior schedule
   with that delta, reusing every untouched component.

The replay report is rendered through sorted-key compact JSON and
contains no timings, hostnames, or clock values, so two replays of the
same ``(config, seed, steps)`` — in different processes, under
different ``PYTHONHASHSEED`` values — produce byte-identical files.
That property is enforced in CI (the ``workloads-smoke`` job) and is
what makes the workload stream usable as a regression fixture.

With ``check=True`` every patched plan is additionally compared
against a from-scratch :func:`repro.plan` of the fully-patched
instance sharing the replay's cache — the byte-identity contract of
the delta planner, verified tick by tick.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.checks.certify import rounds_digest
from repro.pipeline.cache import PlanCache
from repro.pipeline.delta import DeltaPlanResult, plan_delta
from repro.pipeline.planner import PlanResult, plan
from repro.workloads.temperature import TieredSystem, TieredWorkloadConfig

REPLAY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ReplayStepRecord:
    """What one tick did — sized for the canonical report."""

    time: int
    delta_changes: int
    executed: int
    pending: int
    rounds: int
    lower_bound: Optional[int]
    components_reused: int
    components_patched: int
    components_resolved: int
    schedule_digest: str
    tier_population: Tuple[int, ...]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "delta_changes": self.delta_changes,
            "executed": self.executed,
            "pending": self.pending,
            "rounds": self.rounds,
            "lower_bound": self.lower_bound,
            "components_reused": self.components_reused,
            "components_patched": self.components_patched,
            "components_resolved": self.components_resolved,
            "schedule_digest": self.schedule_digest,
            "tier_population": list(self.tier_population),
        }


@dataclass(frozen=True)
class ReplayReport:
    """The full replay transcript (deterministic, timing-free)."""

    seed: int
    steps: Tuple[ReplayStepRecord, ...]
    tier_names: Tuple[str, ...]
    final_digest: str
    checked: bool

    @property
    def total_changes(self) -> int:
        return sum(s.delta_changes for s in self.steps)

    @property
    def total_executed(self) -> int:
        return sum(s.executed for s in self.steps)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": REPLAY_SCHEMA_VERSION,
            "kind": "workload_replay",
            "seed": self.seed,
            "tier_names": list(self.tier_names),
            "num_steps": len(self.steps),
            "total_changes": self.total_changes,
            "total_executed": self.total_executed,
            "final_digest": self.final_digest,
            "checked": self.checked,
            "steps": [s.to_payload() for s in self.steps],
        }

    def canonical_json(self) -> str:
        """Sorted-key compact JSON — byte-identical across replays."""
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))


class ReplayMismatch(AssertionError):
    """``check=True`` found a patched plan differing from a full plan."""


def _execute_first_round(system: TieredSystem, prior: PlanResult) -> int:
    """Run the first round of ``prior`` to completion; return its size."""
    if prior.instance is None:  # pragma: no cover - plan() always sets it
        raise ValueError("prior plan does not carry its instance")
    if prior.schedule.num_rounds == 0:
        return 0
    first = prior.schedule.rounds[0]
    for eid in first:
        u, v = prior.instance.graph.endpoints(eid)
        system.complete_pair(u, v)
    return len(first)


def replay(
    config: TieredWorkloadConfig,
    steps: int,
    seed: int = 0,
    *,
    cache: Optional[PlanCache] = None,
    certify: bool = True,
    check: bool = False,
) -> ReplayReport:
    """Drive ``steps`` closed-loop ticks and return the transcript.

    Args:
        config: the workload definition (tiers, trace, policy).
        steps: how many execute→observe→replan ticks to run.
        seed: base seed shared by the trace and every replan.
        cache: plan cache reused across ticks (one is created when
            omitted — sharing it is what makes reused components free).
        certify: attach and verify lower-bound certificates on every
            plan, patched or not.
        check: after every ``plan_delta``, run a full :func:`plan` of
            the patched instance against the same cache and require a
            byte-identical schedule (raises :class:`ReplayMismatch`).
    """
    if steps < 1:
        raise ValueError("a replay needs at least one step")
    system = TieredSystem(config, seed)
    shared = cache if cache is not None else PlanCache(max_entries=4096)
    prior: PlanResult = plan(
        system.instance(), "auto", seed, cache=shared, certify=certify
    )
    records: List[ReplayStepRecord] = []
    for _ in range(steps):
        executed = _execute_first_round(system, prior)
        tick = system.step()
        result: DeltaPlanResult = plan_delta(
            prior, tick.delta, cache=shared, certify=certify
        )
        if check:
            assert result.instance is not None
            full = plan(result.instance, "auto", seed, cache=shared, certify=certify)
            if rounds_digest(full.schedule.rounds) != rounds_digest(
                result.schedule.rounds
            ):
                raise ReplayMismatch(
                    f"step {tick.time}: patched schedule differs from full replan"
                )
        records.append(
            ReplayStepRecord(
                time=tick.time,
                delta_changes=tick.delta.num_changes,
                executed=executed,
                pending=tick.pending,
                rounds=result.schedule.num_rounds,
                lower_bound=(
                    result.certificate.bound if result.certificate is not None else None
                ),
                components_reused=result.components_reused,
                components_patched=result.components_patched,
                components_resolved=result.components_resolved,
                schedule_digest=rounds_digest(result.schedule.rounds),
                tier_population=tick.tier_population,
            )
        )
        prior = result
    return ReplayReport(
        seed=seed,
        steps=tuple(records),
        tier_names=tuple(t.name for t in config.tiers),
        final_digest=rounds_digest(prior.schedule.rounds),
        checked=check,
    )
