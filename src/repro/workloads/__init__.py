"""Workload generators for experiments and examples.

* :mod:`repro.workloads.generators` — parametric transfer-graph
  families (random, clique/Figure-2, bipartite, hotspot, regular).
* :mod:`repro.workloads.zipf` — Zipf demand distributions.
* :mod:`repro.workloads.scenarios` — end-to-end cluster scenarios
  (VoD demand shift, scale-out, decommission) built on
  :mod:`repro.cluster`.
* :mod:`repro.workloads.temperature` — temperature-driven tiered
  migration: access traces, EWMA temperatures, hysteresis tier
  policies, and the demand ledger that emits one
  :class:`repro.InstanceDelta` per step.
* :mod:`repro.workloads.replay` — the closed execute→observe→replan
  loop over :func:`repro.plan_delta`, with a byte-deterministic
  transcript.
"""

from repro.workloads.generators import (
    bipartite_instance,
    clique_instance,
    hotspot_instance,
    multi_component_instance,
    random_instance,
    regular_instance,
)
from repro.workloads.replay import (
    ReplayMismatch,
    ReplayReport,
    ReplayStepRecord,
    replay,
)
from repro.workloads.scenarios import (
    decommission_scenario,
    scale_out_scenario,
    sensor_harvest_scenario,
    vod_rebalance_scenario,
)
from repro.workloads.temperature import (
    DEFAULT_TIERS,
    AccessTrace,
    TemperatureModel,
    TieredSystem,
    TieredWorkloadConfig,
    TierPolicy,
    TierSpec,
    WorkloadStep,
    temperature_stream,
)

__all__ = [
    "AccessTrace",
    "DEFAULT_TIERS",
    "ReplayMismatch",
    "ReplayReport",
    "ReplayStepRecord",
    "TemperatureModel",
    "TierPolicy",
    "TierSpec",
    "TieredSystem",
    "TieredWorkloadConfig",
    "WorkloadStep",
    "replay",
    "temperature_stream",
    "random_instance",
    "clique_instance",
    "bipartite_instance",
    "hotspot_instance",
    "multi_component_instance",
    "regular_instance",
    "vod_rebalance_scenario",
    "scale_out_scenario",
    "decommission_scenario",
    "sensor_harvest_scenario",
]
