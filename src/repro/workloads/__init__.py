"""Workload generators for experiments and examples.

* :mod:`repro.workloads.generators` — parametric transfer-graph
  families (random, clique/Figure-2, bipartite, hotspot, regular).
* :mod:`repro.workloads.zipf` — Zipf demand distributions.
* :mod:`repro.workloads.scenarios` — end-to-end cluster scenarios
  (VoD demand shift, scale-out, decommission) built on
  :mod:`repro.cluster`.
"""

from repro.workloads.generators import (
    bipartite_instance,
    clique_instance,
    hotspot_instance,
    multi_component_instance,
    random_instance,
    regular_instance,
)
from repro.workloads.scenarios import (
    decommission_scenario,
    scale_out_scenario,
    sensor_harvest_scenario,
    vod_rebalance_scenario,
)

__all__ = [
    "random_instance",
    "clique_instance",
    "bipartite_instance",
    "hotspot_instance",
    "multi_component_instance",
    "regular_instance",
    "vod_rebalance_scenario",
    "scale_out_scenario",
    "decommission_scenario",
    "sensor_harvest_scenario",
]
