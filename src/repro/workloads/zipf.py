"""Zipf demand distributions.

Video-on-demand and search workloads are classically Zipf-like: the
k-th most popular item draws demand proportional to ``1/k^alpha``.
Demand drives the load-balancing layouts whose *changes* generate
migration work.
"""

from __future__ import annotations

import random
from typing import List, Sequence


def zipf_weights(n: int, alpha: float = 1.0) -> List[float]:
    """Normalized Zipf weights for ranks ``1..n`` (sum to 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    raw = [1.0 / (k ** alpha) for k in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def shuffled_zipf_weights(n: int, alpha: float, rng: random.Random) -> List[float]:
    """Zipf weights with ranks assigned randomly — models a *shifted*
    popularity ranking (yesterday's cold item is today's hit)."""
    weights = zipf_weights(n, alpha)
    rng.shuffle(weights)
    return weights


def sample_by_weight(
    population: Sequence, weights: Sequence[float], k: int, rng: random.Random
) -> list:
    """``k`` independent weighted draws (with replacement)."""
    return rng.choices(list(population), weights=list(weights), k=k)
