"""Adversarial and structured workload families.

Families engineered to stress particular bounds and code paths rather
than look realistic:

* :func:`shannon_triangle` — the extremal multigraph for Shannon's
  theorem: three nodes, parallel bundles of sizes ``(k, k, k)``.  At
  ``c_v = 1`` it needs exactly ``3k`` rounds (``Γ'``-bound) while
  ``Δ' = 2k`` — the worst case for per-node reasoning.
* :func:`odd_cycle_with_helpers` — ``Γ'``-bound cycles plus idle
  helper disks: the forwarding extension's home turf.
* :func:`capacity_cliff` — one huge-capacity disk feeding many
  unit-capacity disks: maximal heterogeneity in a single instance.
* :func:`replication_fanout` — a cloning workload: hot items on a few
  sources, each needing replicas on many destinations.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.problem import MigrationInstance
from repro.extensions.cloning import CloningInstance
from repro.graphs.multigraph import Multigraph


def shannon_triangle(bundle: int, capacity: int = 1) -> MigrationInstance:
    """Three disks, ``bundle`` parallel items between every pair."""
    if bundle < 1:
        raise ValueError("bundle must be >= 1")
    graph = Multigraph(nodes=["a", "b", "c"])
    for u, v in (("a", "b"), ("b", "c"), ("c", "a")):
        for _ in range(bundle):
            graph.add_edge(u, v)
    return MigrationInstance(graph, {v: capacity for v in graph.nodes})


def odd_cycle_with_helpers(
    cycle_len: int, multiplicity: int, num_helpers: int
) -> MigrationInstance:
    """An odd cycle of unit-capacity disks plus idle helpers.

    Direct migration needs ``ceil(cycle_len · multiplicity /
    floor(cycle_len/2))`` rounds (the density bound); with helpers the
    forwarding scheduler can approach ``Δ' = 2 · multiplicity``.
    """
    if cycle_len < 3 or cycle_len % 2 == 0:
        raise ValueError("cycle_len must be odd and >= 3")
    nodes = [f"n{i}" for i in range(cycle_len)]
    helpers = [f"h{i}" for i in range(num_helpers)]
    graph = Multigraph(nodes=nodes + helpers)
    for i in range(cycle_len):
        for _ in range(multiplicity):
            graph.add_edge(nodes[i], nodes[(i + 1) % cycle_len])
    return MigrationInstance(graph, {v: 1 for v in nodes + helpers})


def capacity_cliff(num_small: int, items_each: int, big_capacity: int) -> MigrationInstance:
    """A single high-capacity hub drains to many unit disks."""
    if big_capacity < 1:
        raise ValueError("big_capacity must be >= 1")
    graph = Multigraph(nodes=["hub"] + [f"leaf{i}" for i in range(num_small)])
    for i in range(num_small):
        for _ in range(items_each):
            graph.add_edge("hub", f"leaf{i}")
    caps: Dict = {"hub": big_capacity}
    caps.update({f"leaf{i}": 1 for i in range(num_small)})
    return MigrationInstance(graph, caps)


def petersen_instance(capacity: int = 1) -> MigrationInstance:
    """The Petersen graph at ``c_v = 1`` — a class-2 instance.

    Δ = 3 and the density bound gives only ``ceil(15/7) = 3``, yet the
    chromatic index is 4: the certified lower bound is strictly below
    OPT.  This is the instance family that *forces* the general
    algorithm's witness/palette-growth path (everywhere else it tends
    to finish within the initial palette).
    """
    outer = [f"o{i}" for i in range(5)]
    inner = [f"i{i}" for i in range(5)]
    graph = Multigraph(nodes=outer + inner)
    for i in range(5):
        graph.add_edge(outer[i], outer[(i + 1) % 5])   # outer cycle
        graph.add_edge(inner[i], inner[(i + 2) % 5])   # inner pentagram
        graph.add_edge(outer[i], inner[i])             # spokes
    return MigrationInstance(graph, {v: capacity for v in graph.nodes})


def replication_fanout(
    num_items: int, fanout: int, num_disks: int, capacity: int = 2
) -> CloningInstance:
    """Hot items each needing ``fanout`` replicas (cloning workload).

    Item ``k`` starts on disk ``k mod num_disks`` and must reach the
    next ``fanout`` disks around the ring.
    """
    if fanout >= num_disks:
        raise ValueError("fanout must be < num_disks")
    disks = [f"d{i}" for i in range(num_disks)]
    items: Dict[str, Tuple[str, Set[str]]] = {}
    for k in range(num_items):
        src_idx = k % num_disks
        dests = {disks[(src_idx + j) % num_disks] for j in range(1, fanout + 1)}
        items[f"item{k}"] = (disks[src_idx], dests)
    return CloningInstance(items, {d: capacity for d in disks})
